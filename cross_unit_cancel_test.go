package syncron

import "testing"

// TestFiguresQuickSchedulesNoCrossUnitCancels pins the model's event-cancel
// discipline: across the entire figures-quick grid, no unit-tagged event
// ever cancels an event owned by ANOTHER unit. Cross-unit cancels of
// same-timestamp events panic by the dispatcher's contract
// (sim.Engine.Cancel docs); cancels of future cross-unit events are merely
// one refactor away from that panic, so the model keeps them at zero and
// this test keeps them there. sim.Engine.CrossUnitCancels counts every
// cancel a unit event issued against another unit's event.
func TestFiguresQuickSchedulesNoCrossUnitCancels(t *testing.T) {
	for _, sw := range FigureSweeps(FigureOptions{Quick: true, Parallelism: 4}) {
		for _, spec := range ResolveSeeds(sw.Expand(), sw.BaseSeed) {
			w, ok := LookupWorkload(spec.Workload)
			if !ok {
				t.Fatalf("unknown workload %q in figures-quick grid", spec.Workload)
			}
			sys := New(spec.Config)
			if _, err := w.Prepare(sys, spec.Params); err != nil {
				t.Fatalf("%s under %s: prepare: %v", spec.Workload, spec.Config.Scheme, err)
			}
			sys.Run()
			eng := sys.Machine().Engine
			if eng.CrossUnitCancels != 0 {
				t.Errorf("%s under %s: unit events issued %d cross-unit cancels, want 0",
					spec.Workload, spec.Config.Scheme, eng.CrossUnitCancels)
			}
		}
	}
}
