package syncron_test

import (
	"reflect"
	"testing"

	"syncron"
)

// fuzzSpecs derives up to 64 valid specs from raw fuzz bytes: one spec per
// byte, picking workload, scheme, unit count, and explicit-vs-derived seed
// from its bits. Repeated bytes yield content-identical specs, which is a
// feature — sharding is content-hashed, and identical specs must still land
// in exactly one shard each by grid index.
func fuzzSpecs(data []byte) []syncron.RunSpec {
	workloads := []string{"stack", "queue", "lock", "barrier"}
	schemes := []syncron.Scheme{
		syncron.SchemeCentral, syncron.SchemeHier, syncron.SchemeSynCron, syncron.SchemeIdeal,
	}
	n := len(data)
	if n > 64 {
		n = 64
	}
	specs := make([]syncron.RunSpec, 0, n)
	for i := 0; i < n; i++ {
		b := data[i]
		specs = append(specs, syncron.RunSpec{
			Workload: workloads[int(b)%len(workloads)],
			Config: syncron.Config{
				Scheme: schemes[int(b>>2)%len(schemes)],
				Units:  1 + int(b>>4)%4,
				Seed:   uint64(b & 1), // 0 = derived by ResolveSeeds, 1 = explicit
			},
			Params: syncron.WorkloadParams{Scale: 0.1, OpsPerCore: 1 + int(b)%8},
		})
	}
	return specs
}

// FuzzShardMerge drives the sharding pipeline — ResolveSeeds, Shard.Select,
// MergeShards — with arbitrary grids, shard counts, and base seeds, and
// asserts the invariants the CI shard workflow relies on: shards are
// disjoint and exhaustive, selection preserves grid order, merging the shard
// outputs in any order reassembles the exact grid, and duplicated or
// incomplete shard sets are rejected.
func FuzzShardMerge(f *testing.F) {
	f.Add(uint8(4), uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), uint64(0), []byte{9})
	f.Add(uint8(64), uint64(42), []byte("syncron"))
	f.Add(uint8(0), uint64(7), []byte{255, 255, 0, 0, 128})
	f.Fuzz(func(t *testing.T, nShards uint8, baseSeed uint64, data []byte) {
		n := int(nShards)%16 + 1
		specs := syncron.ResolveSeeds(fuzzSpecs(data), baseSeed)
		for i, s := range specs {
			if s.Config.Seed == 0 {
				t.Fatalf("spec %d still has a zero seed after ResolveSeeds", i)
			}
		}

		claimed := make([]int, len(specs))
		shards := make([][]syncron.RunResult, n)
		for s := 0; s < n; s++ {
			idx := syncron.Shard{Index: s, Count: n}.Select(specs)
			for k, i := range idx {
				if k > 0 && idx[k-1] >= i {
					t.Fatalf("shard %d/%d selection not in grid order: %v", s, n, idx)
				}
				if i < 0 || i >= len(specs) {
					t.Fatalf("shard %d/%d selected out-of-range index %d", s, n, i)
				}
				claimed[i]++
				shards[s] = append(shards[s], syncron.RunResult{Spec: specs[i], GridIndex: i})
			}
		}
		for i, c := range claimed {
			if c != 1 {
				t.Fatalf("spec %d claimed by %d shards of %d (want exactly 1)", i, c, n)
			}
		}
		if len(specs) == 0 {
			return
		}

		// Merging the shard outputs in reverse order must reassemble the grid.
		rev := make([][]syncron.RunResult, n)
		for s := range shards {
			rev[n-1-s] = shards[s]
		}
		merged, err := syncron.MergeShards(rev...)
		if err != nil {
			t.Fatalf("merging %d complete shards: %v", n, err)
		}
		if len(merged) != len(specs) {
			t.Fatalf("merged %d results, want %d", len(merged), len(specs))
		}
		for i, r := range merged {
			if r.GridIndex != i {
				t.Fatalf("merged[%d] has grid index %d", i, r.GridIndex)
			}
			if !reflect.DeepEqual(r.Spec, specs[i]) {
				t.Fatalf("merged[%d] spec diverged from grid spec:\ngot  %+v\nwant %+v", i, r.Spec, specs[i])
			}
		}

		// A repeated result must be rejected as a duplicate grid index.
		dup := append(append([]syncron.RunResult{}, merged...), merged[0])
		if _, err := syncron.MergeShards(dup); err == nil {
			t.Fatal("MergeShards accepted a duplicated result")
		}
		// Dropping one result from a >=2 grid leaves a top index out of range.
		if len(merged) >= 2 {
			if _, err := syncron.MergeShards(merged[1:]); err == nil {
				t.Fatal("MergeShards accepted an incomplete shard set")
			}
		}
	})
}
