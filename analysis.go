package syncron

import (
	"fmt"
	"math"
	"sort"

	"syncron/internal/network"
)

// This file is the analysis layer: it ingests []RunResult (usually straight
// from Sweep.Run) and computes the paper's evaluation views — speedup
// normalized to a baseline scheme with geomean aggregation per workload
// family (Figures 10-12), scalability over system size (Figure 13), energy
// and data-movement breakdowns (Figures 14-15), and the Synchronization
// Table occupancy/overflow ablations (Figure 22, Table 7). figures.go
// renders these views as Markdown/CSV artifacts; cmd/syncron-sim exposes
// them as the `figures` subcommand.

// Geomean returns the geometric mean of the positive values in xs; zero,
// negative, and non-finite values are ignored. It returns 0 when no value
// qualifies.
func Geomean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 && !math.IsInf(x, 1) && !math.IsNaN(x) {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// SpeedupRow is one grid point of a SpeedupTable: a workload (at one
// configuration) with per-scheme speedup and throughput.
type SpeedupRow struct {
	// Workload is the registry name.
	Workload string
	// Kind is the workload's family (geomeans aggregate over it).
	Kind WorkloadKind
	// Label is Workload plus a config suffix (e.g. " u=2") when the result
	// set holds the same workload at several grid points.
	Label string
	// Speedup maps scheme → baseline makespan / scheme makespan (the
	// baseline scheme itself is exactly 1).
	Speedup map[Scheme]float64
	// Throughput maps scheme → operations per millisecond.
	Throughput map[Scheme]float64
}

// SpeedupTable is the paper's headline comparison: per-workload speedup over
// a baseline scheme, with geomean rows per workload family and overall.
type SpeedupTable struct {
	// Baseline is the scheme every speedup is normalized to.
	Baseline Scheme
	// Schemes are the compared schemes in first-seen result order.
	Schemes []Scheme
	// Rows are sorted by kind (Kinds order), then workload name, then label.
	Rows []SpeedupRow
	// KindGeomean aggregates Rows per workload family.
	KindGeomean map[WorkloadKind]map[Scheme]float64
	// OverallGeomean aggregates all Rows.
	OverallGeomean map[Scheme]float64
}

// Kinds returns the families present in the table, in Kinds order.
func (t *SpeedupTable) Kinds() []WorkloadKind {
	var kinds []WorkloadKind
	seen := map[WorkloadKind]bool{}
	for _, row := range t.Rows {
		if !seen[row.Kind] {
			seen[row.Kind] = true
			kinds = append(kinds, row.Kind)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kindOrder(kinds[i]) < kindOrder(kinds[j]) })
	return kinds
}

// SpeedupVsBaseline joins every successful run against the baseline-scheme
// run of the same grid point and computes per-workload speedups plus geomean
// aggregates per workload family. Failed runs are ignored; a missing
// baseline run is an error.
func SpeedupVsBaseline(results []RunResult, baseline Scheme) (*SpeedupTable, error) {
	rs := ResultSet(results)
	pairs, err := rs.JoinBaseline(baseline)
	if err != nil {
		return nil, err
	}
	label := gridLabeler(rs.Ok())
	t := &SpeedupTable{
		Baseline:       baseline,
		Schemes:        rs.Ok().Schemes(),
		KindGeomean:    map[WorkloadKind]map[Scheme]float64{},
		OverallGeomean: map[Scheme]float64{},
	}
	rows := map[string]*SpeedupRow{}
	var order []string
	for _, p := range pairs {
		key := comparisonKey(p.Run)
		row, ok := rows[key]
		if !ok {
			row = &SpeedupRow{
				Workload:   p.Run.Spec.Workload,
				Kind:       p.Run.Kind,
				Label:      label(p.Run),
				Speedup:    map[Scheme]float64{},
				Throughput: map[Scheme]float64{},
			}
			rows[key] = row
			order = append(order, key)
		}
		scheme := p.Run.Spec.Config.Scheme
		if p.Run.Makespan > 0 {
			row.Speedup[scheme] = float64(p.Baseline.Makespan) / float64(p.Run.Makespan)
		}
		row.Throughput[scheme] = p.Run.OpsPerMs
	}
	for _, key := range order {
		t.Rows = append(t.Rows, *rows[key])
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		if a.Kind != b.Kind {
			return kindOrder(a.Kind) < kindOrder(b.Kind)
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Label < b.Label
	})
	for _, scheme := range t.Schemes {
		byKind := map[WorkloadKind][]float64{}
		var all []float64
		for _, row := range t.Rows {
			if sp, ok := row.Speedup[scheme]; ok {
				byKind[row.Kind] = append(byKind[row.Kind], sp)
				all = append(all, sp)
			}
		}
		for kind, sps := range byKind {
			if t.KindGeomean[kind] == nil {
				t.KindGeomean[kind] = map[Scheme]float64{}
			}
			t.KindGeomean[kind][scheme] = Geomean(sps)
		}
		t.OverallGeomean[scheme] = Geomean(all)
	}
	return t, nil
}

// gridLabeler returns a labeling function that appends the values of every
// config axis that varies across rs (units, cores per unit, memory, memory
// model, topology, link latency, ST entries) to the workload name, so a
// workload swept at several grid points yields distinguishable rows.
func gridLabeler(rs ResultSet) func(RunResult) string {
	var units, cores, sts = map[int]bool{}, map[int]bool{}, map[int]bool{}
	var mems = map[MemoryTech]bool{}
	var models = map[MemModel]bool{}
	var topos = map[Topology]bool{}
	var links = map[Time]bool{}
	for _, r := range rs {
		cfg := r.Spec.Config
		units[cfg.Units] = true
		cores[cfg.CoresPerUnit] = true
		mems[cfg.Memory] = true
		models[cfg.MemModel] = true
		topos[cfg.Topology] = true
		links[cfg.LinkLatency] = true
		sts[cfg.STEntries] = true
	}
	return func(r RunResult) string {
		cfg := r.Spec.Config
		label := r.Spec.Workload
		if len(units) > 1 {
			label += fmt.Sprintf(" u=%d", cfg.Units)
		}
		if len(cores) > 1 {
			label += fmt.Sprintf(" c=%d", cfg.CoresPerUnit)
		}
		if len(mems) > 1 {
			label += " " + cfg.Memory.String()
		}
		if len(models) > 1 {
			label += " " + string(cfg.MemModel)
		}
		if len(topos) > 1 {
			label += " " + string(cfg.Topology)
		}
		if len(links) > 1 {
			label += fmt.Sprintf(" link=%v", cfg.LinkLatency)
		}
		if len(sts) > 1 {
			label += fmt.Sprintf(" st=%d", cfg.STEntries)
		}
		return label
	}
}

// ScalabilityPoint is one system size on a scalability curve.
type ScalabilityPoint struct {
	// Units and Cores describe the system size (Cores = Units * CoresPerUnit).
	Units, Cores int
	// Makespan is the run's simulated duration.
	Makespan Time
	// Speedup is normalized to the smallest system size of the same curve.
	Speedup float64
}

// ScalabilityCurve is one workload's self-relative scaling under one scheme
// (Figure 13).
type ScalabilityCurve struct {
	Workload string
	Kind     WorkloadKind
	Scheme   Scheme
	// Points are sorted by total core count.
	Points []ScalabilityPoint
}

// Scalability builds per-workload scaling curves from the runs of one scheme:
// each curve normalizes every system size to the smallest one. Curves are
// sorted by kind, then workload name. Failed runs are ignored; a workload
// needs at least two sizes to form a curve, and workloads with fewer are
// dropped.
func Scalability(results []RunResult, scheme Scheme) ([]ScalabilityCurve, error) {
	rs := ResultSet(results).Ok().Filter(func(r RunResult) bool {
		return r.Spec.Config.Scheme == scheme
	})
	if len(rs) == 0 {
		return nil, fmt.Errorf("syncron: no successful %q runs to build scalability curves from", scheme)
	}
	var curves []ScalabilityCurve
	for name, runs := range rs.ByWorkload() {
		sort.Slice(runs, func(i, j int) bool {
			a, b := runs[i].Spec.Config, runs[j].Spec.Config
			return a.Units*a.CoresPerUnit < b.Units*b.CoresPerUnit
		})
		if len(runs) < 2 {
			continue
		}
		curve := ScalabilityCurve{Workload: name, Kind: runs[0].Kind, Scheme: scheme}
		base := runs[0].Makespan
		for _, r := range runs {
			cfg := r.Spec.Config
			pt := ScalabilityPoint{Units: cfg.Units, Cores: cfg.Units * cfg.CoresPerUnit,
				Makespan: r.Makespan}
			if r.Makespan > 0 {
				pt.Speedup = float64(base) / float64(r.Makespan)
			}
			curve.Points = append(curve.Points, pt)
		}
		curves = append(curves, curve)
	}
	sort.Slice(curves, func(i, j int) bool {
		a, b := curves[i], curves[j]
		if a.Kind != b.Kind {
			return kindOrder(a.Kind) < kindOrder(b.Kind)
		}
		return a.Workload < b.Workload
	})
	return curves, nil
}

// EnergyRow is one (workload, scheme) cell of the energy view (Figure 14):
// the scheme's cache/network/memory energy as fractions of the baseline
// scheme's total energy on the same grid point, so the baseline's Total is
// exactly 1 and schemes are directly comparable.
type EnergyRow struct {
	Workload string
	Kind     WorkloadKind
	Label    string
	Scheme   Scheme

	Cache, Network, Memory, Total float64
}

// EnergyBreakdown computes the Figure-14 energy view: every run's energy
// split normalized to the baseline scheme's total on the same grid point.
// Rows are sorted by kind, workload, label, then scheme in first-seen order.
func EnergyBreakdown(results []RunResult, baseline Scheme) ([]EnergyRow, error) {
	pairs, err := ResultSet(results).JoinBaseline(baseline)
	if err != nil {
		return nil, err
	}
	label := gridLabeler(ResultSet(results).Ok())
	var rows []EnergyRow
	for _, p := range pairs {
		total := p.Baseline.TotalEnergyPJ()
		if total == 0 {
			return nil, fmt.Errorf("syncron: baseline %s run of %s reports zero energy",
				baseline, p.Run.Spec.Workload)
		}
		rows = append(rows, EnergyRow{
			Workload: p.Run.Spec.Workload,
			Kind:     p.Run.Kind,
			Label:    label(p.Run),
			Scheme:   p.Run.Spec.Config.Scheme,
			Cache:    p.Run.CacheEnergyPJ / total,
			Network:  p.Run.NetworkEnergyPJ / total,
			Memory:   p.Run.MemoryEnergyPJ / total,
			Total:    p.Run.TotalEnergyPJ() / total,
		})
	}
	sortBreakdown(rows, ResultSet(results).Ok().Schemes(),
		func(r EnergyRow) (WorkloadKind, string, string, Scheme) {
			return r.Kind, r.Workload, r.Label, r.Scheme
		})
	return rows, nil
}

// TrafficRow is one (workload, scheme) cell of the data-movement view
// (Figure 15): bytes moved inside and across NDP units as fractions of the
// baseline scheme's total bytes on the same grid point.
type TrafficRow struct {
	Workload string
	Kind     WorkloadKind
	Label    string
	Scheme   Scheme

	Inside, Across, Total float64
}

// TrafficBreakdown computes the Figure-15 data-movement view: every run's
// inside/across-unit bytes normalized to the baseline scheme's total on the
// same grid point. Rows are sorted like EnergyBreakdown's.
func TrafficBreakdown(results []RunResult, baseline Scheme) ([]TrafficRow, error) {
	pairs, err := ResultSet(results).JoinBaseline(baseline)
	if err != nil {
		return nil, err
	}
	label := gridLabeler(ResultSet(results).Ok())
	var rows []TrafficRow
	for _, p := range pairs {
		total := float64(p.Baseline.BytesInsideUnits + p.Baseline.BytesAcrossUnits)
		if total == 0 {
			return nil, fmt.Errorf("syncron: baseline %s run of %s reports zero data movement",
				baseline, p.Run.Spec.Workload)
		}
		rows = append(rows, TrafficRow{
			Workload: p.Run.Spec.Workload,
			Kind:     p.Run.Kind,
			Label:    label(p.Run),
			Scheme:   p.Run.Spec.Config.Scheme,
			Inside:   float64(p.Run.BytesInsideUnits) / total,
			Across:   float64(p.Run.BytesAcrossUnits) / total,
			Total:    float64(p.Run.BytesInsideUnits+p.Run.BytesAcrossUnits) / total,
		})
	}
	sortBreakdown(rows, ResultSet(results).Ok().Schemes(),
		func(r TrafficRow) (WorkloadKind, string, string, Scheme) {
			return r.Kind, r.Workload, r.Label, r.Scheme
		})
	return rows, nil
}

// sortBreakdown orders breakdown rows by kind, workload, label, then scheme
// in the order schemes lists them.
func sortBreakdown[T any](rows []T, schemes []Scheme, key func(T) (WorkloadKind, string, string, Scheme)) {
	rank := map[Scheme]int{}
	for i, s := range schemes {
		rank[s] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ki, wi, li, si := key(rows[i])
		kj, wj, lj, sj := key(rows[j])
		if ki != kj {
			return kindOrder(ki) < kindOrder(kj)
		}
		if wi != wj {
			return wi < wj
		}
		if li != lj {
			return li < lj
		}
		return rank[si] < rank[sj]
	})
}

// TopologyRow is one (workload, scheme, topology) cell of the interconnect
// sensitivity view: how a topology's hop count and contention change
// makespan, network energy, and link traffic relative to the baseline
// topology on the same workload, scheme, and grid point.
type TopologyRow struct {
	Workload string
	Kind     WorkloadKind
	Scheme   Scheme
	Topology Topology
	// Diameter is the topology's maximum route length at the run's unit count.
	Diameter int
	// AvgRouteLinks is the measured mean links per cross-unit message.
	AvgRouteLinks float64
	// OpsPerMs is the run's absolute throughput.
	OpsPerMs float64
	// SlowdownVsBase is makespan / the baseline topology's makespan (the
	// baseline topology itself is exactly 1).
	SlowdownVsBase float64
	// NetworkEnergyX and LinkBytesX are the run's network energy and
	// across-unit link bytes relative to the baseline topology's.
	NetworkEnergyX, LinkBytesX float64
}

// TopologySensitivity builds the interconnect sensitivity view from runs
// that sweep the Topology axis: every successful run is joined against the
// run of the same workload, scheme, and grid point under the baseline
// topology (default TopoAllToAll when base is empty). Rows are sorted by
// kind, workload, scheme, then topology in Topologies order.
func TopologySensitivity(results []RunResult, base Topology) ([]TopologyRow, error) {
	if base == "" {
		base = TopoAllToAll
	}
	ok := ResultSet(results).Ok()
	if len(ok) == 0 {
		return nil, fmt.Errorf("syncron: no successful runs to build the topology sensitivity from")
	}
	// Join key: everything (including scheme) but topology and seed.
	key := func(r RunResult) string {
		return gridKey(r, func(c *Config) { c.Topology = "" })
	}
	baseruns := map[string]RunResult{}
	for _, r := range ok {
		if r.Spec.Config.Topology == base {
			baseruns[key(r)] = r
		}
	}
	if len(baseruns) == 0 {
		return nil, fmt.Errorf("syncron: no successful %q-topology runs to use as baseline", base)
	}
	var rows []TopologyRow
	for _, r := range ok {
		b, found := baseruns[key(r)]
		if !found {
			return nil, fmt.Errorf("syncron: %s under %s/%s has no %q-topology baseline at the same grid point",
				r.Spec.Workload, r.Spec.Config.Scheme, r.Spec.Config.Topology, base)
		}
		row := TopologyRow{
			Workload:      r.Spec.Workload,
			Kind:          r.Kind,
			Scheme:        r.Spec.Config.Scheme,
			Topology:      r.Spec.Config.Topology,
			AvgRouteLinks: r.AvgRouteLinks,
			OpsPerMs:      r.OpsPerMs,
		}
		if topo, err := network.Build(r.Spec.Config.Topology, r.Spec.Config.Units); err == nil {
			row.Diameter = topo.Diameter()
		}
		if b.Makespan > 0 {
			row.SlowdownVsBase = float64(r.Makespan) / float64(b.Makespan)
		}
		if b.NetworkEnergyPJ > 0 {
			row.NetworkEnergyX = r.NetworkEnergyPJ / b.NetworkEnergyPJ
		}
		if b.BytesAcrossUnits > 0 {
			row.LinkBytesX = float64(r.BytesAcrossUnits) / float64(b.BytesAcrossUnits)
		}
		rows = append(rows, row)
	}
	toporank := map[Topology]int{}
	for i, k := range Topologies() {
		toporank[k] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Kind != b.Kind {
			return kindOrder(a.Kind) < kindOrder(b.Kind)
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return toporank[a.Topology] < toporank[b.Topology]
	})
	return rows, nil
}

// MemRow is one (workload, scheme, memory model) cell of the DRAM-model
// sensitivity view: how the bank/row-buffer timing model shifts makespan and
// memory energy relative to the flat model on the same workload, scheme, and
// grid point, together with the row locality the bank model measured.
type MemRow struct {
	Workload string
	Kind     WorkloadKind
	Scheme   Scheme
	MemModel MemModel
	// RowHitRate is the run's fraction of open-row DRAM hits (always 0 under
	// the flat model).
	RowHitRate float64
	// OpsPerMs is the run's absolute throughput.
	OpsPerMs float64
	// SlowdownVsBase is makespan / the baseline model's makespan (the
	// baseline model itself is exactly 1).
	SlowdownVsBase float64
	// MemEnergyX is the run's DRAM energy relative to the baseline model's.
	MemEnergyX float64
}

// MemSensitivity builds the DRAM-model sensitivity view from runs that sweep
// the MemModel axis: every successful run is joined against the run of the
// same workload, scheme, and grid point under the baseline model (default
// MemModelFlat when base is empty). Rows are sorted by kind, workload,
// scheme, then model in MemModels order.
func MemSensitivity(results []RunResult, base MemModel) ([]MemRow, error) {
	if base == "" {
		base = MemModelFlat
	}
	ok := ResultSet(results).Ok()
	if len(ok) == 0 {
		return nil, fmt.Errorf("syncron: no successful runs to build the memory-model sensitivity from")
	}
	// Join key: everything (including scheme) but memory model and seed.
	key := func(r RunResult) string {
		return gridKey(r, func(c *Config) { c.MemModel = "" })
	}
	baseruns := map[string]RunResult{}
	for _, r := range ok {
		if r.Spec.Config.MemModel == base {
			baseruns[key(r)] = r
		}
	}
	if len(baseruns) == 0 {
		return nil, fmt.Errorf("syncron: no successful %q-model runs to use as baseline", base)
	}
	var rows []MemRow
	for _, r := range ok {
		b, found := baseruns[key(r)]
		if !found {
			return nil, fmt.Errorf("syncron: %s under %s/%s has no %q-model baseline at the same grid point",
				r.Spec.Workload, r.Spec.Config.Scheme, r.Spec.Config.MemModel, base)
		}
		row := MemRow{
			Workload:   r.Spec.Workload,
			Kind:       r.Kind,
			Scheme:     r.Spec.Config.Scheme,
			MemModel:   r.Spec.Config.MemModel,
			RowHitRate: r.RowHitRate,
			OpsPerMs:   r.OpsPerMs,
		}
		if b.Makespan > 0 {
			row.SlowdownVsBase = float64(r.Makespan) / float64(b.Makespan)
		}
		if b.MemoryEnergyPJ > 0 {
			row.MemEnergyX = r.MemoryEnergyPJ / b.MemoryEnergyPJ
		}
		rows = append(rows, row)
	}
	modelrank := map[MemModel]int{}
	for i, m := range MemModels() {
		modelrank[m] = i
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Kind != b.Kind {
			return kindOrder(a.Kind) < kindOrder(b.Kind)
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return modelrank[a.MemModel] < modelrank[b.MemModel]
	})
	return rows, nil
}

// OccupancyRow summarizes one (workload, scheme, ST size) run of a SynCron
// scheme for the Synchronization Table ablation (Figure 22, Table 7).
type OccupancyRow struct {
	Workload string
	Kind     WorkloadKind
	// Scheme is the SynCron variant the run used (hierarchical or flat);
	// slowdowns are normalized within one (workload, scheme) curve.
	Scheme Scheme
	// STEntries is the Synchronization Table size of the run.
	STEntries int
	// OpsPerMs is the run's throughput.
	OpsPerMs float64
	// SlowdownVsLargest is makespan / the same workload's makespan at the
	// largest swept ST size (so the largest size is exactly 1).
	SlowdownVsLargest float64
	// MaxOccupancy and MeanOccupancy are ST occupancy fractions in [0, 1].
	MaxOccupancy, MeanOccupancy float64
	// Overflowed is the fraction of requests that overflowed the ST.
	Overflowed float64
}

// STAblation builds the ST-size sensitivity view from runs of the SynCron
// schemes: per (workload, scheme) curve, every swept ST size with its
// slowdown relative to the largest size and its occupancy/overflow
// statistics. Rows are sorted by workload, then scheme, then ST size
// descending (the paper's presentation order). Runs of non-SynCron schemes
// and failed runs are ignored.
func STAblation(results []RunResult) ([]OccupancyRow, error) {
	rs := ResultSet(results).Ok().Filter(func(r RunResult) bool {
		s := r.Spec.Config.Scheme
		return s == SchemeSynCron || s == SchemeSynCronFlat
	})
	if len(rs) == 0 {
		return nil, fmt.Errorf("syncron: no successful SynCron runs to build the ST ablation from")
	}
	curves := map[string]ResultSet{}
	for _, r := range rs {
		key := r.Spec.Workload + "|" + string(r.Spec.Config.Scheme)
		curves[key] = append(curves[key], r)
	}
	var rows []OccupancyRow
	for _, runs := range curves {
		sort.Slice(runs, func(i, j int) bool {
			return runs[i].Spec.Config.STEntries > runs[j].Spec.Config.STEntries
		})
		base := runs[0].Makespan // largest swept ST size of this curve
		for _, r := range runs {
			row := OccupancyRow{
				Workload:      r.Spec.Workload,
				Kind:          r.Kind,
				Scheme:        r.Spec.Config.Scheme,
				STEntries:     r.Spec.Config.STEntries,
				OpsPerMs:      r.OpsPerMs,
				MaxOccupancy:  r.STOccupancyMax,
				MeanOccupancy: r.STOccupancyMean,
				Overflowed:    r.OverflowedFraction,
			}
			if base > 0 {
				row.SlowdownVsLargest = float64(r.Makespan) / float64(base)
			}
			rows = append(rows, row)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Kind != b.Kind {
			return kindOrder(a.Kind) < kindOrder(b.Kind)
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.STEntries > b.STEntries
	})
	return rows, nil
}
