package syncron

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Figure is one rendered paper-style artifact: a titled table that can be
// emitted as Markdown (WriteMarkdown) or CSV (WriteCSV). Figures hold
// pre-formatted cells so the two emitters agree exactly.
type Figure struct {
	// ID is a short stable identifier (e.g. "speedup"), used for CSV file
	// names and anchors.
	ID string
	// Title says what the table shows and what it is normalized to.
	Title string
	// Columns and Rows are the table; every row has len(Columns) cells.
	Columns []string
	Rows    [][]string
	// Notes is an optional footnote (e.g. the paper's headline numbers).
	Notes string
}

// WriteMarkdown renders the figure as a GitHub-flavored Markdown table with a
// heading and optional footnote. The first column is left-aligned, the rest
// right-aligned.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", f.ID, f.Title)
	b.WriteString("| " + strings.Join(f.Columns, " | ") + " |\n")
	b.WriteString("|---")
	for range f.Columns[1:] {
		b.WriteString("|---:")
	}
	b.WriteString("|\n")
	for _, row := range f.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "\n_%s_\n", f.Notes)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure's columns and rows as CSV, without the title
// and notes.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Columns); err != nil {
		return err
	}
	for _, row := range f.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FigureOptions configures the canonical figure grids of Figures. The zero
// value (with or without Quick) is a valid, deterministic configuration.
type FigureOptions struct {
	// Quick runs a representative 12-workload subset at reduced scale
	// (seconds instead of a minute) — the smoke-test mode of
	// `syncron-sim figures --quick`.
	Quick bool
	// Baseline is the scheme speedups, energy, and traffic are normalized
	// to (default SchemeCentral). It is added to Schemes if missing.
	Baseline Scheme
	// Schemes are the compared schemes (default central, hier, syncron,
	// ideal — the paper's Figure order).
	Schemes []Scheme
	// Workloads overrides the main grid's workload list (default: every
	// registered workload, or the representative subset under Quick).
	Workloads []string
	// Topologies, when non-empty, adds the interconnect sensitivity figure:
	// the topology grid runs topologyWorkloads under every compared scheme
	// for each listed topology (TopoAllToAll is added as the normalization
	// baseline if missing). Leaving it empty skips the figure, keeping the
	// default figure set — and its byte-exact output — unchanged.
	Topologies []Topology
	// MemModels, when non-empty, adds the DRAM-model sensitivity figure: the
	// memory grid runs memoryWorkloads under every compared scheme for each
	// listed model (MemModelFlat is added as the normalization baseline if
	// missing). Leaving it empty skips the figure, keeping the default figure
	// set — and its byte-exact output — unchanged.
	MemModels []MemModel
	// Scale is the workload scale factor (default 0.25, or 0.1 under Quick).
	Scale float64
	// Workers bounds simultaneous runs (default GOMAXPROCS). It affects
	// wall-clock time only, never results.
	Workers int
	// Cache, when non-nil, is consulted before every figure run and fed every
	// newly simulated result (see DirCache): a replay whose grids are fully
	// cached performs zero simulation and still emits byte-identical figures.
	Cache ResultCache
	// CacheOnly forbids simulation: any figure run missing from Cache aborts
	// rendering with an error naming it. This is `figures -from DIR` — e.g.
	// rendering from cache entries merged out of CI shard artifacts.
	CacheOnly bool
	// Parallelism selects the event engine's dispatcher for every figure
	// run, with Config.Parallelism semantics: ParallelismAuto (0, the
	// default) resolves per host at New time, ParallelismSerial (-1) forces
	// serial, n > 0 forces n workers. Like Workers it affects wall-clock
	// time only, never results: figure output is byte-identical for every
	// value.
	Parallelism int
	// BaseSeed is the single simulation seed shared by EVERY figure run
	// (default 1). Sharing one seed — rather than deriving per-run seeds à
	// la RunSpecs — guarantees all schemes and ST sizes simulate the
	// identical workload instance, so normalized views compare like with
	// like.
	BaseSeed uint64
	// TraceDir, when non-empty, adds the time-resolved trace figure: a small
	// dedicated grid (traceWorkloads under SchemeSynCron) re-runs with a
	// TraceCollector attached, and the per-workload trace plus its three
	// analysis views (queue depth, link utilization, lock hold times) are
	// written into the directory as CSV files. The traced grid always
	// simulates — it deliberately ignores Cache, since a cache hit skips the
	// simulation the tracer observes — and its output is byte-identical at
	// any Parallelism setting. Leaving it empty skips the figure, keeping the
	// default figure set unchanged.
	TraceDir string
}

// quickWorkloads is the Quick subset: all four primitives, four data
// structures, two graph workloads, and both time-series inputs.
var quickWorkloads = []string{
	"lock", "barrier", "semaphore", "condvar",
	"stack", "queue", "hashtable", "skiplist",
	"pr.wk", "bfs.wk",
	"ts.air", "ts.pow",
}

// scalabilityWorkloads are the Figure-13 scaling subjects (real applications
// — scaling a fixed-size microbenchmark only adds contention); the ST
// ablation uses the sync-intensive stAblationWorkloads (Figure 22 picks
// workloads that actually pressure the table).
var (
	scalabilityWorkloads      = []string{"bfs.sl", "pr.wk", "ts.air", "ts.pow"}
	topologyWorkloads         = []string{"lock", "stack", "pr.wk", "ts.air"}
	memoryWorkloads           = []string{"lock", "stack", "pr.wk", "ts.air"}
	stAblationWorkloads       = []string{"ts.air", "bst_fg"}
	stAblationSizes           = []int{64, 48, 32, 16, 8}
	stAblationSizesQuick      = []int{64, 16, 8}
	scalabilityUnits          = []int{1, 2, 3, 4}
	scalabilityUnitsQuick     = []int{1, 2, 4}
	defaultComparisonBaseline = SchemeCentral
)

// withDefaults resolves the option defaults and guarantees the baseline
// scheme is part of the compared schemes.
func (o FigureOptions) withDefaults() FigureOptions {
	if o.Baseline == "" {
		o.Baseline = defaultComparisonBaseline
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []Scheme{SchemeCentral, SchemeHier, SchemeSynCron, SchemeIdeal}
	}
	hasBaseline := false
	for _, s := range o.Schemes {
		if s == o.Baseline {
			hasBaseline = true
		}
	}
	if !hasBaseline {
		o.Schemes = append([]Scheme{o.Baseline}, o.Schemes...)
	}
	if o.Scale == 0 {
		o.Scale = 0.25
		if o.Quick {
			o.Scale = 0.1
		}
	}
	if len(o.Workloads) == 0 {
		o.Workloads = WorkloadNames()
		if o.Quick {
			o.Workloads = quickWorkloads
		}
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if len(o.Topologies) > 0 {
		hasBase := false
		for _, t := range o.Topologies {
			if t == TopoAllToAll {
				hasBase = true
			}
		}
		if !hasBase {
			o.Topologies = append([]Topology{TopoAllToAll}, o.Topologies...)
		}
	}
	if len(o.MemModels) > 0 {
		hasBase := false
		for _, m := range o.MemModels {
			if m == MemModelFlat {
				hasBase = true
			}
		}
		if !hasBase {
			o.MemModels = append([]MemModel{MemModelFlat}, o.MemModels...)
		}
	}
	return o
}

// Figures runs the canonical grids and renders the paper's evaluation views:
//
//   - throughput: operations/ms per workload and scheme (Figures 10-11)
//   - speedup: speedup over the baseline scheme with geomean rows per
//     workload family (Figure 12)
//   - scalability: SynCron speedup over its smallest system size (Figure 13)
//   - energy: energy split normalized to the baseline's total (Figure 14)
//   - traffic: data movement normalized to the baseline's total (Figure 15)
//   - st-ablation: ST occupancy, overflow, and slowdown vs ST size
//     (Figure 22 / Table 7)
//   - topology: interconnect sensitivity — slowdown, network energy, and
//     link traffic per topology vs the all-to-all baseline (only when
//     FigureOptions.Topologies is non-empty)
//   - memory: DRAM-model sensitivity — slowdown, memory energy, and row-hit
//     rate per timing model vs the flat baseline (only when
//     FigureOptions.MemModels is non-empty)
//   - trace: time-resolved engine/link/lock summaries from traced re-runs of
//     a small workload subset, with the full traces and their analysis views
//     written into FigureOptions.TraceDir as CSV files (only when TraceDir
//     is non-empty)
//
// Output is deterministic for fixed options: runs get seeds derived from
// BaseSeed and grid position, independent of Workers. Any failed run aborts
// with an error naming it.
func Figures(opt FigureOptions) ([]*Figure, error) {
	o := opt.withDefaults()
	grids := figureGridsFor(o)

	grid, err := runGrid(grids.main)
	if err != nil {
		return nil, err
	}
	table, err := SpeedupVsBaseline(grid, o.Baseline)
	if err != nil {
		return nil, err
	}
	figs := []*Figure{
		throughputFigure(table),
		speedupFigure(table),
	}

	scalGrid, err := runGrid(grids.scalability)
	if err != nil {
		return nil, err
	}
	curves, err := Scalability(scalGrid, SchemeSynCron)
	if err != nil {
		return nil, err
	}
	figs = append(figs, scalabilityFigure(curves, grids.scalUnits))

	energy, err := EnergyBreakdown(grid, o.Baseline)
	if err != nil {
		return nil, err
	}
	figs = append(figs, energyFigure(energy, o.Baseline))

	traffic, err := TrafficBreakdown(grid, o.Baseline)
	if err != nil {
		return nil, err
	}
	figs = append(figs, trafficFigure(traffic, o.Baseline))

	stGrid, err := runGrid(grids.stAblation)
	if err != nil {
		return nil, err
	}
	ablation, err := STAblation(stGrid)
	if err != nil {
		return nil, err
	}
	figs = append(figs, stAblationFigure(ablation))

	if grids.topology != nil {
		topoGrid, err := runGrid(*grids.topology)
		if err != nil {
			return nil, err
		}
		rows, err := TopologySensitivity(topoGrid, TopoAllToAll)
		if err != nil {
			return nil, err
		}
		figs = append(figs, topologyFigure(rows))
	}
	if grids.memory != nil {
		memGrid, err := runGrid(*grids.memory)
		if err != nil {
			return nil, err
		}
		rows, err := MemSensitivity(memGrid, MemModelFlat)
		if err != nil {
			return nil, err
		}
		figs = append(figs, memoryFigure(rows))
	}
	if o.TraceDir != "" {
		fig, err := traceFigure(o)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// FigureSweeps returns the canonical sweeps Figures(opt) runs, in order: the
// main (workload x scheme) grid, the scalability grid, the ST-ablation grid,
// and — only when the corresponding option is non-empty — the topology and
// memory grids. The macro-benchmark mode (`syncron-bench -perf`) replays
// exactly these grids, so perf trajectories measure the same work the
// figures pipeline does.
func FigureSweeps(opt FigureOptions) []Sweep {
	g := figureGridsFor(opt.withDefaults())
	sweeps := []Sweep{g.main, g.scalability, g.stAblation}
	if g.topology != nil {
		sweeps = append(sweeps, *g.topology)
	}
	if g.memory != nil {
		sweeps = append(sweeps, *g.memory)
	}
	return sweeps
}

// figureGrids names the canonical grids so Figures never has to address them
// positionally.
type figureGrids struct {
	main        Sweep
	scalability Sweep
	stAblation  Sweep
	topology    *Sweep // nil unless FigureOptions.Topologies is non-empty
	memory      *Sweep // nil unless FigureOptions.MemModels is non-empty

	// scalUnits is the x-axis of the scalability figure — the same Units list
	// the scalability sweep runs.
	scalUnits []int
}

// figureGridsFor builds the figure grids from already-resolved options.
func figureGridsFor(o FigureOptions) figureGrids {
	scalUnits := scalabilityUnits
	stSizes := stAblationSizes
	if o.Quick {
		scalUnits = scalabilityUnitsQuick
		stSizes = stAblationSizesQuick
	}
	g := figureGrids{
		main: Sweep{
			Workloads: o.Workloads,
			Schemes:   o.Schemes,
			Params:    WorkloadParams{Scale: o.Scale},
			Workers:   o.Workers,
			Base:      Config{Seed: o.BaseSeed, Parallelism: o.Parallelism},
			Cache:     o.Cache,
			CacheOnly: o.CacheOnly,
		},
		// Scaling needs enough work per core to amortize remote accesses, so
		// the scalability grid runs larger inputs than the main grid (like the
		// paper, whose Figure 13 uses the full-size applications).
		scalability: Sweep{
			Workloads: registeredOnly(scalabilityWorkloads),
			Schemes:   []Scheme{SchemeSynCron},
			Units:     scalUnits,
			Params:    WorkloadParams{Scale: o.Scale * 5},
			Workers:   o.Workers,
			Base:      Config{Seed: o.BaseSeed, Parallelism: o.Parallelism},
			Cache:     o.Cache,
			CacheOnly: o.CacheOnly,
		},
		stAblation: Sweep{
			Workloads: registeredOnly(stAblationWorkloads),
			Schemes:   []Scheme{SchemeSynCron},
			STEntries: stSizes,
			Params:    WorkloadParams{Scale: o.Scale},
			Workers:   o.Workers,
			Base:      Config{Seed: o.BaseSeed, Parallelism: o.Parallelism},
			Cache:     o.Cache,
			CacheOnly: o.CacheOnly,
		},
		scalUnits: scalUnits,
	}
	if len(o.Topologies) > 0 {
		g.topology = &Sweep{
			Workloads:  registeredOnly(topologyWorkloads),
			Schemes:    o.Schemes,
			Topologies: o.Topologies,
			Params:     WorkloadParams{Scale: o.Scale},
			Workers:    o.Workers,
			Base:       Config{Seed: o.BaseSeed, Parallelism: o.Parallelism},
			Cache:      o.Cache,
			CacheOnly:  o.CacheOnly,
		}
	}
	if len(o.MemModels) > 0 {
		g.memory = &Sweep{
			Workloads: registeredOnly(memoryWorkloads),
			Schemes:   o.Schemes,
			MemModels: o.MemModels,
			Params:    WorkloadParams{Scale: o.Scale},
			Workers:   o.Workers,
			Base:      Config{Seed: o.BaseSeed, Parallelism: o.Parallelism},
			Cache:     o.Cache,
			CacheOnly: o.CacheOnly,
		}
	}
	return g
}

// runGrid executes a sweep and converts any failed run into an error, so
// figures are never silently built from partial grids.
func runGrid(s Sweep) ([]RunResult, error) {
	results := s.Run()
	for _, r := range ResultSet(results).Failed() {
		return nil, fmt.Errorf("syncron: %s under %s failed: %s",
			r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
	}
	return results, nil
}

// registeredOnly filters names down to those present in the registry, so the
// canonical figure subsets survive a build with a trimmed workload set.
func registeredOnly(names []string) []string {
	var out []string
	for _, name := range names {
		if _, ok := LookupWorkload(name); ok {
			out = append(out, name)
		}
	}
	return out
}

func throughputFigure(t *SpeedupTable) *Figure {
	f := &Figure{
		ID:      "throughput",
		Title:   "Throughput in operations/ms per scheme (Figures 10-11)",
		Columns: append([]string{"workload"}, schemeColumns(t.Schemes)...),
	}
	for _, row := range t.Rows {
		cells := []string{row.Label}
		for _, s := range t.Schemes {
			cells = append(cells, fmtF1(row.Throughput[s]))
		}
		f.Rows = append(f.Rows, cells)
	}
	return f
}

func speedupFigure(t *SpeedupTable) *Figure {
	f := &Figure{
		ID: "speedup",
		Title: fmt.Sprintf("Speedup normalized to %s, geomean per workload family (Figure 12)",
			t.Baseline),
		Columns: append([]string{"workload"}, schemeColumns(t.Schemes)...),
		Notes: "paper AVG (26 applications): Hier 1.19x, SynCron 1.47x, Ideal 1.62x over Central; " +
			"SynCron within 9.5% of Ideal",
	}
	emitGeomean := func(label string, by map[Scheme]float64) {
		cells := []string{"**" + label + "**"}
		for _, s := range t.Schemes {
			cells = append(cells, "**"+fmtF2(by[s])+"**")
		}
		f.Rows = append(f.Rows, cells)
	}
	kinds := t.Kinds()
	for _, kind := range kinds {
		for _, row := range t.Rows {
			if row.Kind != kind {
				continue
			}
			cells := []string{row.Label}
			for _, s := range t.Schemes {
				cells = append(cells, fmtF2(row.Speedup[s]))
			}
			f.Rows = append(f.Rows, cells)
		}
		emitGeomean("geomean ("+string(kind)+")", t.KindGeomean[kind])
	}
	if len(kinds) > 1 {
		emitGeomean("geomean (all)", t.OverallGeomean)
	}
	return f
}

func scalabilityFigure(curves []ScalabilityCurve, units []int) *Figure {
	f := &Figure{
		ID:    "scalability",
		Title: "SynCron speedup over its smallest configuration vs NDP units (Figure 13)",
		Notes: "paper: 2.03x on average at 4 NDP units (range 1.32x-3.03x)",
	}
	f.Columns = []string{"workload"}
	for _, u := range units {
		f.Columns = append(f.Columns, fmt.Sprintf("%d unit(s)", u))
	}
	for _, c := range curves {
		cells := []string{c.Workload}
		byUnits := map[int]ScalabilityPoint{}
		for _, pt := range c.Points {
			byUnits[pt.Units] = pt
		}
		for _, u := range units {
			if pt, ok := byUnits[u]; ok {
				cells = append(cells, fmtF2(pt.Speedup))
			} else {
				cells = append(cells, "-")
			}
		}
		f.Rows = append(f.Rows, cells)
	}
	return f
}

func energyFigure(rows []EnergyRow, baseline Scheme) *Figure {
	f := &Figure{
		ID: "energy",
		Title: fmt.Sprintf("Energy split (cache/network/memory), normalized to %s total = 1.0 (Figure 14)",
			baseline),
		Columns: []string{"workload", "scheme", "cache", "network", "memory", "total"},
		Notes:   "paper: SynCron reduces energy 2.22x vs Central and 1.94x vs Hier, within 6.2% of Ideal",
	}
	for _, r := range rows {
		f.Rows = append(f.Rows, []string{r.Label, string(r.Scheme),
			fmtF2(r.Cache), fmtF2(r.Network), fmtF2(r.Memory), fmtF2(r.Total)})
	}
	return f
}

func trafficFigure(rows []TrafficRow, baseline Scheme) *Figure {
	f := &Figure{
		ID: "traffic",
		Title: fmt.Sprintf("Data movement inside/across NDP units, normalized to %s total = 1.0 (Figure 15)",
			baseline),
		Columns: []string{"workload", "scheme", "inside", "across", "total"},
		Notes:   "paper: SynCron reduces data movement 2.08x vs Central and 2.04x vs Hier",
	}
	for _, r := range rows {
		f.Rows = append(f.Rows, []string{r.Label, string(r.Scheme),
			fmtF2(r.Inside), fmtF2(r.Across), fmtF2(r.Total)})
	}
	return f
}

func stAblationFigure(rows []OccupancyRow) *Figure {
	f := &Figure{
		ID:      "st-ablation",
		Title:   "SynCron ST occupancy, overflow, and slowdown vs ST size (Figure 22 / Table 7)",
		Columns: []string{"workload", "ST entries", "ops/ms", "slowdown", "max occ", "mean occ", "overflowed"},
		Notes: "paper: graphs never overflow at 64 entries; time series overflows below 48 entries " +
			"with small slowdowns",
	}
	for _, r := range rows {
		f.Rows = append(f.Rows, []string{r.Workload, fmt.Sprint(r.STEntries),
			fmtF1(r.OpsPerMs), fmtF2(r.SlowdownVsLargest),
			fmtPct(r.MaxOccupancy), fmtPct(r.MeanOccupancy), fmtPct(r.Overflowed)})
	}
	return f
}

func topologyFigure(rows []TopologyRow) *Figure {
	f := &Figure{
		ID: "topology",
		Title: fmt.Sprintf("Interconnect sensitivity: slowdown, network energy, and link traffic vs %s",
			TopoAllToAll),
		Columns: []string{"workload", "scheme", "topology", "diameter", "avg links",
			"ops/ms", "slowdown", "net energy x", "link bytes x"},
		Notes: "slowdown/energy/traffic are relative to the alltoall run of the same workload, " +
			"scheme, and grid point (alltoall = 1.00); multi-hop topologies pay energy per link traversed",
	}
	for _, r := range rows {
		f.Rows = append(f.Rows, []string{r.Workload, string(r.Scheme), string(r.Topology),
			fmt.Sprint(r.Diameter), fmtF2(r.AvgRouteLinks), fmtF1(r.OpsPerMs),
			fmtF2(r.SlowdownVsBase), fmtF2(r.NetworkEnergyX), fmtF2(r.LinkBytesX)})
	}
	return f
}

func memoryFigure(rows []MemRow) *Figure {
	f := &Figure{
		ID: "memory",
		Title: fmt.Sprintf("DRAM-model sensitivity: slowdown, memory energy, and row locality vs %s",
			MemModelFlat),
		Columns: []string{"workload", "scheme", "mem model", "row hit rate",
			"ops/ms", "slowdown", "mem energy x"},
		Notes: "slowdown/energy are relative to the flat-model run of the same workload, scheme, " +
			"and grid point (flat = 1.00); the bank model rewards row locality with column-only " +
			"hits and activate/precharge energy savings",
	}
	for _, r := range rows {
		f.Rows = append(f.Rows, []string{r.Workload, string(r.Scheme), string(r.MemModel),
			fmtPct(r.RowHitRate), fmtF1(r.OpsPerMs),
			fmtF2(r.SlowdownVsBase), fmtF2(r.MemEnergyX)})
	}
	return f
}

// schemeColumns renders scheme names as column headers.
func schemeColumns(schemes []Scheme) []string {
	var cols []string
	for _, s := range schemes {
		cols = append(cols, string(s))
	}
	return cols
}

func fmtF1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func fmtF2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
