package syncron_test

import (
	"testing"

	"syncron"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys := syncron.New(syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2, CoresPerUnit: 4})
	lock := sys.AllocLocal(0, 64)
	counter := sys.AllocShared(1, 64)
	value := 0
	sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
		for i := 0; i < 20; i++ {
			ctx.Lock(lock)
			ctx.Read(counter)
			value++
			ctx.Write(counter)
			ctx.Unlock(lock)
			ctx.Compute(100)
		}
	})
	rep := sys.Run()
	if value != sys.NumCores()*20 {
		t.Fatalf("counter = %d, want %d", value, sys.NumCores()*20)
	}
	if rep.Makespan <= 0 || rep.TotalEnergyPJ() <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Scheme != "syncron" {
		t.Fatalf("scheme = %q", rep.Scheme)
	}
	if len(rep.PerCore) != sys.NumCores() {
		t.Fatalf("per-core stats for %d cores", len(rep.PerCore))
	}
}

func TestAllSchemesConstructAndRun(t *testing.T) {
	for _, scheme := range []syncron.Scheme{
		syncron.SchemeSynCron, syncron.SchemeSynCronFlat, syncron.SchemeCentral,
		syncron.SchemeHier, syncron.SchemeIdeal, syncron.SchemeMESILock,
		syncron.SchemeTTAS, syncron.SchemeHTL,
	} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			sys := syncron.New(syncron.Config{Scheme: scheme, Units: 2, CoresPerUnit: 2})
			lock := sys.AllocLocal(0, 64)
			sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
				for i := 0; i < 5; i++ {
					ctx.Lock(lock)
					ctx.Compute(10)
					ctx.Unlock(lock)
				}
			})
			if rep := sys.Run(); rep.Makespan <= 0 {
				t.Fatal("no progress")
			}
		})
	}
}

func TestSchemeOrderingHoldsAtAPILevel(t *testing.T) {
	run := func(scheme syncron.Scheme) syncron.Time {
		sys := syncron.New(syncron.Config{Scheme: scheme})
		bar := sys.AllocLocal(0, 64)
		n := sys.NumCores()
		sys.Spawn(n, func(ctx *syncron.Context) {
			for i := 0; i < 10; i++ {
				ctx.Compute(100)
				ctx.BarrierAcrossUnits(bar, n)
			}
		})
		return sys.Run().Makespan
	}
	ideal := run(syncron.SchemeIdeal)
	sc := run(syncron.SchemeSynCron)
	central := run(syncron.SchemeCentral)
	if !(ideal < sc && sc < central) {
		t.Fatalf("ordering violated: ideal=%v syncron=%v central=%v", ideal, sc, central)
	}
}

func TestSTOccupancyReported(t *testing.T) {
	sys := syncron.New(syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2, CoresPerUnit: 4, STEntries: 8})
	locks := make([]uint64, 16)
	for i := range locks {
		locks[i] = sys.AllocLocal(i%2, 64)
	}
	sys.SpawnEach(sys.NumCores(), func(i int) syncron.Program {
		return func(ctx *syncron.Context) {
			for k := 0; k < 10; k++ {
				l := locks[(i*3+k)%len(locks)]
				ctx.Lock(l)
				ctx.Compute(50)
				ctx.Unlock(l)
			}
		}
	})
	rep := sys.Run()
	if rep.STOccupancyMax <= 0 {
		t.Fatal("ST occupancy not reported")
	}
}
