package syncron

import (
	"runtime"
	"testing"
)

// TestResolveParallelism pins the public knob's mapping to engine worker
// counts: positive values pass through, ParallelismSerial forces the serial
// dispatcher, and ParallelismAuto picks min(GOMAXPROCS, simulated units)
// on multi-core hosts and serial on single-core hosts.
func TestResolveParallelism(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	auto := func(simUnits int) int {
		if procs < 2 {
			return 0
		}
		if procs < simUnits {
			return procs
		}
		return simUnits
	}
	cases := []struct {
		name     string
		p        int
		simUnits int
		want     int
	}{
		{"explicit workers pass through", 3, 64, 3},
		{"explicit workers above unit count pass through", 128, 64, 128},
		{"serial sentinel maps to the serial dispatcher", ParallelismSerial, 64, 0},
		{"auto resolves per host", ParallelismAuto, 64, auto(64)},
		{"auto caps at the simulated unit count", ParallelismAuto, 2, auto(2)},
	}
	for _, c := range cases {
		if got := resolveParallelism(c.p, c.simUnits); got != c.want {
			t.Errorf("%s: resolveParallelism(%d, %d) = %d, want %d",
				c.name, c.p, c.simUnits, got, c.want)
		}
	}
}

// TestNewResolvesParallelism checks New wires the resolved worker count into
// the engine: the default Config is auto, WithParallelism forces exact
// counts, and ParallelismSerial keeps the serial dispatcher.
func TestNewResolvesParallelism(t *testing.T) {
	// Default machine: 4 units x 15 cores + 4 resource units = 64 sim units.
	if got, want := New().m.Engine.Parallelism(),
		resolveParallelism(ParallelismAuto, 64); got != want {
		t.Errorf("New() engine parallelism = %d, want auto resolution %d", got, want)
	}
	if got := New(WithParallelism(2)).m.Engine.Parallelism(); got != 2 {
		t.Errorf("WithParallelism(2) engine parallelism = %d, want 2", got)
	}
	if got := New(WithParallelism(ParallelismSerial)).m.Engine.Parallelism(); got != 0 {
		t.Errorf("WithParallelism(ParallelismSerial) engine parallelism = %d, want 0 (serial)", got)
	}
	sys := New(WithUnits(2), WithCoresPerUnit(1), WithParallelism(ParallelismAuto))
	want := resolveParallelism(ParallelismAuto, 4)
	if got := sys.m.Engine.Parallelism(); got != want {
		t.Errorf("auto on a 2x1 machine: engine parallelism = %d, want %d", got, want)
	}
}
