package syncron_test

import (
	"fmt"

	"syncron"
)

// ExampleNew builds a small SynCron system, runs a contended counter on
// every core, and checks mutual exclusion held.
func ExampleNew() {
	sys := syncron.New(
		syncron.WithScheme(syncron.SchemeSynCron),
		syncron.WithUnits(2),
		syncron.WithCoresPerUnit(2),
	)
	lock := sys.AllocLocal(0, 64)
	counter := 0
	sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
		for i := 0; i < 10; i++ {
			ctx.Lock(lock)
			counter++
			ctx.Unlock(lock)
			ctx.Compute(100)
		}
	})
	rep := sys.Run()
	fmt.Println(counter, rep.Makespan > 0)
	// Output: 40 true
}

// ExampleExecute runs one registered workload on one configuration and
// reports the structured result.
func ExampleExecute() {
	res := syncron.Execute(syncron.RunSpec{
		Workload: "stack",
		Config:   syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2, CoresPerUnit: 2},
		Params:   syncron.WorkloadParams{OpsPerCore: 5},
	})
	fmt.Println(res.Err == "", res.Ops)
	// Output: true 20
}

// ExampleSweep expands a (workload x scheme) grid and runs it on a worker
// pool with deterministic per-run seeds.
func ExampleSweep() {
	results := syncron.Sweep{
		Workloads: []string{"lock", "stack"},
		Schemes:   []syncron.Scheme{syncron.SchemeCentral, syncron.SchemeSynCron},
		Base:      syncron.Config{Units: 2, CoresPerUnit: 2},
		Params:    syncron.WorkloadParams{Scale: 0.05, OpsPerCore: 5},
	}.Run()
	fmt.Println(len(results), len(syncron.ResultSet(results).Failed()))
	// Output: 4 0
}

// ExampleSpeedupVsBaseline turns sweep results into the paper's headline
// view: per-workload speedup normalized to a baseline scheme.
func ExampleSpeedupVsBaseline() {
	results := syncron.Sweep{
		Workloads: []string{"lock", "stack"},
		Schemes:   []syncron.Scheme{syncron.SchemeCentral, syncron.SchemeSynCron},
		Base:      syncron.Config{Units: 2, CoresPerUnit: 2},
		Params:    syncron.WorkloadParams{Scale: 0.05, OpsPerCore: 5},
	}.Run()
	table, err := syncron.SpeedupVsBaseline(results, syncron.SchemeCentral)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range table.Rows {
		// The baseline's speedup over itself is exactly 1 by construction;
		// SynCron must not lose to the message-passing baseline.
		fmt.Println(row.Workload,
			row.Speedup[syncron.SchemeCentral],
			row.Speedup[syncron.SchemeSynCron] >= 1)
	}
	// Output:
	// lock 1 true
	// stack 1 true
}

// ExampleParseScheme resolves scheme names, including the "flat" alias.
func ExampleParseScheme() {
	s, _ := syncron.ParseScheme("flat")
	fmt.Println(s)
	// Output: syncron-flat
}

// ExampleWorkloadNamesOfKind lists one family of the workload registry.
func ExampleWorkloadNamesOfKind() {
	fmt.Println(syncron.WorkloadNamesOfKind(syncron.KindPrimitive))
	// Output: [barrier condvar lock semaphore]
}

// ExampleLookupInfo shows the registry metadata the analysis layer
// aggregates by.
func ExampleLookupInfo() {
	info, ok := syncron.LookupInfo("pr.wk")
	fmt.Println(ok, info.Kind, info.Family)
	// Output: true graph application pr
}

// ExampleWithTopology runs the same contended workload on two interconnect
// topologies: the paper's all-to-all wiring and a star, where every
// cross-unit message takes two links through a shared switch.
func ExampleWithTopology() {
	makespan := func(topo syncron.Topology) syncron.Time {
		sys := syncron.New(
			syncron.WithTopology(topo),
			syncron.WithUnits(4),
			syncron.WithCoresPerUnit(2),
		)
		lock := sys.AllocLocal(0, 64)
		counter := 0
		sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
			for i := 0; i < 20; i++ {
				ctx.Lock(lock)
				counter++
				ctx.Unlock(lock)
			}
		})
		return sys.Run().Makespan
	}
	direct := makespan(syncron.TopoAllToAll)
	hub := makespan(syncron.TopoStar)
	fmt.Println(direct > 0, hub > direct)
	// Output: true true
}
