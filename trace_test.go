package syncron_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"syncron"
)

// tracedSpec is a small real workload used by the end-to-end trace tests:
// big enough to exercise locks, cross-unit messages, and queue-depth
// variation, small enough to run in milliseconds.
func tracedSpec(parallelism int, tr syncron.Tracer) syncron.RunSpec {
	return syncron.RunSpec{
		Workload: "stack",
		Config: syncron.Config{
			Scheme:       syncron.SchemeSynCron,
			Units:        2,
			CoresPerUnit: 4,
			Seed:         7,
			Parallelism:  parallelism,
			Tracer:       tr,
		},
		Params: syncron.WorkloadParams{OpsPerCore: 20},
	}
}

// A traced run must produce a byte-identical trace under the serial and
// parallel dispatchers — the tracing layer's core determinism contract,
// also enforced end-to-end by CI's trace-determinism job.
func TestTraceByteIdenticalAcrossDispatchers(t *testing.T) {
	runCSV := func(parallelism int) (string, uint64) {
		col := syncron.NewTraceCollector()
		res := syncron.Execute(tracedSpec(parallelism, col))
		if res.Err != "" {
			t.Fatalf("traced run failed: %s", res.Err)
		}
		var buf bytes.Buffer
		if err := col.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res.Events
	}
	serialCSV, serialEvents := runCSV(syncron.ParallelismSerial)
	parallelCSV, parallelEvents := runCSV(4)

	if serialEvents != parallelEvents {
		t.Fatalf("event counts diverged: serial %d, parallel %d", serialEvents, parallelEvents)
	}
	if serialCSV != parallelCSV {
		t.Fatal("serial and parallel-4 traces are not byte-identical")
	}

	// The trace must cover every instrumented layer: engine activity,
	// network transfers, and synchronization spans.
	for _, what := range []string{"queue_depth", "dispatched", "link_xfer", "lock_wait", "lock_hold"} {
		if !strings.Contains(serialCSV, ","+what+",") {
			t.Errorf("trace has no %s records", what)
		}
	}

	// And it must round-trip through the CSV schema.
	recs, err := syncron.ReadTraceCSV(strings.NewReader(serialCSV))
	if err != nil {
		t.Fatalf("ReadTraceCSV rejected collector output: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("trace is empty")
	}
	col2 := syncron.NewTraceCollector()
	for _, r := range recs {
		col2.Emit(r)
	}
	var buf2 bytes.Buffer
	if err := col2.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != serialCSV {
		t.Error("trace CSV did not round-trip byte-identically")
	}
}

// A traced run must report the same simulated results as an untraced run:
// the tracer is observation only.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	traced := syncron.Execute(tracedSpec(syncron.ParallelismSerial, syncron.NewTraceCollector()))
	plain := syncron.Execute(tracedSpec(syncron.ParallelismSerial, nil))
	if traced.Err != "" || plain.Err != "" {
		t.Fatalf("run failed: traced=%q plain=%q", traced.Err, plain.Err)
	}
	if traced.Makespan != plain.Makespan || traced.Events != plain.Events {
		t.Errorf("tracing changed the simulation: traced (%d ps, %d events) vs plain (%d ps, %d events)",
			traced.Makespan, traced.Events, plain.Makespan, plain.Events)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// QueueDepthSeries rebuckets engine records into uniform slices: max-merge
// for depth, overlap-proportional split for dispatched counts, untouched
// slices omitted. Hand-computed fixture over a 4-slice horizon of [0, 400).
func TestQueueDepthSeriesFixture(t *testing.T) {
	recs := []syncron.TraceRecord{
		{Start: 0, End: 100, Where: "engine", What: "queue_depth", Value: 5, Unit: "events"},
		{Start: 0, End: 100, Where: "engine", What: "dispatched", Value: 8, Unit: "events"},
		{Start: 100, End: 200, Where: "engine", What: "queue_depth", Value: 9, Unit: "events"},
		// Spans two slices: dispatched splits 50/50, depth max-merges into both.
		{Start: 100, End: 300, Where: "engine", What: "dispatched", Value: 10, Unit: "events"},
		// Non-engine records extend the horizon but never touch a slice.
		{Start: 350, End: 400, Where: "var.0xa", What: "lock_hold", Value: 50, Unit: "ps"},
	}
	got := syncron.QueueDepthSeries(recs, 4)
	want := []syncron.QueueDepthBucket{
		{Start: 0, End: 100, MaxDepth: 5, Dispatched: 8},
		{Start: 100, End: 200, MaxDepth: 9, Dispatched: 5},
		{Start: 200, End: 300, MaxDepth: 0, Dispatched: 5},
		// Slice [300, 400) has no engine record and is omitted.
	}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.Start != w.Start || g.End != w.End || g.MaxDepth != w.MaxDepth || !almostEq(g.Dispatched, w.Dispatched) {
			t.Errorf("bucket %d: got %+v, want %+v", i, g, w)
		}
	}
}

// LinkUtilizationSeries aggregates link_xfer spans per link: busy time as a
// fraction of the horizon, and the busiest-slice fraction exposing bursts.
// Hand-computed fixture over a 2-slice horizon of [0, 200).
func TestLinkUtilizationSeriesFixture(t *testing.T) {
	recs := []syncron.TraceRecord{
		{Start: 0, End: 50, Where: "link.0-1", What: "link_xfer", Value: 64, Unit: "bytes"},
		{Start: 150, End: 200, Where: "link.0-1", What: "link_xfer", Value: 64, Unit: "bytes"},
		// Straddles the slice boundary: 20 ps of busy time in each slice.
		{Start: 80, End: 120, Where: "link.1-0", What: "link_xfer", Value: 32, Unit: "bytes"},
	}
	got := syncron.LinkUtilizationSeries(recs, 2)
	want := []syncron.LinkUtilization{
		// 50 ps busy in each 100 ps slice: BusyFrac 100/200, PeakFrac 50/100.
		{Link: "link.0-1", Transfers: 2, Bytes: 128, BusyFrac: 0.5, PeakFrac: 0.5},
		// 40 ps busy total, 20 ps in the busiest slice.
		{Link: "link.1-0", Transfers: 1, Bytes: 32, BusyFrac: 0.2, PeakFrac: 0.2},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d links, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.Link != w.Link || g.Transfers != w.Transfers || !almostEq(g.Bytes, w.Bytes) ||
			!almostEq(g.BusyFrac, w.BusyFrac) || !almostEq(g.PeakFrac, w.PeakFrac) {
			t.Errorf("link %d: got %+v, want %+v", i, g, w)
		}
	}
}

// LockHoldTimes computes per-variable hold/wait distributions with
// nearest-rank p95. Hand-computed fixture: var.0xa has both span kinds,
// var.0xb waits only; rows sort by variable name.
func TestLockHoldTimesFixture(t *testing.T) {
	recs := []syncron.TraceRecord{
		{Start: 0, End: 100, Where: "var.0xa", What: "lock_hold", Value: 100, Unit: "ps"},
		{Start: 200, End: 500, Where: "var.0xa", What: "lock_hold", Value: 300, Unit: "ps"},
		{Start: 600, End: 800, Where: "var.0xa", What: "lock_hold", Value: 200, Unit: "ps"},
		{Start: 150, End: 200, Where: "var.0xa", What: "lock_wait", Value: 50, Unit: "ps"},
		{Start: 0, End: 10, Where: "var.0xb", What: "lock_wait", Value: 10, Unit: "ps"},
		{Start: 20, End: 50, Where: "var.0xb", What: "lock_wait", Value: 30, Unit: "ps"},
		// Other record kinds are ignored.
		{Start: 0, End: 100, Where: "engine", What: "queue_depth", Value: 4, Unit: "events"},
	}
	got := syncron.LockHoldTimes(recs)
	want := []syncron.LockHoldRow{
		// holds [100, 200, 300]: mean 200, p95 = nearest-rank ceil(0.95*3)=3rd -> 300.
		{Var: "var.0xa", Holds: 3, Waits: 1,
			HoldMeanPs: 200, HoldP95Ps: 300, HoldMaxPs: 300,
			WaitMeanPs: 50, WaitP95Ps: 50, WaitMaxPs: 50},
		// waits [10, 30]: mean 20, p95 = ceil(0.95*2)=2nd -> 30.
		{Var: "var.0xb", Holds: 0, Waits: 2,
			WaitMeanPs: 20, WaitP95Ps: 30, WaitMaxPs: 30},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("row %d: got %+v, want %+v", i, got[i], w)
		}
	}
}
