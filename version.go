package syncron

import (
	"fmt"
	"runtime/debug"
)

// VersionInfo identifies a build of the simulator for cache-compatibility
// checks: two builds whose CacheVersion matches produce (and accept) each
// other's SpecKeys, so a client can decide whether a remote serve daemon's
// cache entries are meaningful for it. It is the one source of truth behind
// both `syncron-sim cache-version` and the serve daemon's `GET /version`.
type VersionInfo struct {
	// SpecKeyVersion is the canonical RunSpec encoding version (SpecKeyVersion).
	SpecKeyVersion int `json:"spec_key_version"`
	// CacheVersion is the key prefix every SpecKey carries ("v<N>").
	CacheVersion string `json:"cache_version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
	// Revision, VCSTime, and Modified describe the source the binary was
	// built from, when the build embedded VCS metadata (plain `go build` in a
	// git checkout does; `go run` of a dirty tree may not).
	Revision string `json:"revision,omitempty"`
	VCSTime  string `json:"vcs_time,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// Version reports the running build's identity. SpecKeyVersion and
// CacheVersion are always populated; the build metadata fields are best-effort
// (empty when the binary carries no build info).
func Version() VersionInfo {
	v := VersionInfo{
		SpecKeyVersion: SpecKeyVersion,
		CacheVersion:   fmt.Sprintf("v%d", SpecKeyVersion),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.VCSTime = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}
