package syncron

import (
	"fmt"
	"sort"
	"sync"
)

// WorkloadKind classifies a registered workload.
type WorkloadKind string

// Workload kinds.
const (
	KindPrimitive     WorkloadKind = "primitive"
	KindDataStructure WorkloadKind = "data structure"
	KindGraph         WorkloadKind = "graph application"
	KindTimeSeries    WorkloadKind = "time series"
)

// WorkloadParams tunes a workload run. The zero value means "use the
// workload's defaults"; fields irrelevant to a workload kind are ignored.
type WorkloadParams struct {
	// Scale shrinks or grows the workload proportionally (default 1.0).
	Scale float64 `json:"scale,omitempty"`
	// OpsPerCore is the operation count per core (data structures; default 40).
	OpsPerCore int `json:"ops_per_core,omitempty"`
	// Size overrides the initial element count (data structures).
	Size int `json:"size,omitempty"`
	// Interval is the instruction count between synchronization points
	// (primitives; default 200).
	Interval int64 `json:"interval,omitempty"`
	// Rounds is the number of synchronization points per core (primitives;
	// default derived from Scale).
	Rounds int `json:"rounds,omitempty"`
	// Metis selects the METIS-like greedy graph partitioner instead of the
	// default hash partitioner (graph applications).
	Metis bool `json:"metis,omitempty"`
}

// scale returns the effective scale factor.
func (p WorkloadParams) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// PreparedRun is a workload instantiated on a System, ready for System.Run.
type PreparedRun struct {
	// Ops is the number of logical operations the run will perform, used for
	// throughput reporting.
	Ops uint64
	// Check validates functional invariants after the run; nil means the
	// workload has no post-run check.
	Check func() error
}

// Workload is a benchmark that can be instantiated on any System. Register
// implementations with RegisterWorkload to make them reachable by name from
// the Sweep API and the syncron-sim command.
type Workload interface {
	// Name is the unique registry key (e.g. "stack", "lock", "pr.wk").
	Name() string
	// Kind classifies the workload for display.
	Kind() WorkloadKind
	// Prepare registers the workload's programs on sys.
	Prepare(sys *System, p WorkloadParams) (*PreparedRun, error)
}

var (
	workloadMu  sync.RWMutex
	workloadReg = map[string]Workload{}
)

// RegisterWorkload adds w to the public workload registry. It panics if a
// workload with the same name is already registered.
func RegisterWorkload(w Workload) {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if _, dup := workloadReg[w.Name()]; dup {
		panic(fmt.Sprintf("syncron: duplicate workload %q", w.Name()))
	}
	workloadReg[w.Name()] = w
}

// LookupWorkload returns the registered workload with the given name.
func LookupWorkload(name string) (Workload, bool) {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	w, ok := workloadReg[name]
	return w, ok
}

// WorkloadNames returns every registered workload name in sorted order.
func WorkloadNames() []string {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	names := make([]string, 0, len(workloadReg))
	for name := range workloadReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WorkloadNamesOfKind returns the registered names of one kind, sorted.
func WorkloadNamesOfKind(kind WorkloadKind) []string {
	var names []string
	workloadMu.RLock()
	for name, w := range workloadReg {
		if w.Kind() == kind {
			names = append(names, name)
		}
	}
	workloadMu.RUnlock()
	sort.Strings(names)
	return names
}
