package syncron

import (
	"fmt"
	"sort"
	"sync"
)

// WorkloadKind classifies a registered workload into one of the paper's four
// benchmark families. Figures and the analysis layer aggregate (geomean) over
// kinds, so every registered workload must report one.
type WorkloadKind string

// Workload kinds.
const (
	KindPrimitive     WorkloadKind = "primitive"
	KindDataStructure WorkloadKind = "data structure"
	KindGraph         WorkloadKind = "graph application"
	KindTimeSeries    WorkloadKind = "time series"
)

// Kinds returns the four workload families in the paper's evaluation order
// (Figure 10 microbenchmarks, Figure 11 data structures, Figure 12 graph
// applications and time series).
func Kinds() []WorkloadKind {
	return []WorkloadKind{KindPrimitive, KindDataStructure, KindGraph, KindTimeSeries}
}

// kindOrder ranks a kind by its Kinds position (unknown kinds sort last).
func kindOrder(k WorkloadKind) int {
	for i, known := range Kinds() {
		if k == known {
			return i
		}
	}
	return len(Kinds())
}

// WorkloadInfo is the registry metadata of one workload, used by discovery
// (syncron-sim list) and by the analysis layer to aggregate results.
type WorkloadInfo struct {
	// Name is the registry key (e.g. "pr.wk").
	Name string `json:"name"`
	// Kind is the benchmark family figures geomean over.
	Kind WorkloadKind `json:"kind"`
	// Family is a finer grouping within the kind: the application for graph
	// workloads ("pr.wk" → "pr"), "ts" for the time-series inputs, and the
	// workload's own name otherwise.
	Family string `json:"family"`
}

// familied is optionally implemented by workloads that belong to a named
// family finer than their Kind (e.g. the four inputs of one graph
// application).
type familied interface{ Family() string }

// infoOf derives the registry metadata for a workload.
func infoOf(w Workload) WorkloadInfo {
	info := WorkloadInfo{Name: w.Name(), Kind: w.Kind(), Family: w.Name()}
	if f, ok := w.(familied); ok {
		info.Family = f.Family()
	}
	return info
}

// WorkloadParams tunes a workload run. The zero value means "use the
// workload's defaults"; fields irrelevant to a workload kind are ignored.
type WorkloadParams struct {
	// Scale shrinks or grows the workload proportionally (default 1.0).
	Scale float64 `json:"scale,omitempty"`
	// OpsPerCore is the operation count per core (data structures; default 40).
	OpsPerCore int `json:"ops_per_core,omitempty"`
	// Size overrides the initial element count (data structures).
	Size int `json:"size,omitempty"`
	// Interval is the instruction count between synchronization points
	// (primitives; default 200).
	Interval int64 `json:"interval,omitempty"`
	// Rounds is the number of synchronization points per core (primitives;
	// default derived from Scale).
	Rounds int `json:"rounds,omitempty"`
	// Metis selects the METIS-like greedy graph partitioner instead of the
	// default hash partitioner (graph applications).
	Metis bool `json:"metis,omitempty"`
}

// scale returns the effective scale factor.
func (p WorkloadParams) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// PreparedRun is a workload instantiated on a System, ready for System.Run.
type PreparedRun struct {
	// Ops is the number of logical operations the run will perform, used for
	// throughput reporting.
	Ops uint64
	// Check validates functional invariants after the run; nil means the
	// workload has no post-run check.
	Check func() error
}

// Workload is a benchmark that can be instantiated on any System. Register
// implementations with RegisterWorkload to make them reachable by name from
// the Sweep API and the syncron-sim command.
type Workload interface {
	// Name is the unique registry key (e.g. "stack", "lock", "pr.wk").
	Name() string
	// Kind classifies the workload for display.
	Kind() WorkloadKind
	// Prepare registers the workload's programs on sys.
	Prepare(sys *System, p WorkloadParams) (*PreparedRun, error)
}

var (
	workloadMu  sync.RWMutex
	workloadReg = map[string]Workload{}
)

// RegisterWorkload adds w to the public workload registry. It panics if a
// workload with the same name is already registered.
func RegisterWorkload(w Workload) {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if _, dup := workloadReg[w.Name()]; dup {
		panic(fmt.Sprintf("syncron: duplicate workload %q", w.Name()))
	}
	workloadReg[w.Name()] = w
}

// LookupWorkload returns the registered workload with the given name.
func LookupWorkload(name string) (Workload, bool) {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	w, ok := workloadReg[name]
	return w, ok
}

// WorkloadNames returns every registered workload name in sorted order.
func WorkloadNames() []string {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	names := make([]string, 0, len(workloadReg))
	for name := range workloadReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WorkloadNamesOfKind returns the registered names of one kind, sorted.
func WorkloadNamesOfKind(kind WorkloadKind) []string {
	var names []string
	workloadMu.RLock()
	for name, w := range workloadReg {
		if w.Kind() == kind {
			names = append(names, name)
		}
	}
	workloadMu.RUnlock()
	sort.Strings(names)
	return names
}

// LookupInfo returns the registry metadata of one workload.
func LookupInfo(name string) (WorkloadInfo, bool) {
	w, ok := LookupWorkload(name)
	if !ok {
		return WorkloadInfo{}, false
	}
	return infoOf(w), true
}

// WorkloadInfos returns the metadata of every registered workload, sorted by
// kind (in Kinds order), then family, then name.
func WorkloadInfos() []WorkloadInfo {
	workloadMu.RLock()
	infos := make([]WorkloadInfo, 0, len(workloadReg))
	for _, w := range workloadReg {
		infos = append(infos, infoOf(w))
	}
	workloadMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i], infos[j]
		if a.Kind != b.Kind {
			return kindOrder(a.Kind) < kindOrder(b.Kind)
		}
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		return a.Name < b.Name
	})
	return infos
}
