#!/usr/bin/env bash
# perf_gate.sh BASE.txt HEAD.txt — compare two `go test -bench` result files
# with benchstat and fail (exit 1) when any benchmark shows a statistically
# significant slowdown of more than MAX_REGRESSION_PCT percent (default 10)
# in time/op. benchstat prints a delta column only when the difference is
# significant at p < 0.05 (otherwise "~"), so grepping the sec/op table for
# "+N%" deltas is exactly "significant slowdown".
#
# Benchmarks present in only one file (new or deleted) produce no delta and
# never fail the gate. Memory (B/op, allocs/op) and custom-metric tables are
# reported for context but are not gated: time is the contract, allocations
# are pinned separately by TestEngineSteadyStateAllocFree.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 BASE.txt HEAD.txt" >&2
    exit 2
fi
base=$1
head=$2
max=${MAX_REGRESSION_PCT:-10}

if ! command -v benchstat >/dev/null; then
    echo "perf_gate: benchstat not found (go install golang.org/x/perf/cmd/benchstat@latest)" >&2
    exit 2
fi

# A result file with no benchmark lines means the corresponding run produced
# nothing to compare — benchstat would emit single-column tables with no
# deltas and the gate would pass vacuously. Refuse to gate on it.
for f in "$base" "$head"; do
    if ! grep -q '^Benchmark' "$f"; then
        echo "perf_gate: $f contains no benchmark results; refusing a vacuous pass" >&2
        exit 2
    fi
done

out=$(mktemp)
benchstat "base=$base" "head=$head" | tee "$out"

status=0
awk -v max="$max" '
    # Table header rows (the only lines containing │ box-drawing separators)
    # name the unit of the section that follows; only sec/op is gated.
    /│/ { timing = ($0 ~ /sec\/op/); next }
    timing && $1 == "geomean" { next }
    timing {
        for (i = 2; i <= NF; i++) {
            if ($i ~ /^\+[0-9]+(\.[0-9]+)?%$/) {
                pct = substr($i, 2, length($i) - 2) + 0
                if (pct > max) {
                    bad = 1
                    print "PERF REGRESSION (>" max "% slower, significant): " $0
                }
            }
        }
    }
    END { exit bad }
' "$out" || status=$?
rm -f "$out"
if [ "$status" -ne 0 ]; then
    echo "perf gate failed: significant >${max}% time/op regression vs base." >&2
    echo "If the slowdown is intended, add the perf-exempt label to the PR" >&2
    echo "or include [perf-exempt] in the head commit message." >&2
    exit 1
fi
echo "perf gate passed: no significant >${max}% time/op regression."
