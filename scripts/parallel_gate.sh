#!/usr/bin/env bash
# parallel_gate.sh [BENCH.json] — gate the parallel dispatcher's payoff from
# a syncron-bench -perf report: the parallel-4 entry must reach at least
# (100 - MAX_PARALLEL_DEFICIT_PCT)% of the serial entry's events/sec
# (default: 90%, i.e. parallel-4 may not run more than 10% slower than
# serial). On a healthy multi-core host parallel-4 should beat serial
# outright; the tolerance absorbs runner noise without letting a real
# "parallel is slower than serial" regression through.
#
# The gate skips (exit 0, with a notice) when the report has no parallel-4
# entry or it was measured on fewer than 4 CPUs — a deficit measured under
# oversubscription says nothing about the dispatcher. Requires jq.
set -euo pipefail

f=${1:-BENCH.json}
max_deficit=${MAX_PARALLEL_DEFICIT_PCT:-10}

if [ ! -f "$f" ]; then
    echo "parallel_gate: $f not found" >&2
    exit 2
fi
if ! command -v jq >/dev/null; then
    echo "parallel_gate: jq not found" >&2
    exit 2
fi

serial=$(jq -r '[.entries[] | select(.name == "serial")][0].events_per_sec // empty' "$f")
par=$(jq -r '[.entries[] | select(.name == "parallel-4")][0].events_per_sec // empty' "$f")
cpus=$(jq -r '[.entries[] | select(.name == "parallel-4")][0].num_cpu // empty' "$f")

if [ -z "$serial" ]; then
    echo "parallel_gate: $f has no serial entry; refusing a vacuous pass" >&2
    exit 2
fi
if [ -z "$par" ]; then
    echo "parallel_gate: no parallel-4 entry in $f (single-CPU host?); skipping"
    exit 0
fi
if [ "$cpus" -lt 4 ]; then
    echo "parallel_gate: parallel-4 was measured on $cpus CPUs; skipping (need >= 4 for an honest comparison)"
    exit 0
fi

# ratio as integer percent; jq does the float math so the shell doesn't.
pct=$(jq -r --argjson s "$serial" --argjson p "$par" -n '($p / $s * 100) | round')
echo "parallel_gate: parallel-4 at ${pct}% of serial throughput ($par vs $serial events/sec, $cpus CPUs)"
if [ "$pct" -lt "$((100 - max_deficit))" ]; then
    echo "PARALLEL REGRESSION: parallel-4 runs at ${pct}% of serial (< $((100 - max_deficit))% floor)" >&2
    exit 1
fi
