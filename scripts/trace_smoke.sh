#!/usr/bin/env bash
# trace_smoke.sh — end-to-end smoke test of the tracing layer, as CI runs it.
#
# Runs `syncron-sim run -trace` on a traced workload and asserts the trace is
# non-empty, well-formed CSV (pinned header, 6 fields per line, integer
# picosecond spans with end >= start, monotone non-decreasing start column —
# the deterministic commit order), and covers the expected record kinds.
# Then re-runs the identical spec under the serial and 4-worker parallel
# dispatchers and requires byte-identical traces, and runs a one-run sweep
# with -trace to check the per-run directory path.
#
# Usage: scripts/trace_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "==> building syncron-sim"
go build -o "$workdir/syncron-sim" ./cmd/syncron-sim
sim="$workdir/syncron-sim"

run_flags=(-workload stack -scheme syncron -units 2 -cores 8 -ops 20 -seed 7)

echo "==> tracing a run"
"$sim" run "${run_flags[@]}" -trace "$workdir/run.trace.csv" > /dev/null

echo "==> checking well-formedness"
header=$(head -1 "$workdir/run.trace.csv")
[ "$header" = "start_ps,end_ps,where,what,value,unit" ] \
  || { echo "bad trace header: $header" >&2; exit 1; }
lines=$(wc -l < "$workdir/run.trace.csv")
[ "$lines" -gt 1 ] || { echo "trace is empty" >&2; exit 1; }
echo "    $((lines - 1)) records"

awk -F, '
  NR == 1 { next }
  NF != 6 { print "line " NR ": " NF " fields, want 6"; bad = 1; exit }
  $1 !~ /^[0-9]+$/ || $2 !~ /^[0-9]+$/ { print "line " NR ": non-integer span"; bad = 1; exit }
  $2 + 0 < $1 + 0 { print "line " NR ": end before start"; bad = 1; exit }
  $1 + 0 < prev { print "line " NR ": start not monotone (commit order broken)"; bad = 1; exit }
  { prev = $1 + 0 }
  END { exit bad }
' "$workdir/run.trace.csv" || { echo "trace is malformed" >&2; exit 1; }

for what in queue_depth dispatched lock_wait lock_hold; do
  grep -q ",$what," "$workdir/run.trace.csv" \
    || { echo "no $what records in trace" >&2; exit 1; }
done

echo "==> tracing must be byte-identical across dispatchers"
"$sim" run "${run_flags[@]}" -parallel serial -trace "$workdir/serial.trace.csv" > /dev/null
"$sim" run "${run_flags[@]}" -parallel 4 -trace "$workdir/parallel.trace.csv" > /dev/null
diff "$workdir/serial.trace.csv" "$workdir/parallel.trace.csv" \
  || { echo "serial and parallel-4 traces differ" >&2; exit 1; }

echo "==> sweep -trace writes one trace per run"
"$sim" sweep -workloads stack -schemes syncron -units 2 -cores 8 -ops 20 \
  -trace "$workdir/sweeps" > /dev/null 2>&1
count=$(ls "$workdir/sweeps"/*.trace.csv 2>/dev/null | wc -l)
[ "$count" -eq 1 ] || { echo "expected 1 sweep trace, found $count" >&2; exit 1; }
head -1 "$workdir/sweeps"/*.trace.csv | grep -q "start_ps,end_ps" \
  || { echo "sweep trace has a bad header" >&2; exit 1; }

echo "==> trace smoke OK"
