#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the serve daemon, as CI runs it.
#
# Starts `syncron-sim serve` on an ephemeral port, submits a spec over HTTP,
# polls the job to completion, diffs the served result against the batch
# CLI's `run -json` output for the same spec (the byte-identity contract),
# then SIGTERMs the daemon and requires a clean drain (exit 0). A second
# daemon on the same cache directory must answer the identical submission at
# admission time (zero simulation) — the cache is the durable memoization
# tier across restarts.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
serve_pid=""
base=""
cleanup() {
  if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
    kill -9 "$serve_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

# start_daemon <logfile>: launches serve on an ephemeral port against the
# shared cache dir; sets serve_pid and base (from the banner's resolved addr).
start_daemon() {
  local log=$1
  "$sim" serve -addr 127.0.0.1:0 -cache "$workdir/cache" -workers 2 2> "$log" &
  serve_pid=$!
  base=""
  for _ in $(seq 1 100); do
    base=$(sed -n 's#.*serving on \(http://[0-9.:]*\).*#\1#p' "$log" | head -1)
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$log" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$base" ] || { echo "daemon never logged its address" >&2; cat "$log" >&2; exit 1; }
  for _ in $(seq 1 100); do
    curl -fsS "$base/healthz" > /dev/null 2>&1 && break
    sleep 0.1
  done
  echo "    daemon at $base"
}

# stop_daemon <logfile>: SIGTERM and require a clean drain with exit 0.
stop_daemon() {
  local log=$1 rc=0
  kill -TERM "$serve_pid"
  wait "$serve_pid" || rc=$?
  serve_pid=""
  if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc on SIGTERM" >&2
    cat "$log" >&2
    exit 1
  fi
  grep -q "drained cleanly" "$log" \
    || { echo "daemon did not report a clean drain" >&2; cat "$log" >&2; exit 1; }
}

echo "==> building syncron-sim"
go build -o "$workdir/syncron-sim" ./cmd/syncron-sim
sim="$workdir/syncron-sim"

run_flags=(-workload stack -scheme syncron -units 2 -cores 8 -ops 20 -seed 7)
# -print-spec emits the exact canonical RunSpec payload the daemon expects.
spec=$("$sim" run "${run_flags[@]}" -print-spec)

echo "==> starting serve daemon"
start_daemon "$workdir/serve1.log"

echo "==> submitting spec"
submit=$(curl -fsS -X POST "$base/jobs" -d "{\"specs\":[$spec]}")
job_id=$(printf '%s' "$submit" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1)
[ -n "$job_id" ] || { echo "no job id in response: $submit" >&2; exit 1; }
echo "    job $job_id"

echo "==> polling to completion"
state=""
for _ in $(seq 1 300); do
  status=$(curl -fsS "$base/jobs/$job_id")
  state=$(printf '%s' "$status" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
  [ "$state" = "done" ] && break
  if [ "$state" = "canceled" ]; then
    echo "job canceled unexpectedly: $status" >&2
    exit 1
  fi
  sleep 0.1
done
[ "$state" = "done" ] || { echo "job never finished (state: $state)" >&2; exit 1; }

echo "==> diffing served result against the batch CLI"
curl -fsS "$base/jobs/$job_id/result" > "$workdir/served.json"
"$sim" run "${run_flags[@]}" -json - > "$workdir/batch.json"
diff "$workdir/served.json" "$workdir/batch.json" \
  || { echo "served result is not byte-identical to run -json" >&2; exit 1; }

echo "==> graceful shutdown"
stop_daemon "$workdir/serve1.log"

echo "==> restarting on the same cache: resubmission must be done on arrival"
start_daemon "$workdir/serve2.log"
warm=$(curl -fsS -X POST "$base/jobs" -d "{\"specs\":[$spec]}")
printf '%s' "$warm" | grep -q '"state": "done"' \
  || { echo "warm resubmission not served from cache: $warm" >&2; exit 1; }
printf '%s' "$warm" | grep -q '"cache_hits": 1' \
  || { echo "warm resubmission reports no cache hit: $warm" >&2; exit 1; }
metrics=$(curl -fsS "$base/metrics")
printf '%s' "$metrics" | grep -q '"simulated": 0' \
  || { echo "warm daemon simulated something: $metrics" >&2; exit 1; }

echo "==> graceful shutdown (warm daemon)"
stop_daemon "$workdir/serve2.log"

echo "==> serve smoke OK"
