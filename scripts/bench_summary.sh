#!/usr/bin/env bash
# bench_summary.sh [BENCH.json] — render a syncron-bench -perf report as a
# GitHub job-summary Markdown table. CI appends the output to
# $GITHUB_STEP_SUMMARY so events/sec trends are visible on every PR without
# downloading artifacts:
#
#   go run ./cmd/syncron-bench -perf -perf-out BENCH.ci.json
#   scripts/bench_summary.sh BENCH.ci.json >> "$GITHUB_STEP_SUMMARY"
#
# The report carries one entry per measured configuration over the same
# grids: serial dispatch, parallel dispatch at each worker count, and the
# tracer-off/tracer-on pair pricing the tracing layer's hook points. The
# table shows one column each, plus each entry's throughput as a speedup over
# the serial entry (entry 0 is always serial), so a tracing or dispatch
# regression is visible as a ratio. Requires jq (preinstalled on
# ubuntu-latest runners).
set -euo pipefail

f=${1:-BENCH.json}
if [ ! -f "$f" ]; then
    echo "bench_summary: $f not found" >&2
    exit 2
fi
if ! command -v jq >/dev/null; then
    echo "bench_summary: jq not found" >&2
    exit 2
fi

jq -r '
    def r2: (. * 100 | round) / 100;
    "### Simulator macro-benchmark — \(.benchmark)",
    "",
    ("| metric | " + ([.entries[].name] | join(" | ")) + " |"),
    ("|---|" + ([.entries[] | "---:"] | join("|")) + "|"),
    ("| workers × parallelism | " + ([.entries[] | "\(.workers) × \(.parallelism)"] | join(" | ")) + " |"),
    ("| host CPUs | " + ([.entries[].num_cpu | tostring] | join(" | ")) + " |"),
    ("| events/sec | " + ([.entries[].events_per_sec | round | tostring] | join(" | ")) + " |"),
    ((.entries[0].events_per_sec) as $serial |
     "| speedup vs serial | " + ([.entries[] | "\(.events_per_sec / $serial * 100 | round / 100)×"] | join(" | ")) + " |"),
    ("| best wall ms | " + ([.entries[].best_wall_ms | r2 | tostring] | join(" | ")) + " |"),
    ("| allocs per event | " + ([.entries[].allocs_per_event | (. * 1000 | round) / 1000 | tostring] | join(" | ")) + " |"),
    ("| bytes per event | " + ([.entries[].bytes_per_event | r2 | tostring] | join(" | ")) + " |"),
    ("| peak heap bytes | " + ([.entries[].peak_heap_bytes | tostring] | join(" | ")) + " |"),
    "",
    "Per rep: \(.sim_runs_per_rep) sim runs, \(.events_per_rep) events (identical across entries — neither engine parallelism nor tracing changes the simulation). \(.reps) reps; best rep is the headline.",
    "",
    "Toolchain: \(.go_version) \(.goos)/\(.goarch), \(.num_cpu) CPU.",
    ""
' "$f"
