#!/usr/bin/env bash
# bench_summary.sh [BENCH.json] — render a syncron-bench -perf report as a
# GitHub job-summary Markdown table. CI appends the output to
# $GITHUB_STEP_SUMMARY so events/sec trends are visible on every PR without
# downloading artifacts:
#
#   go run ./cmd/syncron-bench -perf -perf-out BENCH.ci.json
#   scripts/bench_summary.sh BENCH.ci.json >> "$GITHUB_STEP_SUMMARY"
#
# Requires jq (preinstalled on ubuntu-latest runners).
set -euo pipefail

f=${1:-BENCH.json}
if [ ! -f "$f" ]; then
    echo "bench_summary: $f not found" >&2
    exit 2
fi
if ! command -v jq >/dev/null; then
    echo "bench_summary: jq not found" >&2
    exit 2
fi

jq -r '
    def r2: (. * 100 | round) / 100;
    "### Simulator macro-benchmark — \(.benchmark)",
    "",
    "| metric | value |",
    "|---|---:|",
    "| events/sec | \(.events_per_sec | round) |",
    "| events per rep | \(.events_per_rep) |",
    "| sim runs per rep | \(.sim_runs_per_rep) |",
    "| best wall ms | \(.best_wall_ms | r2) |",
    "| allocs per event | \(.allocs_per_event | (. * 1000 | round) / 1000) |",
    "| bytes per event | \(.bytes_per_event | r2) |",
    "| peak heap bytes | \(.peak_heap_bytes) |",
    "| reps × workers | \(.reps) × \(.workers) |",
    "| toolchain | \(.go_version) \(.goos)/\(.goarch), \(.num_cpu) CPU |",
    ""
' "$f"
