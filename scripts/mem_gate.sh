#!/usr/bin/env bash
# mem_gate.sh [BENCH.json] — gate the DRAM timing-model axis from a
# syncron-bench -perf report, two ways:
#
#  1. Flat preservation: the mem-flat entry re-runs the serial configuration
#     with the model named explicitly, so it must reach at least
#     (100 - MAX_MEM_FLAT_DEFICIT_PCT)% of the serial entry's events/sec
#     (default: 5%). Both entries come from the SAME report on the SAME
#     host back-to-back, so the tolerance only absorbs run-to-run noise —
#     a real slowdown here means the mem-model dispatch leaked cost into
#     the default flat path.
#
#  2. Bank-path allocation pin: the mem-bank entry's allocs_per_event must
#     stay below MAX_BANK_ALLOCS_PER_EVENT (default 0.05). The bank
#     scheduler's hot path is allocation-free by construction (pinned
#     per-access by TestBankAccessSteadyStateAllocFree); this end-to-end
#     bound catches steady-state allocations the unit test's narrow loop
#     cannot see, while leaving room for per-run setup.
#
# The gate skips (exit 0, with a notice) when the report predates the
# mem-flat/mem-bank entries, so it is safe to run against historical
# reports. Requires jq.
set -euo pipefail

f=${1:-BENCH.json}
max_deficit=${MAX_MEM_FLAT_DEFICIT_PCT:-5}
max_allocs=${MAX_BANK_ALLOCS_PER_EVENT:-0.05}

if [ ! -f "$f" ]; then
    echo "mem_gate: $f not found" >&2
    exit 2
fi
if ! command -v jq >/dev/null; then
    echo "mem_gate: jq not found" >&2
    exit 2
fi

serial=$(jq -r '[.entries[] | select(.name == "serial")][0].events_per_sec // empty' "$f")
flat=$(jq -r '[.entries[] | select(.name == "mem-flat")][0].events_per_sec // empty' "$f")
bank_allocs=$(jq -r '[.entries[] | select(.name == "mem-bank")][0].allocs_per_event // empty' "$f")

if [ -z "$serial" ]; then
    echo "mem_gate: $f has no serial entry; refusing a vacuous pass" >&2
    exit 2
fi
if [ -z "$flat" ] || [ -z "$bank_allocs" ]; then
    echo "mem_gate: no mem-flat/mem-bank entries in $f (report predates the mem-model axis); skipping"
    exit 0
fi

status=0

# Gate 1 — flat preservation. Ratio as integer percent; jq does the float
# math so the shell doesn't.
pct=$(jq -r --argjson s "$serial" --argjson p "$flat" -n '($p / $s * 100) | round')
echo "mem_gate: mem-flat at ${pct}% of serial throughput ($flat vs $serial events/sec)"
if [ "$pct" -lt "$((100 - max_deficit))" ]; then
    echo "MEM-MODEL REGRESSION: mem-flat runs at ${pct}% of serial (< $((100 - max_deficit))% floor) — the mem-model axis is taxing the default flat path" >&2
    status=1
fi

# Gate 2 — bank-path allocation pin.
over=$(jq -r --argjson a "$bank_allocs" --argjson max "$max_allocs" -n 'if $a > $max then 1 else 0 end')
echo "mem_gate: mem-bank at $bank_allocs allocs/event (ceiling $max_allocs)"
if [ "$over" -eq 1 ]; then
    echo "MEM-MODEL REGRESSION: mem-bank allocates $bank_allocs per event (> $max_allocs ceiling) — the bank scheduler hot path is allocating in steady state" >&2
    status=1
fi

if [ "$status" -ne 0 ]; then
    exit 1
fi
echo "mem gate passed."
