package syncron

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// This file renders the time-resolved trace figure: a small dedicated grid
// re-run with a TraceCollector per run (Sweep results can be cached and
// shared, but a trace only exists if the simulation actually executes, so the
// traced grid bypasses the result cache entirely). Each run writes four CSV
// artifacts into FigureOptions.TraceDir —
//
//	<workload>.trace.csv        the raw trace (TraceCollector.WriteCSV)
//	<workload>.queue_depth.csv  QueueDepthSeries
//	<workload>.link_util.csv    LinkUtilizationSeries
//	<workload>.lock_holds.csv   LockHoldTimes
//
// — and contributes one summary row to the "trace" figure. Everything is
// deterministic for fixed options and byte-identical at any Parallelism.

// traceWorkloads is the traced subset: the canonical lock microbenchmark, a
// contended data structure, and a time-series application that pressures the
// Synchronization Table.
var traceWorkloads = []string{"lock", "stack", "ts.air"}

// traceViewBuckets is the slice count of the rebucketed analysis views.
const traceViewBuckets = 50

// traceFigure runs the traced grid, writes the per-workload CSV artifacts
// into o.TraceDir, and returns the summary figure. o must be resolved
// (withDefaults).
func traceFigure(o FigureOptions) (*Figure, error) {
	if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
		return nil, fmt.Errorf("syncron: creating trace dir: %w", err)
	}
	f := &Figure{
		ID:    "trace",
		Title: fmt.Sprintf("Time-resolved trace summaries under %s (full CSVs in the trace dir)", SchemeSynCron),
		Columns: []string{"workload", "records", "peak queue", "busiest link", "link busy",
			"lock vars", "hold p95 (ns)", "wait p95 (ns)"},
		Notes: "per-workload trace, queue-depth, link-utilization, and lock-hold CSVs are written " +
			"next to the figures; traced runs bypass the result cache",
	}
	for _, w := range registeredOnly(traceWorkloads) {
		col := NewTraceCollector()
		res := Execute(RunSpec{
			Workload: w,
			Config: Config{Scheme: SchemeSynCron, Seed: o.BaseSeed,
				Parallelism: o.Parallelism, Tracer: col},
			Params: WorkloadParams{Scale: o.Scale},
		})
		if res.Err != "" {
			return nil, fmt.Errorf("syncron: traced %s run failed: %s", w, res.Err)
		}
		recs := col.Records()
		if err := writeTraceArtifacts(o.TraceDir, w, col); err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, traceSummaryRow(w, recs))
	}
	return f, nil
}

// traceSummaryRow condenses one workload's trace into a figure row.
func traceSummaryRow(workload string, recs []TraceRecord) []string {
	peak := 0
	for _, b := range QueueDepthSeries(recs, traceViewBuckets) {
		if b.MaxDepth > peak {
			peak = b.MaxDepth
		}
	}
	busiestLink, busiest := "-", 0.0
	for _, l := range LinkUtilizationSeries(recs, traceViewBuckets) {
		if l.BusyFrac > busiest {
			busiestLink, busiest = l.Link, l.BusyFrac
		}
	}
	locks := LockHoldTimes(recs)
	var holdP95, waitP95 float64
	for _, l := range locks {
		if l.HoldP95Ps > holdP95 {
			holdP95 = l.HoldP95Ps
		}
		if l.WaitP95Ps > waitP95 {
			waitP95 = l.WaitP95Ps
		}
	}
	return []string{workload, fmt.Sprint(len(recs)), fmt.Sprint(peak),
		busiestLink, fmtPct(busiest), fmt.Sprint(len(locks)),
		fmtF1(holdP95 / 1e3), fmtF1(waitP95 / 1e3)}
}

// writeTraceArtifacts writes one traced run's four CSV files.
func writeTraceArtifacts(dir, workload string, col *TraceCollector) error {
	var buf bytes.Buffer
	if err := col.WriteCSV(&buf); err != nil {
		return err
	}
	if err := writeTraceFile(dir, workload+".trace.csv", buf.Bytes()); err != nil {
		return err
	}
	recs := col.Records()

	buf.Reset()
	buf.WriteString("start_ps,end_ps,max_depth,dispatched\n")
	for _, b := range QueueDepthSeries(recs, traceViewBuckets) {
		fmt.Fprintf(&buf, "%d,%d,%d,%s\n", int64(b.Start), int64(b.End), b.MaxDepth, fmtG(b.Dispatched))
	}
	if err := writeTraceFile(dir, workload+".queue_depth.csv", buf.Bytes()); err != nil {
		return err
	}

	buf.Reset()
	buf.WriteString("link,transfers,bytes,busy_frac,peak_frac\n")
	for _, l := range LinkUtilizationSeries(recs, traceViewBuckets) {
		fmt.Fprintf(&buf, "%s,%d,%s,%s,%s\n", l.Link, l.Transfers,
			fmtG(l.Bytes), fmtG(l.BusyFrac), fmtG(l.PeakFrac))
	}
	if err := writeTraceFile(dir, workload+".link_util.csv", buf.Bytes()); err != nil {
		return err
	}

	buf.Reset()
	buf.WriteString("var,holds,waits,hold_mean_ps,hold_p95_ps,hold_max_ps,wait_mean_ps,wait_p95_ps,wait_max_ps\n")
	for _, r := range LockHoldTimes(recs) {
		fmt.Fprintf(&buf, "%s,%d,%d,%s,%s,%s,%s,%s,%s\n", r.Var, r.Holds, r.Waits,
			fmtG(r.HoldMeanPs), fmtG(r.HoldP95Ps), fmtG(r.HoldMaxPs),
			fmtG(r.WaitMeanPs), fmtG(r.WaitP95Ps), fmtG(r.WaitMaxPs))
	}
	return writeTraceFile(dir, workload+".lock_holds.csv", buf.Bytes())
}

func writeTraceFile(dir, name string, data []byte) error {
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		return fmt.Errorf("syncron: writing trace artifact: %w", err)
	}
	return nil
}

// fmtG renders a float in strconv's shortest round-trip form, matching the
// raw trace's value encoding.
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
