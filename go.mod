module syncron

go 1.24
