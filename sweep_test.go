package syncron_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"syncron"
)

// tinySweep is a 2-scheme x 2-workload grid small enough for unit tests.
func tinySweep(workers int) syncron.Sweep {
	return syncron.Sweep{
		Workloads: []string{"stack", "lock"},
		Schemes:   []syncron.Scheme{syncron.SchemeSynCron, syncron.SchemeCentral},
		Base:      syncron.Config{Units: 2, CoresPerUnit: 2},
		Params:    syncron.WorkloadParams{Scale: 0.05, OpsPerCore: 6, Rounds: 8},
		Workers:   workers,
		BaseSeed:  7,
	}
}

func TestSweepExpandGrid(t *testing.T) {
	sw := tinySweep(1)
	sw.Units = []int{1, 2}
	sw.STEntries = []int{16, 64}
	specs := sw.Expand()
	if want := 2 * 2 * 2 * 2; len(specs) != want {
		t.Fatalf("expanded %d specs, want %d", len(specs), want)
	}
	// Fixed order: workload outermost, then scheme, units, ST entries.
	first := specs[0]
	if first.Workload != "stack" || first.Config.Scheme != syncron.SchemeSynCron ||
		first.Config.Units != 1 || first.Config.STEntries != 16 {
		t.Fatalf("unexpected first spec: %+v", first)
	}
	last := specs[len(specs)-1]
	if last.Workload != "lock" || last.Config.Scheme != syncron.SchemeCentral ||
		last.Config.Units != 2 || last.Config.STEntries != 64 {
		t.Fatalf("unexpected last spec: %+v", last)
	}
	// Base values survive on every spec.
	for _, spec := range specs {
		if spec.Config.CoresPerUnit != 2 {
			t.Fatalf("base CoresPerUnit lost: %+v", spec.Config)
		}
	}
}

func TestSweepEmptyAxesFallBackToBase(t *testing.T) {
	sw := syncron.Sweep{Workloads: []string{"stack"}, Base: syncron.Config{Units: 3}}
	specs := sw.Expand()
	if len(specs) != 1 {
		t.Fatalf("expanded %d specs, want 1", len(specs))
	}
	if specs[0].Config.Scheme != syncron.SchemeSynCron || specs[0].Config.Units != 3 {
		t.Fatalf("default axes wrong: %+v", specs[0].Config)
	}
}

// TestSweepDeterministicAcrossWorkers is the core parallel-safety guarantee:
// the same sweep must produce byte-identical results at any worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	serial := tinySweep(1).Run()
	parallel := tinySweep(8).Run()
	for _, rs := range [][]syncron.RunResult{serial, parallel} {
		for _, r := range rs {
			if r.Err != "" {
				t.Fatalf("%s under %s failed: %s", r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
			}
			if r.Makespan <= 0 || r.Ops == 0 {
				t.Fatalf("empty result: %+v", r)
			}
		}
	}
	var a, b bytes.Buffer
	if err := syncron.WriteJSON(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := syncron.WriteJSON(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serial and parallel sweeps diverged:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			a.String(), b.String())
	}
}

func TestSweepSeedsDifferPerRun(t *testing.T) {
	results := tinySweep(1).Run()
	seen := map[uint64]bool{}
	for _, r := range results {
		if r.Seed == 0 {
			t.Fatalf("run %s/%s got zero seed", r.Spec.Workload, r.Spec.Config.Scheme)
		}
		if seen[r.Seed] {
			t.Fatalf("duplicate per-run seed %d", r.Seed)
		}
		seen[r.Seed] = true
	}
}

func TestExecuteUnknownWorkloadReportsError(t *testing.T) {
	res := syncron.Execute(syncron.RunSpec{Workload: "no-such-workload"})
	if res.Err == "" || !strings.Contains(res.Err, "no-such-workload") {
		t.Fatalf("want unknown-workload error, got %+v", res)
	}
}

// buggyWorkload releases a lock it never acquired, tripping the runner's
// mutual-exclusion checker from a simulated core's program.
type buggyWorkload struct{}

func (buggyWorkload) Name() string               { return "test.buggy" }
func (buggyWorkload) Kind() syncron.WorkloadKind { return "test" }
func (w buggyWorkload) Prepare(sys *syncron.System, _ syncron.WorkloadParams) (*syncron.PreparedRun, error) {
	lock := sys.AllocLocal(0, 64)
	sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
		ctx.Unlock(lock)
	})
	return &syncron.PreparedRun{Ops: 1}, nil
}

// TestExecuteSurvivesProgramPanic checks that a panic raised on a simulated
// core's goroutine (checker violations, workload bugs) is captured into
// RunResult.Err instead of crashing the process, so sweeps survive bad runs.
func TestExecuteSurvivesProgramPanic(t *testing.T) {
	syncron.RegisterWorkload(buggyWorkload{})
	res := syncron.Execute(syncron.RunSpec{
		Workload: "test.buggy",
		Config:   syncron.Config{Units: 1, CoresPerUnit: 2},
	})
	if res.Err == "" || !strings.Contains(res.Err, "lock") {
		t.Fatalf("want checker-violation error in RunResult.Err, got %+v", res)
	}
}

func TestExecuteReportsResolvedConfig(t *testing.T) {
	res := syncron.Execute(syncron.RunSpec{Workload: "lock",
		Params: syncron.WorkloadParams{Rounds: 3}})
	cfg := res.Spec.Config
	if cfg.Scheme != syncron.SchemeSynCron || cfg.Units != 4 ||
		cfg.CoresPerUnit != 15 || cfg.Seed != 1 {
		t.Fatalf("defaults not resolved into result config: %+v", cfg)
	}
}

func TestWorkloadRegistryCoverage(t *testing.T) {
	var names []string
	have := map[string]bool{}
	for _, n := range syncron.WorkloadNames() {
		if strings.HasPrefix(n, "test.") { // registered by other tests
			continue
		}
		names = append(names, n)
		have[n] = true
	}
	// 4 primitives + 9 data structures + 6 apps x 4 inputs + 2 time series.
	if want := 4 + 9 + 24 + 2; len(names) != want {
		t.Fatalf("registry has %d workloads, want %d: %v", len(names), want, names)
	}
	for _, n := range []string{"lock", "barrier", "stack", "bst_fg", "pr.wk", "tc.sx", "ts.air"} {
		if !have[n] {
			t.Fatalf("workload %q not registered (have %v)", n, names)
		}
	}
	w, ok := syncron.LookupWorkload("pr.wk")
	if !ok || w.Kind() != syncron.KindGraph {
		t.Fatalf("pr.wk lookup: ok=%v kind=%v", ok, w.Kind())
	}
	if _, ok := syncron.LookupWorkload("bogus"); ok {
		t.Fatal("bogus workload resolved")
	}
}

func TestParseSchemeAliases(t *testing.T) {
	for name, want := range map[string]syncron.Scheme{
		"syncron": syncron.SchemeSynCron,
		"flat":    syncron.SchemeSynCronFlat,
		"  Hier ": syncron.SchemeHier,
		"ttas":    syncron.SchemeTTAS,
	} {
		got, err := syncron.ParseScheme(name)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := syncron.ParseScheme("nope"); err == nil {
		t.Error("ParseScheme accepted an unknown scheme")
	}
}

func TestFunctionalOptionsConstruct(t *testing.T) {
	sys := syncron.New(
		syncron.WithScheme(syncron.SchemeCentral),
		syncron.WithUnits(2),
		syncron.WithCoresPerUnit(3),
		syncron.WithSeed(11),
	)
	if got := sys.Config(); got.Scheme != syncron.SchemeCentral || got.Units != 2 ||
		got.CoresPerUnit != 3 || got.Seed != 11 {
		t.Fatalf("options not applied: %+v", got)
	}
	if sys.NumCores() != 6 {
		t.Fatalf("NumCores = %d, want 6", sys.NumCores())
	}
}

func TestConfigMixesWithOptions(t *testing.T) {
	// A Config value is an Option; later options override it.
	sys := syncron.New(
		syncron.Config{Scheme: syncron.SchemeHier, Units: 2, CoresPerUnit: 2},
		syncron.WithScheme(syncron.SchemeIdeal),
	)
	cfg := sys.Config()
	if cfg.Scheme != syncron.SchemeIdeal || cfg.Units != 2 || cfg.CoresPerUnit != 2 {
		t.Fatalf("mixed construction wrong: %+v", cfg)
	}
}

func TestWriteCSVShape(t *testing.T) {
	results := syncron.RunSpecs([]syncron.RunSpec{{
		Workload: "lock",
		Config:   syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2, CoresPerUnit: 2},
		Params:   syncron.WorkloadParams{Rounds: 5},
	}}, 1, 3)
	var buf bytes.Buffer
	if err := syncron.WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	if row[0] != "lock" || row[2] != "syncron" {
		t.Fatalf("unexpected CSV row: %v", row)
	}
}

// The topology axis expands like every other grid axis and actually changes
// simulated timing: a 3-topology sweep over one workload yields distinct
// makespans for multi-hop topologies and identical results for alltoall vs
// the implicit default.
func TestSweepTopologyAxis(t *testing.T) {
	sw := syncron.Sweep{
		Workloads:  []string{"lock"},
		Schemes:    []syncron.Scheme{syncron.SchemeSynCron},
		Topologies: []syncron.Topology{syncron.TopoMesh2D, syncron.TopoRing, syncron.TopoAllToAll},
		Base:       syncron.Config{Units: 4, CoresPerUnit: 2, Seed: 7},
		Params:     syncron.WorkloadParams{Rounds: 10},
		Workers:    1,
	}
	specs := sw.Expand()
	if len(specs) != 3 {
		t.Fatalf("expanded %d specs, want 3", len(specs))
	}
	results := sw.Run()
	byTopo := map[syncron.Topology]syncron.RunResult{}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s/%s failed: %s", r.Spec.Workload, r.Spec.Config.Topology, r.Err)
		}
		byTopo[r.Spec.Config.Topology] = r
	}
	// The default (empty) topology is alltoall: same seed, same result.
	def := syncron.Execute(syncron.RunSpec{Workload: "lock",
		Config: syncron.Config{Scheme: syncron.SchemeSynCron, Units: 4, CoresPerUnit: 2, Seed: 7},
		Params: syncron.WorkloadParams{Rounds: 10}})
	if def.Err != "" {
		t.Fatal(def.Err)
	}
	if def.Makespan != byTopo[syncron.TopoAllToAll].Makespan {
		t.Fatalf("default topology != alltoall: %v vs %v",
			def.Makespan, byTopo[syncron.TopoAllToAll].Makespan)
	}
	if def.Spec.Config.Topology != syncron.TopoAllToAll {
		t.Fatalf("resolved config topology = %q, want alltoall", def.Spec.Config.Topology)
	}
	// Ring on 4 units has diameter 2: some messages take extra hops, so the
	// ring run cannot beat alltoall and must report a longer mean route.
	if byTopo[syncron.TopoRing].Makespan < byTopo[syncron.TopoAllToAll].Makespan {
		t.Fatalf("ring faster than alltoall: %v vs %v",
			byTopo[syncron.TopoRing].Makespan, byTopo[syncron.TopoAllToAll].Makespan)
	}
	if byTopo[syncron.TopoAllToAll].AvgRouteLinks != 1 {
		t.Fatalf("alltoall avg route links = %f, want 1", byTopo[syncron.TopoAllToAll].AvgRouteLinks)
	}
	if byTopo[syncron.TopoRing].AvgRouteLinks <= 1 {
		t.Fatalf("ring avg route links = %f, want > 1", byTopo[syncron.TopoRing].AvgRouteLinks)
	}
	// Energy accounting follows the routes: more link traversals, more
	// across-unit bytes and network energy.
	if byTopo[syncron.TopoRing].BytesAcrossUnits <= byTopo[syncron.TopoAllToAll].BytesAcrossUnits {
		t.Fatalf("ring link bytes %d not above alltoall %d",
			byTopo[syncron.TopoRing].BytesAcrossUnits, byTopo[syncron.TopoAllToAll].BytesAcrossUnits)
	}
}

// An unknown topology is rejected as a per-run error, not a crashed sweep.
func TestExecuteRejectsUnknownTopology(t *testing.T) {
	res := syncron.Execute(syncron.RunSpec{Workload: "lock",
		Config: syncron.Config{Topology: "torus", Units: 2, CoresPerUnit: 2},
		Params: syncron.WorkloadParams{Rounds: 2}})
	if res.Err == "" || !strings.Contains(res.Err, "torus") {
		t.Fatalf("unknown topology not reported: %+v", res.Err)
	}
}

// A canceled RunContext must report every not-yet-started run as a canceled
// result — same length, same order, Err set — never silently drop it. The
// cancel fires from OnResult after the first completion, so later runs are
// guaranteed to observe the dead context.
func TestRunContextCancelReportsRemainingRuns(t *testing.T) {
	specs := syncron.ResolveSeeds(tinySweep(1).Expand(), 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completions int
	r := syncron.SpecRunner{
		Workers: 1,
		OnResult: func(syncron.RunResult) {
			completions++
			cancel() // after the first run finishes, doom the rest
		},
	}
	results := r.RunContext(ctx, specs)
	if len(results) != len(specs) {
		t.Fatalf("canceled run returned %d results for %d specs", len(results), len(specs))
	}
	if completions != len(specs) {
		t.Fatalf("OnResult fired %d times, want once per spec (%d)", completions, len(specs))
	}
	var canceled int
	for i, res := range results {
		if res.Spec.Workload != specs[i].Workload || res.Key == "" {
			t.Fatalf("result %d lost its identity: %+v", i, res)
		}
		if strings.Contains(res.Err, "canceled:") {
			canceled++
		} else if res.Err != "" {
			t.Fatalf("unexpected failure at %d: %s", i, res.Err)
		}
	}
	if canceled == 0 || canceled == len(results) {
		t.Fatalf("%d of %d runs canceled; want some completed and some canceled", canceled, len(results))
	}
}

// Cache-served results carry the in-memory Cached marker, but it never
// reaches the serialized payload: warm and cold runs must render to identical
// bytes, or the serve daemon's byte-identity contract with the batch CLI
// breaks.
func TestCachedFlagSetButNeverSerialized(t *testing.T) {
	cache, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := syncron.ResolveSeeds(tinySweep(1).Expand(), 7)
	r := syncron.SpecRunner{Workers: 2, Cache: cache}
	cold := r.Run(specs)
	warm := r.Run(specs)
	for i := range cold {
		if cold[i].Cached {
			t.Fatalf("cold run %d marked cached", i)
		}
		if !warm[i].Cached {
			t.Fatalf("warm run %d not marked cached", i)
		}
	}
	var coldJSON, warmJSON bytes.Buffer
	if err := syncron.WriteJSON(&coldJSON, cold); err != nil {
		t.Fatal(err)
	}
	if err := syncron.WriteJSON(&warmJSON, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON.Bytes(), warmJSON.Bytes()) {
		t.Fatal("warm results serialize differently from cold results")
	}
}

// OnResult observes cache hits too, and its invocations are serialized even
// with a parallel worker pool (the callback mutates shared state freely).
func TestOnResultObservesCacheHits(t *testing.T) {
	cache, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := syncron.ResolveSeeds(tinySweep(1).Expand(), 7)
	syncron.SpecRunner{Workers: 4, Cache: cache}.Run(specs)
	var hits, total int
	r := syncron.SpecRunner{
		Workers: 4,
		Cache:   cache,
		OnResult: func(res syncron.RunResult) {
			total++ // shared state: safe only because invocations serialize
			if res.Cached {
				hits++
			}
		},
	}
	r.Run(specs)
	if total != len(specs) || hits != len(specs) {
		t.Fatalf("warm OnResult saw %d results, %d cached; want %d of each", total, hits, len(specs))
	}
}
