// Producer/consumer example: a bounded buffer built from SynCron's
// semaphores and condition variables — the primitives beyond locks and
// barriers that prior NDP proposals lacked (paper Table 4).
//
//	go run ./examples/producerconsumer
package main

import (
	"fmt"

	"syncron"
)

func main() {
	sys := syncron.New(syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2, CoresPerUnit: 8})

	const (
		slots = 4  // buffer capacity
		items = 64 // items per producer
	)
	empty := sys.AllocLocal(0, 64) // semaphore: free slots
	full := sys.AllocLocal(0, 64)  // semaphore: filled slots
	mutex := sys.AllocLocal(1, 64) // guards the buffer indices
	buf := sys.AllocShared(0, 64*uint64(slots))

	produced, consumed := 0, 0
	half := sys.NumCores() / 2

	// Producers on unit 0's cores.
	sys.SpawnEach(half, func(i int) syncron.Program {
		return func(ctx *syncron.Context) {
			for k := 0; k < items; k++ {
				ctx.Compute(300) // produce an item
				ctx.SemWait(empty, slots)
				ctx.Lock(mutex)
				ctx.Write(buf + uint64(produced%slots)*64)
				produced++
				ctx.Unlock(mutex)
				ctx.SemPost(full)
			}
		}
	})
	// Consumers on unit 1's cores.
	sys.SpawnEach(half, func(i int) syncron.Program {
		return func(ctx *syncron.Context) {
			for k := 0; k < items; k++ {
				ctx.SemWait(full, 0)
				ctx.Lock(mutex)
				ctx.Read(buf + uint64(consumed%slots)*64)
				consumed++
				ctx.Unlock(mutex)
				ctx.SemPost(empty)
				ctx.Compute(500) // consume it
			}
		}
	})

	rep := sys.Run()
	fmt.Printf("scheme %s: produced %d, consumed %d items through a %d-slot buffer\n",
		rep.Scheme, produced, consumed, slots)
	fmt.Printf("makespan %v, ST occupancy max %.0f%%, overflowed %.1f%%\n",
		rep.Makespan, rep.STOccupancyMax*100, rep.OverflowedFraction*100)
	if produced != consumed || produced != half*items {
		panic("bounded buffer lost items")
	}
}
