// Graph analytics example: run the paper's six CRONO-style applications on
// a synthetic power-law graph under every synchronization scheme, printing
// speedups and data-movement — a miniature Figure 12 + Figure 15.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"

	"syncron"
	"syncron/internal/program"
	"syncron/internal/workloads/graphs"
)

func main() {
	g := graphs.Load("wk", 0.1) // synthetic stand-in for wikipedia-20051105
	fmt.Printf("graph wk: %d vertices, %d edges\n\n", g.N, g.M)
	fmt.Printf("%-6s  %-10s %-10s %-10s %-10s\n", "app", "central", "hier", "syncron", "ideal")

	for _, app := range graphs.Apps() {
		var base syncron.Time
		fmt.Printf("%-6s", app)
		for _, scheme := range []syncron.Scheme{
			syncron.SchemeCentral, syncron.SchemeHier,
			syncron.SchemeSynCron, syncron.SchemeIdeal,
		} {
			sys := syncron.New(syncron.Config{Scheme: scheme})
			part := graphs.HashPartition(g, 4)
			ly := graphs.NewLayout(sys.Machine(), g, part)
			a := graphs.NewApp(sys.Machine(), ly, graphs.RunConfig{App: app, Graph: g, Part: part})
			a.Build(sys.Machine(), sys.Runner())
			rep := sys.Run()
			if err := a.Check(); err != nil {
				panic(fmt.Sprintf("%s under %s produced wrong output: %v", app, scheme, err))
			}
			if scheme == syncron.SchemeCentral {
				base = rep.Makespan
			}
			fmt.Printf("  %6.2fx   ", float64(base)/float64(rep.Makespan))
		}
		fmt.Println()
	}

	// Data movement: SynCron vs Central on pagerank (Figure 15's story).
	fmt.Println("\npagerank data movement (bytes across NDP units):")
	for _, scheme := range []syncron.Scheme{syncron.SchemeCentral, syncron.SchemeSynCron} {
		sys := syncron.New(syncron.Config{Scheme: scheme})
		part := graphs.HashPartition(g, 4)
		ly := graphs.NewLayout(sys.Machine(), g, part)
		a := graphs.NewApp(sys.Machine(), ly, graphs.RunConfig{App: "pr", Graph: g, Part: part})
		a.Build(sys.Machine(), sys.Runner())
		rep := sys.Run()
		fmt.Printf("  %-8s inside %8d KB, across %8d KB\n",
			rep.Scheme, rep.BytesInsideUnits/1024, rep.BytesAcrossUnits/1024)
	}
	var _ program.Program // keep the import explicit for readers
}
