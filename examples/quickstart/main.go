// Quickstart: compare a contended lock on SynCron vs the Central baseline
// and the Ideal upper bound — the paper's core result in ~50 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"syncron"
)

func run(scheme syncron.Scheme) syncron.Report {
	sys := syncron.New(syncron.WithScheme(scheme))

	// One lock, homed in NDP unit 0; its Master SE is unit 0's SE.
	lock := sys.AllocLocal(0, 64)
	// A shared counter in unit 0's memory (uncacheable read-write data).
	counter := sys.AllocShared(0, 64)

	value := 0
	sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
		for i := 0; i < 50; i++ {
			ctx.Lock(lock)
			ctx.Read(counter) // critical section: read-modify-write
			value++
			ctx.Write(counter)
			ctx.Unlock(lock)
			ctx.Compute(200) // private work between critical sections
		}
	})
	rep := sys.Run()
	if value != sys.NumCores()*50 {
		panic("lost updates — mutual exclusion would have been violated")
	}
	return rep
}

func main() {
	fmt.Println("60 NDP cores incrementing one shared counter, 50 times each:")
	fmt.Println()
	base := run(syncron.SchemeCentral)
	for _, scheme := range []syncron.Scheme{
		syncron.SchemeCentral, syncron.SchemeHier,
		syncron.SchemeSynCron, syncron.SchemeIdeal,
	} {
		rep := run(scheme)
		fmt.Printf("  %-8s  makespan %-12v  speedup vs central %.2fx  energy %.1f uJ\n",
			rep.Scheme, rep.Makespan,
			float64(base.Makespan)/float64(rep.Makespan),
			rep.TotalEnergyPJ()/1e6)
	}
	fmt.Println()
	fmt.Println("SynCron wins by keeping the lock in the Synchronization Table of the")
	fmt.Println("unit that owns it and batching remote requests SE-to-SE.")
}
