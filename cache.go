package syncron

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"syncron/internal/runcache"
)

// SpecKeyVersion is the version of the canonical RunSpec encoding behind
// SpecKey. Every key carries it as a "v<N>-" prefix, so entries written under
// an older encoding are never returned — they simply miss.
//
// Bump it whenever the meaning of a cached result changes for an unchanged
// RunSpec value: a field added to (or removed from) RunSpec, Config, or
// WorkloadParams, a change to the canonical field encoding below, or an
// intentional simulator-behavior change that should orphan all caches at
// once. Routine simulator changes are instead invalidated by using a fresh
// cache directory per code version (CI keys its directories on the source
// hash); see ARCHITECTURE.md "Caching & sharding".
//
// History: v2 added Config.MemModel (the DRAM timing-model axis).
const SpecKeyVersion = 2

// specKeyRecord is the canonical, versioned encoding of one RunSpec. Every
// semantic field of RunSpec/Config/WorkloadParams appears explicitly, always
// serialized (no omitempty), in fixed declaration order, so two specs encode
// identically iff every field matches. TestSpecKeyCoversEveryField pins the
// field counts of the source structs against this record.
type specKeyRecord struct {
	V        int    `json:"v"`
	Workload string `json:"workload"`

	Scheme            string `json:"scheme"`
	Units             int    `json:"units"`
	CoresPerUnit      int    `json:"cores_per_unit"`
	Memory            string `json:"memory"`
	MemModel          string `json:"mem_model"`
	Topology          string `json:"topology"`
	LinkLatencyPS     int64  `json:"link_latency_ps"`
	STEntries         int    `json:"st_entries"`
	Overflow          int    `json:"overflow"`
	FairnessThreshold int    `json:"fairness_threshold"`
	SEServiceCycles   int64  `json:"se_service_cycles"`
	Seed              uint64 `json:"seed"`

	Scale      float64 `json:"scale"`
	OpsPerCore int     `json:"ops_per_core"`
	Size       int     `json:"size"`
	Interval   int64   `json:"interval"`
	Rounds     int     `json:"rounds"`
	Metis      bool    `json:"metis"`
}

// canonicalSpec serializes the spec's canonical encoding.
func canonicalSpec(spec RunSpec) []byte {
	cfg, p := spec.Config, spec.Params
	rec := specKeyRecord{
		V:        SpecKeyVersion,
		Workload: spec.Workload,

		Scheme:            string(cfg.Scheme),
		Units:             cfg.Units,
		CoresPerUnit:      cfg.CoresPerUnit,
		Memory:            cfg.Memory.String(),
		MemModel:          string(cfg.MemModel),
		Topology:          string(cfg.Topology),
		LinkLatencyPS:     int64(cfg.LinkLatency),
		STEntries:         cfg.STEntries,
		Overflow:          int(cfg.Overflow),
		FairnessThreshold: cfg.FairnessThreshold,
		SEServiceCycles:   cfg.SEServiceCycles,
		Seed:              cfg.Seed,

		Scale:      p.Scale,
		OpsPerCore: p.OpsPerCore,
		Size:       p.Size,
		Interval:   p.Interval,
		Rounds:     p.Rounds,
		Metis:      p.Metis,
	}
	enc, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("syncron: marshaling spec key record: %v", err)) // no marshalable-field can fail
	}
	return enc
}

// specKeySum hashes the canonical encoding.
func specKeySum(spec RunSpec) [sha256.Size]byte {
	return sha256.Sum256(canonicalSpec(spec))
}

// SpecKey returns the stable content hash of a spec — "v<version>-<sha256>"
// of its canonical encoding. Keys identify the spec as REQUESTED: hash the
// spec after seed resolution (ResolveSeeds, or Sweep.Run's internal
// resolution), because a zero Config.Seed and its resolved value are
// different requests with different results.
func SpecKey(spec RunSpec) string {
	sum := specKeySum(spec)
	return fmt.Sprintf("v%d-%x", SpecKeyVersion, sum)
}

// ResultCache caches serialized RunResults under their SpecKey. Implementations
// must be safe for concurrent use. The sweep engine treats the cache as
// best-effort: a failed Put is ignored (it only costs a future miss), and any
// Get payload that does not decode as a RunResult is treated as a miss.
type ResultCache interface {
	// Get returns the payload stored under key, or (nil, false) on a miss.
	Get(key string) ([]byte, bool)
	// Put stores payload under key, replacing any existing entry.
	Put(key string, payload []byte) error
}

// CacheDir is the filesystem ResultCache: one JSON envelope per key in a flat
// directory, written atomically (temp file + rename); corrupt or
// stale-version entries read as misses. See internal/runcache.
type CacheDir = runcache.Dir

// CacheStats is a snapshot of a CacheDir's traffic counters.
type CacheStats = runcache.Stats

// DirCache opens (creating if needed) a filesystem result cache rooted at
// dir. The returned cache can be shared by any number of concurrent sweeps.
func DirCache(dir string) (*CacheDir, error) { return runcache.Open(dir) }

// encodeCachedResult serializes a result for storage. GridIndex is positional
// bookkeeping of one particular sweep, not part of the result, so it is
// stripped; the same cached run can sit at different positions in different
// grids.
func encodeCachedResult(res RunResult) ([]byte, error) {
	res.GridIndex = 0
	return json.Marshal(res)
}

// DecodeCachedResult deserializes a ResultCache payload back into the
// RunResult the sweep engine stored (see CacheResult for the inverse). It is
// the hook for serving layers that answer cache hits themselves instead of
// going through SpecRunner — the serve daemon uses it to resolve submissions
// at admission time. Failures mean the payload should be treated as a miss.
func DecodeCachedResult(payload []byte) (RunResult, error) {
	return decodeCachedResult(payload)
}

// decodeCachedResult deserializes a stored payload. Any decode failure is
// reported as a miss by the caller.
func decodeCachedResult(payload []byte) (RunResult, error) {
	var res RunResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return RunResult{}, err
	}
	return res, nil
}

// CacheResult stores one sweep result into cache under the result's own
// recorded Key — the route by which `merge -cache DIR` replays shard JSON
// outputs into a cache that `figures -from DIR` can render from without
// simulating. The result must carry a Key (i.e. come from SpecRunner.Run,
// not a bare Execute) and must not be a failure: failed runs are never
// cached.
func CacheResult(cache ResultCache, res RunResult) error {
	if res.Err != "" {
		return fmt.Errorf("syncron: refusing to cache failed run %s under %s: %s",
			res.Spec.Workload, res.Spec.Config.Scheme, res.Err)
	}
	if res.Key == "" {
		return fmt.Errorf("syncron: result for %s under %s has no spec key (produced by a bare Execute?)",
			res.Spec.Workload, res.Spec.Config.Scheme)
	}
	payload, err := encodeCachedResult(res)
	if err != nil {
		return err
	}
	return cache.Put(res.Key, payload)
}

// shardOf maps a spec to its owning shard index by hash stride: the first 8
// bytes of the spec's content hash, reduced mod count. The assignment depends
// only on the spec (never on grid position or seed derivation order), so any
// process that expands the same grid agrees on the partition.
func shardOf(spec RunSpec, count int) int {
	sum := specKeySum(spec)
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(count))
}
