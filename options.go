package syncron

// Option configures a System under construction. Options are applied in
// order, so later options override earlier ones.
//
// A Config value is itself an Option (its non-zero fields are applied), which
// keeps the original Config-based construction working unchanged:
//
//	syncron.New(syncron.Config{Scheme: syncron.SchemeCentral, Units: 2})
//
// is equivalent to
//
//	syncron.New(syncron.WithScheme(syncron.SchemeCentral), syncron.WithUnits(2))
type Option interface {
	apply(*Config)
}

// optionFunc adapts a plain function to the Option interface.
type optionFunc func(*Config)

func (f optionFunc) apply(c *Config) { f(c) }

// apply merges the non-zero fields of cfg, making Config usable as an Option.
func (cfg Config) apply(c *Config) {
	if cfg.Scheme != "" {
		c.Scheme = cfg.Scheme
	}
	if cfg.Units != 0 {
		c.Units = cfg.Units
	}
	if cfg.CoresPerUnit != 0 {
		c.CoresPerUnit = cfg.CoresPerUnit
	}
	if cfg.Memory != HBM {
		c.Memory = cfg.Memory
	}
	if cfg.Topology != "" {
		c.Topology = cfg.Topology
	}
	if cfg.MemModel != "" {
		c.MemModel = cfg.MemModel
	}
	if cfg.LinkLatency != 0 {
		c.LinkLatency = cfg.LinkLatency
	}
	if cfg.STEntries != 0 {
		c.STEntries = cfg.STEntries
	}
	if cfg.Overflow != OverflowIntegrated {
		c.Overflow = cfg.Overflow
	}
	if cfg.FairnessThreshold != 0 {
		c.FairnessThreshold = cfg.FairnessThreshold
	}
	if cfg.SEServiceCycles != 0 {
		c.SEServiceCycles = cfg.SEServiceCycles
	}
	if cfg.Seed != 0 {
		c.Seed = cfg.Seed
	}
	if cfg.Parallelism != 0 {
		c.Parallelism = cfg.Parallelism
	}
	if cfg.Tracer != nil {
		c.Tracer = cfg.Tracer
	}
}

// WithScheme selects the synchronization mechanism.
func WithScheme(s Scheme) Option { return optionFunc(func(c *Config) { c.Scheme = s }) }

// WithUnits sets the number of NDP units.
func WithUnits(n int) Option { return optionFunc(func(c *Config) { c.Units = n }) }

// WithCoresPerUnit sets the number of client NDP cores per unit.
func WithCoresPerUnit(n int) Option { return optionFunc(func(c *Config) { c.CoresPerUnit = n }) }

// WithMemory selects the memory technology (HBM, HMC, DDR4).
func WithMemory(t MemoryTech) Option { return optionFunc(func(c *Config) { c.Memory = t }) }

// WithTopology selects the inter-unit interconnect topology.
func WithTopology(t Topology) Option { return optionFunc(func(c *Config) { c.Topology = t }) }

// WithMemModel selects the DRAM timing model (MemModelFlat, MemModelBank).
func WithMemModel(m MemModel) Option { return optionFunc(func(c *Config) { c.MemModel = m }) }

// WithLinkLatency overrides the inter-unit transfer latency per cache line.
func WithLinkLatency(t Time) Option { return optionFunc(func(c *Config) { c.LinkLatency = t }) }

// WithSTEntries overrides SynCron's Synchronization Table size.
func WithSTEntries(n int) Option { return optionFunc(func(c *Config) { c.STEntries = n }) }

// WithOverflow selects the ST-overflow handling policy (§6.7.3).
func WithOverflow(p OverflowPolicy) Option { return optionFunc(func(c *Config) { c.Overflow = p }) }

// WithFairness enables the §4.4.2 lock-fairness extension.
func WithFairness(threshold int) Option {
	return optionFunc(func(c *Config) { c.FairnessThreshold = threshold })
}

// WithSEServiceCycles overrides the SE occupancy per message in SE cycles
// (paper: 12); used by the ablation-seservice sensitivity study.
func WithSEServiceCycles(cycles int64) Option {
	return optionFunc(func(c *Config) { c.SEServiceCycles = cycles })
}

// WithSeed makes all simulated randomness reproducible.
func WithSeed(seed uint64) Option { return optionFunc(func(c *Config) { c.Seed = seed }) }

// WithParallelism selects the event engine's dispatcher: n > 0 forces the
// parallel dispatcher with n workers for unit-tagged same-timestamp events,
// ParallelismSerial (-1) forces the serial dispatcher, and ParallelismAuto
// (0, the default) resolves at New time to min(GOMAXPROCS, units + cores)
// workers on multi-core hosts and serial on single-core hosts. Results are
// byte-identical for every value — the knob trades dispatch overhead for
// concurrency, never determinism — so it does not participate in result
// caching (SpecKey) or serialized output.
func WithParallelism(n int) Option { return optionFunc(func(c *Config) { c.Parallelism = n }) }

// WithTracer attaches a Tracer to the run (typically a *TraceCollector).
// Tracing is strictly observational: it never changes simulated results, and
// a nil tracer (the default) costs nothing — every hook point is
// branch-guarded on the nil check. Like WithParallelism, the tracer does not
// participate in result caching (SpecKey) or serialized output; pair it with
// cache-less execution, since a cache hit skips the simulation entirely.
func WithTracer(t Tracer) Option { return optionFunc(func(c *Config) { c.Tracer = t }) }
