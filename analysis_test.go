package syncron_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"syncron"
)

// synth builds a synthetic successful RunResult for analysis-layer tests; no
// simulation runs.
func synth(workload string, kind syncron.WorkloadKind, scheme syncron.Scheme,
	makespan syncron.Time, mutate ...func(*syncron.RunResult)) syncron.RunResult {
	r := syncron.RunResult{
		Spec: syncron.RunSpec{
			Workload: workload,
			Config:   syncron.Config{Scheme: scheme, Units: 4, CoresPerUnit: 15},
		},
		Kind:     kind,
		Makespan: makespan,
	}
	if makespan > 0 {
		r.Ops = 1000
		r.OpsPerMs = float64(r.Ops) / (makespan.Seconds() * 1e3)
	}
	r.CacheEnergyPJ, r.NetworkEnergyPJ, r.MemoryEnergyPJ = 10, 60, 30
	r.BytesInsideUnits, r.BytesAcrossUnits = 600, 400
	for _, m := range mutate {
		m(&r)
	}
	return r
}

func TestGeomean(t *testing.T) {
	if g := syncron.Geomean(nil); g != 0 {
		t.Fatalf("geomean of nothing = %f, want 0", g)
	}
	if g := syncron.Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %f, want 4", g)
	}
	// Non-positive and non-finite values are ignored, not propagated.
	if g := syncron.Geomean([]float64{2, 8, 0, -3, math.Inf(1), math.NaN()}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean with junk = %f, want 4", g)
	}
}

func TestResultSetGrouping(t *testing.T) {
	rs := syncron.ResultSet{
		synth("a", syncron.KindPrimitive, syncron.SchemeCentral, 100),
		synth("a", syncron.KindPrimitive, syncron.SchemeSynCron, 50),
		synth("b", syncron.KindGraph, syncron.SchemeCentral, 0,
			func(r *syncron.RunResult) { r.Err = "boom" }),
	}
	if got := rs.Ok(); len(got) != 2 {
		t.Fatalf("Ok() = %d results, want 2", len(got))
	}
	if got := rs.Failed(); len(got) != 1 || got[0].Spec.Workload != "b" {
		t.Fatalf("Failed() = %+v, want the one failed run", got)
	}
	if got := rs.Workloads(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Workloads() = %v", got)
	}
	if got := rs.Schemes(); len(got) != 2 || got[0] != syncron.SchemeCentral {
		t.Fatalf("Schemes() = %v", got)
	}
	if got := rs.ByWorkload(); len(got["a"]) != 2 || len(got["b"]) != 1 {
		t.Fatalf("ByWorkload() = %v", got)
	}
}

func TestJoinBaseline(t *testing.T) {
	rs := syncron.ResultSet{
		synth("a", syncron.KindPrimitive, syncron.SchemeCentral, 100),
		synth("a", syncron.KindPrimitive, syncron.SchemeSynCron, 50),
	}
	pairs, err := rs.JoinBaseline(syncron.SchemeCentral)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("joined %d pairs, want 2 (baseline joins itself too)", len(pairs))
	}
	for _, p := range pairs {
		if p.Baseline.Spec.Config.Scheme != syncron.SchemeCentral {
			t.Fatalf("pair joined against %s", p.Baseline.Spec.Config.Scheme)
		}
	}
	// A run at a grid point the baseline never visited is an error, not a
	// silent drop.
	rs = append(rs, synth("a", syncron.KindPrimitive, syncron.SchemeHier, 80,
		func(r *syncron.RunResult) { r.Spec.Config.Units = 2 }))
	if _, err := rs.JoinBaseline(syncron.SchemeCentral); err == nil {
		t.Fatal("missing baseline grid point must fail the join")
	}
	if _, err := rs.JoinBaseline(syncron.SchemeIdeal); err == nil {
		t.Fatal("absent baseline scheme must fail the join")
	}
}

func TestSpeedupVsBaseline(t *testing.T) {
	results := []syncron.RunResult{
		// Different derived seeds must not break the join.
		synth("lock", syncron.KindPrimitive, syncron.SchemeCentral, 100,
			func(r *syncron.RunResult) { r.Spec.Config.Seed = 11 }),
		synth("lock", syncron.KindPrimitive, syncron.SchemeSynCron, 25,
			func(r *syncron.RunResult) { r.Spec.Config.Seed = 22 }),
		synth("stack", syncron.KindDataStructure, syncron.SchemeCentral, 100),
		synth("stack", syncron.KindDataStructure, syncron.SchemeSynCron, 100),
	}
	table, err := syncron.SpeedupVsBaseline(results, syncron.SchemeCentral)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(table.Rows))
	}
	// Rows sort by kind order: primitives before data structures.
	if table.Rows[0].Workload != "lock" || table.Rows[1].Workload != "stack" {
		t.Fatalf("row order: %s, %s", table.Rows[0].Workload, table.Rows[1].Workload)
	}
	lock := table.Rows[0]
	if lock.Speedup[syncron.SchemeCentral] != 1 || lock.Speedup[syncron.SchemeSynCron] != 4 {
		t.Fatalf("lock speedups = %v", lock.Speedup)
	}
	// Geomeans: primitive family {4}, ds family {1}, overall sqrt(4*1)=2.
	if g := table.KindGeomean[syncron.KindPrimitive][syncron.SchemeSynCron]; g != 4 {
		t.Fatalf("primitive geomean = %f, want 4", g)
	}
	if g := table.OverallGeomean[syncron.SchemeSynCron]; math.Abs(g-2) > 1e-12 {
		t.Fatalf("overall geomean = %f, want 2", g)
	}
	if kinds := table.Kinds(); len(kinds) != 2 || kinds[0] != syncron.KindPrimitive {
		t.Fatalf("table kinds = %v", kinds)
	}
}

func TestSpeedupLabelsDisambiguateGridPoints(t *testing.T) {
	results := []syncron.RunResult{
		synth("lock", syncron.KindPrimitive, syncron.SchemeCentral, 100),
		synth("lock", syncron.KindPrimitive, syncron.SchemeCentral, 80,
			func(r *syncron.RunResult) { r.Spec.Config.Units = 2 }),
	}
	table, err := syncron.SpeedupVsBaseline(results, syncron.SchemeCentral)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("%d rows, want one per grid point", len(table.Rows))
	}
	for _, row := range table.Rows {
		if !strings.Contains(row.Label, "u=") {
			t.Fatalf("label %q does not name the varying units axis", row.Label)
		}
	}
}

func TestScalability(t *testing.T) {
	var results []syncron.RunResult
	for units, makespan := range map[int]syncron.Time{1: 100, 2: 60, 4: 40} {
		units, makespan := units, makespan
		results = append(results, synth("pr.wk", syncron.KindGraph, syncron.SchemeSynCron, makespan,
			func(r *syncron.RunResult) { r.Spec.Config.Units = units }))
	}
	// A second workload with a single size contributes no curve.
	results = append(results, synth("lone", syncron.KindGraph, syncron.SchemeSynCron, 10))
	curves, err := syncron.Scalability(results, syncron.SchemeSynCron)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 1 || curves[0].Workload != "pr.wk" {
		t.Fatalf("curves = %+v", curves)
	}
	pts := curves[0].Points
	if len(pts) != 3 || pts[0].Units != 1 || pts[2].Units != 4 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Speedup != 1 || math.Abs(pts[2].Speedup-2.5) > 1e-12 {
		t.Fatalf("speedups = %f, %f; want 1, 2.5", pts[0].Speedup, pts[2].Speedup)
	}
	if _, err := syncron.Scalability(results, syncron.SchemeTTAS); err == nil {
		t.Fatal("no runs of the requested scheme must be an error")
	}
}

func TestEnergyAndTrafficBreakdown(t *testing.T) {
	results := []syncron.RunResult{
		synth("pr.wk", syncron.KindGraph, syncron.SchemeCentral, 100),
		synth("pr.wk", syncron.KindGraph, syncron.SchemeSynCron, 50, func(r *syncron.RunResult) {
			r.CacheEnergyPJ, r.NetworkEnergyPJ, r.MemoryEnergyPJ = 5, 15, 30
			r.BytesInsideUnits, r.BytesAcrossUnits = 400, 100
		}),
	}
	energy, err := syncron.EnergyBreakdown(results, syncron.SchemeCentral)
	if err != nil {
		t.Fatal(err)
	}
	if len(energy) != 2 {
		t.Fatalf("%d energy rows, want 2", len(energy))
	}
	// Baseline total is 10+60+30=100, so the baseline row's Total is 1 and
	// the syncron row's fractions are /100.
	if energy[0].Scheme != syncron.SchemeCentral || energy[0].Total != 1 {
		t.Fatalf("baseline energy row = %+v", energy[0])
	}
	sc := energy[1]
	if sc.Cache != 0.05 || sc.Network != 0.15 || sc.Memory != 0.30 || sc.Total != 0.50 {
		t.Fatalf("syncron energy row = %+v", sc)
	}

	traffic, err := syncron.TrafficBreakdown(results, syncron.SchemeCentral)
	if err != nil {
		t.Fatal(err)
	}
	if traffic[0].Total != 1 || traffic[1].Inside != 0.4 || traffic[1].Across != 0.1 {
		t.Fatalf("traffic rows = %+v", traffic)
	}
}

func TestSTAblation(t *testing.T) {
	mk := func(scheme syncron.Scheme, st int, makespan syncron.Time, overflowed float64) syncron.RunResult {
		return synth("ts.air", syncron.KindTimeSeries, scheme, makespan,
			func(r *syncron.RunResult) {
				r.Spec.Config.STEntries = st
				r.OverflowedFraction = overflowed
			})
	}
	rows, err := syncron.STAblation([]syncron.RunResult{
		mk(syncron.SchemeSynCron, 16, 150, 0.3),
		mk(syncron.SchemeSynCron, 64, 100, 0),
		// The flat variant forms its own curve with its own largest-ST base.
		mk(syncron.SchemeSynCronFlat, 16, 90, 0),
		mk(syncron.SchemeSynCronFlat, 64, 60, 0),
		synth("ts.air", syncron.KindTimeSeries, syncron.SchemeCentral, 500), // ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (non-SynCron schemes ignored)", len(rows))
	}
	// Rows sort by scheme then ST descending; each curve normalizes its
	// slowdown to its own largest-ST run, never the other scheme's.
	hier := rows[:2]
	if hier[0].Scheme != syncron.SchemeSynCron || hier[0].STEntries != 64 || hier[0].SlowdownVsLargest != 1 {
		t.Fatalf("largest-ST row = %+v", hier[0])
	}
	if hier[1].STEntries != 16 || hier[1].SlowdownVsLargest != 1.5 || hier[1].Overflowed != 0.3 {
		t.Fatalf("16-entry row = %+v", hier[1])
	}
	flat := rows[2:]
	if flat[0].Scheme != syncron.SchemeSynCronFlat || flat[0].SlowdownVsLargest != 1 {
		t.Fatalf("flat largest-ST row = %+v", flat[0])
	}
	if flat[1].SlowdownVsLargest != 1.5 {
		t.Fatalf("flat 16-entry slowdown = %f, want 1.5 (vs its own base)", flat[1].SlowdownVsLargest)
	}
}

func TestFigureEmitters(t *testing.T) {
	f := &syncron.Figure{
		ID:      "demo",
		Title:   "demo figure",
		Columns: []string{"workload", "x"},
		Rows:    [][]string{{"lock", "1.00"}, {"stack", "2.00"}},
		Notes:   "a note",
	}
	var md bytes.Buffer
	if err := f.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## demo — demo figure", "| workload | x |", "|---|---:|",
		"| lock | 1.00 |", "_a note_"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
	var csv bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := csv.String(); got != "workload,x\nlock,1.00\nstack,2.00\n" {
		t.Errorf("csv = %q", got)
	}
}

// TestFiguresEndToEnd runs the real pipeline twice on a tiny grid and checks
// the rendered output is byte-identical — the determinism the figures
// subcommand promises — and structurally complete.
func TestFiguresEndToEnd(t *testing.T) {
	opt := syncron.FigureOptions{
		Workloads: []string{"lock", "stack"},
		Schemes: []syncron.Scheme{syncron.SchemeCentral, syncron.SchemeHier,
			syncron.SchemeSynCron},
		Scale: 0.02,
	}
	render := func() string {
		figs, err := syncron.Figures(opt)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, f := range figs {
			if err := f.WriteMarkdown(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	first := render()
	wantIDs := []string{"## throughput", "## speedup", "## scalability", "## energy",
		"## traffic", "## st-ablation"}
	for _, id := range wantIDs {
		if !strings.Contains(first, id) {
			t.Errorf("figures missing %q", id)
		}
	}
	if !strings.Contains(first, "geomean (primitive)") ||
		!strings.Contains(first, "geomean (all)") {
		t.Error("speedup figure missing geomean rows")
	}
	if strings.Contains(first, "NaN") || strings.Contains(first, "Inf") {
		t.Error("figures contain non-finite cells")
	}
	if second := render(); second != first {
		t.Error("two identical Figures invocations rendered different output")
	}
}

func TestTopologySensitivity(t *testing.T) {
	topo := func(k syncron.Topology, makespan syncron.Time, netPJ float64, across uint64,
		links float64) func(*syncron.RunResult) {
		return func(r *syncron.RunResult) {
			r.Spec.Config.Topology = k
			r.Makespan = makespan
			r.NetworkEnergyPJ = netPJ
			r.BytesAcrossUnits = across
			r.AvgRouteLinks = links
		}
	}
	results := []syncron.RunResult{
		synth("lock", syncron.KindPrimitive, syncron.SchemeSynCron, 0,
			topo(syncron.TopoAllToAll, 100, 60, 400, 1)),
		synth("lock", syncron.KindPrimitive, syncron.SchemeSynCron, 0,
			topo(syncron.TopoRing, 150, 90, 800, 2)),
		synth("lock", syncron.KindPrimitive, syncron.SchemeSynCron, 0,
			topo(syncron.TopoStar, 130, 120, 800, 2)),
		synth("lock", syncron.KindPrimitive, syncron.SchemeCentral, 0,
			topo(syncron.TopoAllToAll, 200, 60, 400, 1)),
		synth("lock", syncron.KindPrimitive, syncron.SchemeCentral, 0,
			topo(syncron.TopoRing, 240, 90, 800, 2)),
		synth("lock", syncron.KindPrimitive, syncron.SchemeCentral, 0,
			topo(syncron.TopoStar, 250, 120, 800, 2)),
	}
	rows, err := syncron.TopologySensitivity(results, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	// Sorted by scheme (central < syncron), then Topologies() order.
	if rows[0].Scheme != syncron.SchemeCentral || rows[0].Topology != syncron.TopoAllToAll {
		t.Fatalf("first row = %+v", rows[0])
	}
	if rows[0].SlowdownVsBase != 1 || rows[0].NetworkEnergyX != 1 || rows[0].LinkBytesX != 1 {
		t.Fatalf("baseline topology not normalized to 1: %+v", rows[0])
	}
	var ring syncron.TopologyRow
	for _, r := range rows {
		if r.Scheme == syncron.SchemeSynCron && r.Topology == syncron.TopoRing {
			ring = r
		}
	}
	if math.Abs(ring.SlowdownVsBase-1.5) > 1e-12 || math.Abs(ring.NetworkEnergyX-1.5) > 1e-12 ||
		math.Abs(ring.LinkBytesX-2) > 1e-12 {
		t.Fatalf("ring row wrong: %+v", ring)
	}
	// Diameter comes from the topology at the run's unit count (ring of 4).
	if ring.Diameter != 2 {
		t.Fatalf("ring diameter = %d, want 2", ring.Diameter)
	}
	// A topology with no baseline counterpart is an error.
	if _, err := syncron.TopologySensitivity(results[1:2], ""); err == nil {
		t.Fatal("missing alltoall baseline not rejected")
	}
}

// The topology figure runs a real ≥3-topology × ≥4-scheme grid end to end
// and must be byte-deterministic (the sweep acceptance path of the
// interconnect refactor).
func TestTopologyFigureEndToEnd(t *testing.T) {
	opt := syncron.FigureOptions{
		Workloads: []string{"lock", "stack"},
		Schemes: []syncron.Scheme{syncron.SchemeCentral, syncron.SchemeHier,
			syncron.SchemeSynCron, syncron.SchemeIdeal},
		Topologies: []syncron.Topology{syncron.TopoMesh2D, syncron.TopoRing, syncron.TopoStar},
		Scale:      0.02,
	}
	render := func() string {
		figs, err := syncron.Figures(opt)
		if err != nil {
			t.Fatal(err)
		}
		var topo *syncron.Figure
		for _, f := range figs {
			if f.ID == "topology" {
				topo = f
			}
		}
		if topo == nil {
			t.Fatal("no topology figure emitted despite Topologies option")
		}
		var md, csv bytes.Buffer
		if err := topo.WriteMarkdown(&md); err != nil {
			t.Fatal(err)
		}
		if err := topo.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return md.String() + csv.String()
	}
	first := render()
	if second := render(); second != first {
		t.Fatalf("topology figure not deterministic:\n%s\nvs\n%s", first, second)
	}
	// The canonical 4 topology workloads x 4 schemes x 4 topologies
	// (alltoall is added as the baseline) = 64 data rows.
	lines := strings.Split(strings.TrimSpace(first), "\n")
	var dataRows int
	for _, l := range lines {
		if strings.HasPrefix(l, "| ") && !strings.HasPrefix(l, "| workload") {
			dataRows++
		}
	}
	if dataRows != 64 {
		t.Fatalf("topology figure has %d data rows, want 64:\n%s", dataRows, first)
	}
	for _, want := range []string{"alltoall", "mesh", "ring", "star"} {
		if !strings.Contains(first, want) {
			t.Fatalf("topology figure missing %q:\n%s", want, first)
		}
	}
}
