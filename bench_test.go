// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each Benchmark<Id> runs the corresponding experiment from internal/exp at
// a bench-friendly scale and reports headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// exercises the full harness. For full-size runs and printed tables use
// cmd/syncron-bench (e.g. `go run ./cmd/syncron-bench -exp fig12 -scale 1`).
package syncron_test

import (
	"strconv"
	"strings"
	"testing"

	"syncron"
	"syncron/internal/exp"
)

// benchScale keeps the full suite in the minutes range.
const benchScale = 0.05

// runExp runs one registered experiment and returns its tables.
func runExp(b *testing.B, id string, scale float64) []*exp.Table {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var tables []*exp.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(scale)
	}
	if len(tables) == 0 {
		b.Fatalf("experiment %q produced no tables", id)
	}
	return tables
}

// lastFloat extracts the last numeric cell of the last row (typically the
// average or final data point), for b.ReportMetric.
func lastFloat(t *exp.Table) float64 {
	for r := len(t.Rows) - 1; r >= 0; r-- {
		row := t.Rows[r]
		for c := len(row) - 1; c >= 0; c-- {
			cell := strings.TrimSuffix(row[c], "%")
			cell = strings.TrimSuffix(cell, "x")
			if v, err := strconv.ParseFloat(cell, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

func BenchmarkTable1(b *testing.B) {
	ts := runExp(b, "table1", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "Mops/s_last")
}

func BenchmarkFig2(b *testing.B) {
	ts := runExp(b, "fig2", benchScale)
	b.ReportMetric(lastFloat(ts[1]), "slowdown_4units")
}

func BenchmarkFig10(b *testing.B) {
	ts := runExp(b, "fig10", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "lock_speedup_last")
}

func BenchmarkFig11(b *testing.B) {
	ts := runExp(b, "fig11", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "stack_opsms_last")
}

func BenchmarkFig12(b *testing.B) {
	ts := runExp(b, "fig12", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "avg_ideal_speedup")
}

func BenchmarkFig13(b *testing.B) {
	ts := runExp(b, "fig13", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "avg_4unit_speedup")
}

func BenchmarkFig14(b *testing.B) {
	ts := runExp(b, "fig14", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "last_energy_ratio")
}

func BenchmarkFig15(b *testing.B) {
	ts := runExp(b, "fig15", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "last_traffic_ratio")
}

func BenchmarkFig16(b *testing.B) {
	ts := runExp(b, "fig16", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "stack_opsms_last")
}

func BenchmarkFig17(b *testing.B) {
	ts := runExp(b, "fig17", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "central_slowdown_500ns")
}

func BenchmarkFig18(b *testing.B) {
	ts := runExp(b, "fig18", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "last_speedup")
}

func BenchmarkFig19(b *testing.B) {
	ts := runExp(b, "fig19", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "last_maxST_pct")
}

func BenchmarkFig20(b *testing.B) {
	ts := runExp(b, "fig20", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "avg_syncron_vs_flat")
}

func BenchmarkFig21(b *testing.B) {
	ts := runExp(b, "fig21", benchScale)
	b.ReportMetric(lastFloat(ts[1]), "queue_speedup_last")
}

func BenchmarkFig22(b *testing.B) {
	ts := runExp(b, "fig22", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "last_overflow_pct")
}

func BenchmarkFig23(b *testing.B) {
	ts := runExp(b, "fig23", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "last_overflow_pct")
}

func BenchmarkTable7(b *testing.B) {
	ts := runExp(b, "table7", benchScale)
	b.ReportMetric(lastFloat(ts[0]), "tspow_avg_occupancy_pct")
}

func BenchmarkTable8(b *testing.B) {
	ts := runExp(b, "table8", 1)
	b.ReportMetric(lastFloat(ts[0]), "cortexA7_power_mW")
}

// benchSweep measures the public Sweep API end to end (expansion, the worker
// pool, per-run seeding) on a 2-scheme x 2-workload grid.
func benchSweep(b *testing.B, workers int) {
	sw := syncron.Sweep{
		Workloads: []string{"stack", "lock"},
		Schemes:   []syncron.Scheme{syncron.SchemeSynCron, syncron.SchemeCentral},
		Params:    syncron.WorkloadParams{Scale: benchScale, OpsPerCore: 8, Rounds: 10},
		Workers:   workers,
	}
	var results []syncron.RunResult
	for i := 0; i < b.N; i++ {
		results = sw.Run()
	}
	for _, r := range results {
		if r.Err != "" {
			b.Fatalf("%s under %s failed: %s", r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
		}
	}
	b.ReportMetric(float64(len(results)), "runs")
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkPerfGrid replays a scaled-down version of the canonical
// `figures --quick` grids end to end — the macro benchmark the CI perf gate
// compares across refs (`syncron-bench -perf` is the full-size version that
// seeds BENCH.json). Workers is pinned to 1 so the measurement is about
// simulator throughput, not the runner's core count, and the engine is
// pinned serial so the perf gate compares the same dispatcher on both refs
// regardless of the runner's CPU count (parallel payoff is gated separately
// by scripts/parallel_gate.sh).
func BenchmarkPerfGrid(b *testing.B) {
	sweeps := syncron.FigureSweeps(syncron.FigureOptions{
		Quick: true, Scale: 0.02, Workers: 1, Parallelism: syncron.ParallelismSerial,
	})
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		events = 0
		for _, sw := range sweeps {
			for _, r := range sw.Run() {
				if r.Err != "" {
					b.Fatalf("%s under %s failed: %s", r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
				}
				events += r.Events
			}
		}
	}
	b.ReportMetric(float64(events), "events/op")
}
