// Package syncron is the public API of the SynCron reproduction: a
// simulator for Near-Data-Processing (NDP) systems with hardware-accelerated
// synchronization, reproducing Giannoula et al., "SynCron: Efficient
// Synchronization Support for Near-Data-Processing Architectures"
// (HPCA 2021).
//
// A System is a simulated NDP machine (several NDP units, each with simple
// in-order cores close to an HBM/HMC/DDR4 stack) plus a synchronization
// Scheme: SynCron's per-unit Synchronization Engines, the Central or Hier
// message-passing baselines, coherence-based locks, or an Ideal zero-cost
// scheme. Programs are ordinary Go functions written against a core Context
// that issues computation, memory accesses, and the paper's synchronization
// primitives (locks, within/across-unit barriers, semaphores, condition
// variables).
//
// Quickstart:
//
//	sys := syncron.New(syncron.WithScheme(syncron.SchemeSynCron))
//	lock := sys.AllocLocal(0, 64)
//	counter := 0
//	sys.Spawn(sys.NumCores(), func(ctx *syncron.Context) {
//	    for i := 0; i < 100; i++ {
//	        ctx.Lock(lock)
//	        counter++
//	        ctx.Unlock(lock)
//	        ctx.Compute(200)
//	    }
//	})
//	report := sys.Run()
//	fmt.Println(report.Makespan, counter)
//
// Above single systems sit three batch layers:
//
//   - the workload registry (RegisterWorkload, WorkloadInfos) names every
//     benchmark of the paper's evaluation;
//   - the sweep engine (Sweep, Execute, RunSpecs) expands
//     (workload x scheme x config) grids and runs them on a worker pool
//     with deterministic per-run seeds;
//   - the analysis layer (SpeedupVsBaseline, Scalability, EnergyBreakdown,
//     TrafficBreakdown, STAblation, TopologySensitivity, Figures) turns
//     sweep results into the paper's evaluation views — speedup over a
//     baseline scheme with geomean aggregation per workload family, scaling
//     curves, energy and data-movement breakdowns, ST occupancy/overflow
//     ablations, interconnect-topology sensitivity (TopologySensitivity),
//     and DRAM-model sensitivity (MemSensitivity).
//
// The syncron-sim command exposes all three (run, sweep, figures, list);
// see ARCHITECTURE.md for how an operation flows through the simulator.
package syncron

import (
	"fmt"
	"runtime"
	"strings"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/coherlock"
	"syncron/internal/core"
	"syncron/internal/mem"
	"syncron/internal/network"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// Scheme selects the synchronization mechanism.
type Scheme string

// Available synchronization schemes.
const (
	// SchemeSynCron is the paper's contribution: hierarchical hardware
	// Synchronization Engines with direct variable buffering and integrated
	// overflow handling.
	SchemeSynCron Scheme = "syncron"
	// SchemeSynCronFlat is SynCron without the hierarchical level (§6.7.1).
	SchemeSynCronFlat Scheme = "syncron-flat"
	// SchemeCentral uses one server NDP core for the whole system.
	SchemeCentral Scheme = "central"
	// SchemeHier uses one server NDP core per NDP unit.
	SchemeHier Scheme = "hier"
	// SchemeIdeal has zero synchronization overhead (upper bound).
	SchemeIdeal Scheme = "ideal"
	// SchemeMESILock spins on MESI-coherent test&set locks (motivational).
	SchemeMESILock Scheme = "mesi-lock"
	// SchemeTTAS spins with test-and-test&set locks (motivational).
	SchemeTTAS Scheme = "ttas"
	// SchemeHTL uses Hierarchical Ticket Locks (motivational).
	SchemeHTL Scheme = "htl"
)

// Schemes returns every available scheme in a stable, documentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeSynCron, SchemeSynCronFlat, SchemeCentral, SchemeHier,
		SchemeIdeal, SchemeMESILock, SchemeTTAS, SchemeHTL}
}

// ParseScheme resolves a scheme name, accepting the short alias "flat" for
// SchemeSynCronFlat.
func ParseScheme(name string) (Scheme, error) {
	s := Scheme(strings.ToLower(strings.TrimSpace(name)))
	if s == "flat" {
		return SchemeSynCronFlat, nil
	}
	for _, known := range Schemes() {
		if s == known {
			return s, nil
		}
	}
	return "", fmt.Errorf("syncron: unknown scheme %q", name)
}

// Topology selects how NDP units are wired (internal/network's topology
// kinds). The interconnect is a sensitivity axis of the paper: AllToAll is
// the evaluated full point-to-point system, the others trade links for
// contention and hop count.
type Topology = network.Kind

// Interconnect topologies.
const (
	// TopoAllToAll is one dedicated serial link per ordered unit pair — the
	// paper's Figure-1 interconnect and the default.
	TopoAllToAll = network.KindAllToAll
	// TopoMesh2D arranges units on the most-square exact 2D grid with
	// dimension-ordered routing.
	TopoMesh2D = network.KindMesh2D
	// TopoRing connects units in a bidirectional ring (shortest way around).
	TopoRing = network.KindRing
	// TopoStar routes every unit pair through one shared off-chip switch.
	TopoStar = network.KindStar
)

// Topologies returns every supported topology in documentation order.
func Topologies() []Topology { return network.Kinds() }

// ParseTopology resolves a topology name (alltoall, mesh, ring, star); the
// empty string means TopoAllToAll.
func ParseTopology(name string) (Topology, error) { return network.ParseKind(name) }

// MemoryTech selects the NDP memory technology (Table 5).
type MemoryTech = mem.Tech

// Memory technologies.
const (
	HBM  = mem.HBM  // 2.5D NDP (default)
	HMC  = mem.HMC  // 3D NDP
	DDR4 = mem.DDR4 // 2D NDP
)

// ParseMemory resolves a memory technology name (hbm, hmc, ddr4).
func ParseMemory(name string) (MemoryTech, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "hbm", "":
		return HBM, nil
	case "hmc":
		return HMC, nil
	case "ddr4":
		return DDR4, nil
	}
	return HBM, fmt.Errorf("syncron: unknown memory technology %q", name)
}

// MemModel selects the DRAM timing model (internal/mem's models). Like the
// topology, the memory model is a sensitivity axis: MemModelFlat is the
// golden-pinned first-order model, MemModelBank adds per-bank row-buffer
// timing, a bounded per-bank queue, and a per-command energy split.
type MemModel = mem.Model

// DRAM timing models.
const (
	// MemModelFlat charges every access a fixed technology latency on its
	// interleaved channel (the default).
	MemModelFlat = mem.ModelFlat
	// MemModelBank tracks open rows per bank: row hits pay only the column
	// access, misses pay precharge/activate penalties.
	MemModelBank = mem.ModelBank
)

// MemModels returns every DRAM timing model in documentation order.
func MemModels() []MemModel { return mem.Models() }

// ParseMemModel resolves a memory-model name (flat, bank); the empty string
// means MemModelFlat.
func ParseMemModel(name string) (MemModel, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "flat", "":
		return MemModelFlat, nil
	case "bank":
		return MemModelBank, nil
	}
	return MemModelFlat, fmt.Errorf("syncron: unknown memory model %q", name)
}

// OverflowPolicy selects what happens when a Synchronization Table fills up
// (§6.7.3).
type OverflowPolicy = core.OverflowPolicy

// Overflow policies.
const (
	// OverflowIntegrated is SynCron's hardware-only scheme (default).
	OverflowIntegrated = core.OverflowIntegrated
	// OverflowCentral aborts to one central software handler.
	OverflowCentral = core.OverflowCentral
	// OverflowDistrib aborts to one software handler per NDP unit.
	OverflowDistrib = core.OverflowDistrib
)

// Time is a simulated duration/timestamp in picoseconds.
type Time = sim.Time

// Common durations, re-exported for configuration.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// Config describes the simulated NDP system.
type Config struct {
	// Scheme selects the synchronization mechanism (default SchemeSynCron).
	Scheme Scheme `json:"scheme"`
	// Units is the number of NDP units (default 4).
	Units int `json:"units,omitempty"`
	// CoresPerUnit is the number of client NDP cores per unit (default 15).
	CoresPerUnit int `json:"cores_per_unit,omitempty"`
	// Memory selects the memory technology (default HBM).
	Memory MemoryTech `json:"memory,omitempty"`
	// MemModel selects the DRAM timing model (default MemModelFlat).
	MemModel MemModel `json:"mem_model,omitempty"`
	// Topology selects the inter-unit interconnect (default TopoAllToAll).
	Topology Topology `json:"topology,omitempty"`
	// LinkLatency overrides the inter-unit transfer latency per cache line
	// (default 40ns).
	LinkLatency Time `json:"link_latency_ps,omitempty"`
	// STEntries overrides SynCron's Synchronization Table size (default 64).
	STEntries int `json:"st_entries,omitempty"`
	// Overflow selects the ST-overflow handling policy (SynCron schemes only).
	Overflow OverflowPolicy `json:"overflow,omitempty"`
	// FairnessThreshold enables the §4.4.2 lock-fairness extension.
	FairnessThreshold int `json:"fairness_threshold,omitempty"`
	// SEServiceCycles overrides the SE occupancy per message in SE cycles
	// (default 12, the paper's §5 assumption; SynCron schemes only).
	SEServiceCycles int64 `json:"se_service_cycles,omitempty"`
	// Seed makes all simulated randomness reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Parallelism selects the event engine's dispatcher. ParallelismAuto
	// (0, the default) resolves at New time to the parallel dispatcher with
	// min(GOMAXPROCS, simulated units + cores) workers on multi-core hosts,
	// and to the serial dispatcher on single-core hosts where parallel
	// dispatch can only add overhead. ParallelismSerial (-1) forces the
	// serial dispatcher; n > 0 forces the parallel dispatcher with exactly n
	// workers. Every value produces byte-identical results (see
	// ARCHITECTURE.md "Parallel execution"), so the field is an execution
	// knob, not part of the experiment: it is deliberately excluded from
	// JSON output and from SpecKey, letting serial and parallel runs share
	// cache entries.
	Parallelism int `json:"-"`
	// Tracer receives time-resolved trace records from the run: engine queue
	// depth and dispatch rate, per-link transfer windows, and per-variable
	// lock/barrier/semaphore/condvar spans (see NewTraceCollector). Nil (the
	// default) disables tracing entirely — every hook point is branch-guarded,
	// so the disabled path costs zero allocations and is pinned by CI. Like
	// Parallelism, the tracer is an observation knob, not part of the
	// experiment: it never changes simulated results, and it is excluded from
	// JSON output and from SpecKey. Traced runs should bypass the result
	// cache — a cache hit skips the simulation, so the tracer would see
	// nothing.
	Tracer Tracer `json:"-"`
}

// Sentinel values for Config.Parallelism / WithParallelism.
const (
	// ParallelismAuto (the zero value) picks the dispatcher at New time:
	// min(GOMAXPROCS, simulated units + cores) parallel workers on
	// multi-core hosts, serial on single-core hosts.
	ParallelismAuto = 0
	// ParallelismSerial forces the serial dispatcher.
	ParallelismSerial = -1
)

// resolveParallelism maps the public Parallelism knob (auto / serial / n) to
// the engine-level worker count, where 0 means the serial dispatcher.
// simUnits is the number of distinct schedulable units the machine will have
// (arch.Machine.NumSimUnits): more workers than units can never run, so auto
// caps there.
func resolveParallelism(p, simUnits int) int {
	switch {
	case p > 0:
		return p
	case p < 0:
		return 0
	}
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		return 0 // single-core host: parallel dispatch can only lose
	}
	if n > simUnits {
		n = simUnits
	}
	return n
}

// Context is the interface a simulated core's program uses; see
// program.Ctx for the full method set (Compute, Read, Write, Lock, Unlock,
// BarrierWithinUnit, BarrierAcrossUnits, SemWait, SemPost, CondWait,
// CondSignal, CondBroadcast, FetchAdd, Now).
type Context = program.Ctx

// Program is one simulated core's code.
type Program = program.Program

// System is a configured NDP machine ready to run programs.
type System struct {
	cfg Config
	m   *arch.Machine
	r   *program.Runner
}

// New builds a system from the given options. Both functional options and
// plain Config values are accepted (and may be mixed); see Option.
func New(opts ...Option) *System {
	var cfg Config
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = SchemeSynCron
	}
	acfg := arch.Default()
	if cfg.Units != 0 {
		acfg.Units = cfg.Units
	}
	if cfg.CoresPerUnit != 0 {
		acfg.CoresPerUnit = cfg.CoresPerUnit
	}
	acfg.Mem = cfg.Memory
	topo, err := ParseTopology(string(cfg.Topology))
	if err != nil {
		panic(err) // Execute recovers sweep runs; direct callers get a loud failure
	}
	acfg.Topology = topo
	cfg.Topology = topo
	mmodel, err := ParseMemModel(string(cfg.MemModel))
	if err != nil {
		panic(err)
	}
	acfg.MemModel = mmodel
	cfg.MemModel = mmodel
	acfg.LinkLatency = cfg.LinkLatency
	acfg.Parallelism = resolveParallelism(cfg.Parallelism,
		acfg.Units+acfg.Units*acfg.CoresPerUnit)
	if cfg.Seed != 0 {
		acfg.Seed = cfg.Seed
	}
	acfg.Tracer = cfg.Tracer
	m := arch.NewMachine(acfg)
	m.Backend = newBackend(cfg)
	// Record the machine-level defaults the run will actually use, so
	// Config() (and sweep results built from it) report resolved values.
	cfg.Units = m.Cfg.Units
	cfg.CoresPerUnit = m.Cfg.CoresPerUnit
	cfg.Seed = m.Cfg.Seed
	return &System{cfg: cfg, m: m, r: program.NewRunner(m)}
}

func newBackend(cfg Config) arch.Backend {
	switch cfg.Scheme {
	case SchemeSynCron:
		return core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true,
			STEntries: cfg.STEntries, Overflow: cfg.Overflow,
			FairnessThreshold: cfg.FairnessThreshold, SEServiceCycles: cfg.SEServiceCycles})
	case SchemeSynCronFlat:
		return core.NewCoordinator(core.Options{Topology: core.TopoFlat, HardwareSE: true,
			STEntries: cfg.STEntries, Overflow: cfg.Overflow,
			SEServiceCycles: cfg.SEServiceCycles, Name: "syncron-flat"})
	case SchemeCentral:
		return baselines.NewCentral()
	case SchemeHier:
		return baselines.NewHier()
	case SchemeIdeal:
		return baselines.NewIdeal()
	case SchemeMESILock:
		return coherlock.New(coherlock.MESILock)
	case SchemeTTAS:
		return coherlock.New(coherlock.TTAS)
	case SchemeHTL:
		return coherlock.New(coherlock.HTL)
	default:
		panic(fmt.Sprintf("syncron: unknown scheme %q", cfg.Scheme))
	}
}

// Config returns the configuration the system was built from, with Scheme,
// Units, CoresPerUnit, Topology, and Seed resolved to the values the run
// actually uses. Fields whose zero value means "scheme/component default" (STEntries,
// LinkLatency, SEServiceCycles) are reported as given.
func (s *System) Config() Config { return s.cfg }

// NumCores returns the number of client NDP cores.
func (s *System) NumCores() int { return s.m.NumCores() }

// UnitOf returns the NDP unit hosting core id.
func (s *System) UnitOf(core int) int { return s.m.UnitOf(core) }

// AllocLocal reserves cacheable memory (thread-private or shared read-only
// data, and synchronization variables) in the given NDP unit and returns its
// address. The unit determines the variable's Master SE.
func (s *System) AllocLocal(unit int, size uint64) uint64 { return s.m.Alloc(unit, size) }

// AllocShared reserves shared read-write memory in the given NDP unit; such
// data is uncacheable under the software-assisted coherence model.
func (s *System) AllocShared(unit int, size uint64) uint64 { return s.m.AllocShared(unit, size) }

// Spawn registers n copies of prog on consecutive free cores.
func (s *System) Spawn(n int, prog Program) {
	s.r.AddN(n, func(int) Program { return prog })
}

// SpawnEach registers programs produced by gen(i) on n consecutive cores.
func (s *System) SpawnEach(n int, gen func(i int) Program) { s.r.AddN(n, gen) }

// SpawnAt pins a program to a specific core.
func (s *System) SpawnAt(core int, prog Program) { s.r.AddAt(core, prog) }

// Report summarizes a finished run.
type Report struct {
	// Makespan is when the last core finished.
	Makespan Time
	// Scheme is the synchronization mechanism used.
	Scheme string
	// Energy breakdown in picojoules.
	CacheEnergyPJ, NetworkEnergyPJ, MemoryEnergyPJ float64
	// Data movement in bytes. BytesAcrossUnits counts every inter-unit link
	// traversed, so multi-hop topologies report more link traffic for the
	// same logical messages.
	BytesInsideUnits, BytesAcrossUnits uint64
	// AvgRouteLinks is the mean number of inter-unit links a cross-unit
	// message traversed (1 on the all-to-all topology, 0 if none crossed).
	AvgRouteLinks float64
	// RowHitRate is the fraction of DRAM accesses that hit an open row
	// buffer. Always 0 under the flat memory model (which has no row state).
	RowHitRate float64
	// SynCron-specific statistics (zero for other schemes).
	STOccupancyMax, STOccupancyMean, OverflowedFraction float64
	// Events is the number of discrete-event engine events executed by the
	// run — the simulator-throughput numerator of events/sec macro-benchmarks
	// (syncron-bench -perf).
	Events uint64
	// PerCore statistics.
	PerCore []program.Stats
}

// TotalEnergyPJ returns the summed energy.
func (r Report) TotalEnergyPJ() float64 {
	return r.CacheEnergyPJ + r.NetworkEnergyPJ + r.MemoryEnergyPJ
}

// Run executes all registered programs to completion and reports.
func (s *System) Run() Report {
	makespan := s.r.Run()
	s.m.FlushTrace()
	e := s.m.EnergyBreakdown()
	rep := Report{
		Makespan:        makespan,
		Scheme:          s.m.Backend.Name(),
		CacheEnergyPJ:   e.CachePJ,
		NetworkEnergyPJ: e.NetworkPJ,
		MemoryEnergyPJ:  e.MemoryPJ,
		Events:          s.m.Engine.Executed,
		PerCore:         s.r.Stats(),
	}
	rep.BytesInsideUnits, rep.BytesAcrossUnits = s.m.DataMovement()
	rep.AvgRouteLinks = s.m.Net.Stats.AvgRouteLinks()
	rep.RowHitRate = s.m.RowHitRate()
	if bs, ok := s.m.Backend.(arch.BackendStats); ok {
		rep.STOccupancyMax, rep.STOccupancyMean = bs.STOccupancy()
		rep.OverflowedFraction = bs.OverflowedFraction()
	}
	return rep
}

// Machine exposes the underlying machine for advanced use (experiments,
// custom workloads in internal packages).
func (s *System) Machine() *arch.Machine { return s.m }

// Runner exposes the underlying program runner (e.g. to disable the built-in
// lock checker).
func (s *System) Runner() *program.Runner { return s.r }
