package syncron

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// RunSpec names one simulation: a registered workload on one configuration.
type RunSpec struct {
	// Workload is a name registered with RegisterWorkload (see WorkloadNames).
	Workload string `json:"workload"`
	// Config is the system configuration; a zero Scheme means SchemeSynCron
	// and a zero Seed lets the executor assign a deterministic per-run seed.
	Config Config `json:"config"`
	// Params tunes the workload.
	Params WorkloadParams `json:"params"`
}

// RunResult is the structured outcome of executing one RunSpec.
type RunResult struct {
	Spec RunSpec      `json:"spec"`
	Kind WorkloadKind `json:"kind,omitempty"`
	// Seed is the seed the run actually used.
	Seed uint64 `json:"seed"`

	// Makespan is when the last core finished, in picoseconds.
	Makespan Time `json:"makespan_ps"`
	// Ops is the number of logical operations performed.
	Ops uint64 `json:"ops"`
	// OpsPerMs is throughput in operations per millisecond (Figure 11's unit).
	OpsPerMs float64 `json:"ops_per_ms"`
	// MopsPerSec is throughput in million operations per second.
	MopsPerSec float64 `json:"mops_per_sec"`

	// Energy breakdown in picojoules.
	CacheEnergyPJ   float64 `json:"cache_energy_pj"`
	NetworkEnergyPJ float64 `json:"network_energy_pj"`
	MemoryEnergyPJ  float64 `json:"memory_energy_pj"`

	// RowHitRate is the fraction of DRAM accesses that hit an open row buffer
	// (bank memory model only; always 0 under the flat model).
	RowHitRate float64 `json:"row_hit_rate,omitempty"`

	// Data movement in bytes; BytesAcrossUnits counts every inter-unit link
	// traversed (route length matters on multi-hop topologies).
	BytesInsideUnits uint64 `json:"bytes_inside_units"`
	BytesAcrossUnits uint64 `json:"bytes_across_units"`
	// AvgRouteLinks is the mean inter-unit links per cross-unit message.
	AvgRouteLinks float64 `json:"avg_route_links,omitempty"`

	// SynCron-specific statistics (zero for other schemes).
	STOccupancyMax     float64 `json:"st_occupancy_max"`
	STOccupancyMean    float64 `json:"st_occupancy_mean"`
	OverflowedFraction float64 `json:"overflowed_fraction"`

	// Events is the number of discrete-event engine events the run executed —
	// the throughput numerator of events/sec macro-benchmarks.
	Events uint64 `json:"events,omitempty"`

	// Key is the SpecKey of the spec as REQUESTED (before Execute resolves
	// config defaults into Spec.Config), always set by SpecRunner.Run. It is
	// the run's cache identity: CacheResult needs it because the requested
	// spec is no longer recoverable from the resolved one. Empty on results
	// from a bare Execute call.
	Key string `json:"spec_key,omitempty"`

	// Cached reports that this result was served from a ResultCache rather
	// than simulated. It is observability metadata of one lookup, not part of
	// the result, so it is never serialized: the same payload renders
	// identically whether it was simulated or replayed.
	Cached bool `json:"-"`

	// GridIndex is the run's position in the fully expanded, unsharded grid.
	// Sharded sweeps preserve the unsharded numbering, which is how MergeShards
	// reassembles shard outputs into the exact byte order an unsharded run
	// emits. It is bookkeeping of one sweep, not part of the result: the cache
	// strips it, and Execute (which sees no grid) leaves it 0.
	GridIndex int `json:"grid_index"`

	// Err is non-empty when the run failed (unknown workload, failed
	// functional check, simulator panic, a cache-only miss, or fail-fast
	// cancellation).
	Err string `json:"error,omitempty"`
}

// TotalEnergyPJ returns the summed energy.
func (r RunResult) TotalEnergyPJ() float64 {
	return r.CacheEnergyPJ + r.NetworkEnergyPJ + r.MemoryEnergyPJ
}

// Execute runs one spec to completion and captures the structured result.
// Failures (including simulator panics) are reported in RunResult.Err rather
// than propagated, so sweeps survive individual bad runs. A failed run's
// simulated machine cannot be torn down mid-flight, so its blocked program
// goroutines are retained until process exit — an acceptable cost for
// sweep-style batch processes, but callers embedding Execute in a long-lived
// service should treat a non-empty Err as a signal to recycle the process.
func Execute(spec RunSpec) (res RunResult) {
	res = RunResult{Spec: spec, Seed: spec.Config.Seed}
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Sprint(p)
		}
	}()
	w, ok := LookupWorkload(spec.Workload)
	if !ok {
		res.Err = fmt.Sprintf("unknown workload %q (see WorkloadNames)", spec.Workload)
		return res
	}
	res.Kind = w.Kind()
	sys := New(spec.Config)
	res.Spec.Config = sys.Config()
	res.Seed = sys.Machine().Cfg.Seed
	prep, err := w.Prepare(sys, spec.Params)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	rep := sys.Run()
	res.Makespan = rep.Makespan
	res.Ops = prep.Ops
	if rep.Makespan > 0 {
		res.OpsPerMs = float64(prep.Ops) / (rep.Makespan.Seconds() * 1e3)
		res.MopsPerSec = float64(prep.Ops) / rep.Makespan.Seconds() / 1e6
	}
	res.CacheEnergyPJ = rep.CacheEnergyPJ
	res.NetworkEnergyPJ = rep.NetworkEnergyPJ
	res.MemoryEnergyPJ = rep.MemoryEnergyPJ
	res.RowHitRate = rep.RowHitRate
	res.BytesInsideUnits = rep.BytesInsideUnits
	res.BytesAcrossUnits = rep.BytesAcrossUnits
	res.AvgRouteLinks = rep.AvgRouteLinks
	res.STOccupancyMax = rep.STOccupancyMax
	res.STOccupancyMean = rep.STOccupancyMean
	res.OverflowedFraction = rep.OverflowedFraction
	res.Events = rep.Events
	if prep.Check != nil {
		if err := prep.Check(); err != nil {
			res.Err = fmt.Sprintf("functional check failed: %v", err)
		}
	}
	return res
}

// Sweep enumerates a (workload x scheme x config) grid and runs it on a
// bounded worker pool. Every axis left empty falls back to the corresponding
// Base value, so the zero-extra-axes sweep is just Workloads x Schemes.
type Sweep struct {
	// Workloads are registry names (required).
	Workloads []string
	// Schemes to compare (default: SchemeSynCron only).
	Schemes []Scheme
	// Units, Topologies, Memories, MemModels, LinkLatencies, and STEntries
	// are optional grid axes; an empty axis uses the Base value.
	Units         []int
	Topologies    []Topology
	Memories      []MemoryTech
	MemModels     []MemModel
	LinkLatencies []Time
	STEntries     []int
	// Base is the configuration every run starts from; axis values and the
	// per-run seed are overlaid on it.
	Base Config
	// Params applies to every run.
	Params WorkloadParams
	// Workers bounds simultaneous runs (default GOMAXPROCS).
	Workers int
	// BaseSeed anchors the deterministic per-run seeds (see RunSpecs).
	BaseSeed uint64
	// Cache, when non-nil, lets runs whose SpecKey is already cached skip
	// simulation entirely and stores every newly simulated successful result.
	// See DirCache and WithCache.
	Cache ResultCache
	// CacheOnly forbids simulation: a run missing from Cache is reported as a
	// failed result instead of being executed. Used by `figures -from DIR`.
	CacheOnly bool
	// FailFast cancels runs that have not started yet as soon as any run
	// fails; canceled runs report an Err naming the first failure. Which runs
	// are canceled depends on worker timing, so FailFast trades the
	// byte-determinism of failing sweeps for a fast exit (successful sweeps
	// are unaffected).
	FailFast bool
	// Shard restricts execution to one deterministic slice of the grid; the
	// zero value runs everything.
	Shard Shard
}

// WithCache returns a copy of the sweep wired to cache.
func (s Sweep) WithCache(c ResultCache) Sweep {
	s.Cache = c
	return s
}

// Expand enumerates the grid in a fixed order: workload outermost, then
// scheme, topology, units, memory, memory model, link latency, ST entries.
func (s Sweep) Expand() []RunSpec {
	schemes := s.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{SchemeSynCron}
	}
	topos := s.Topologies
	if len(topos) == 0 {
		topos = []Topology{s.Base.Topology}
	}
	units := s.Units
	if len(units) == 0 {
		units = []int{s.Base.Units}
	}
	mems := s.Memories
	if len(mems) == 0 {
		mems = []MemoryTech{s.Base.Memory}
	}
	models := s.MemModels
	if len(models) == 0 {
		models = []MemModel{s.Base.MemModel}
	}
	links := s.LinkLatencies
	if len(links) == 0 {
		links = []Time{s.Base.LinkLatency}
	}
	sts := s.STEntries
	if len(sts) == 0 {
		sts = []int{s.Base.STEntries}
	}
	var specs []RunSpec
	for _, w := range s.Workloads {
		for _, scheme := range schemes {
			for _, topo := range topos {
				for _, u := range units {
					for _, m := range mems {
						for _, mm := range models {
							for _, l := range links {
								for _, st := range sts {
									cfg := s.Base
									cfg.Scheme = scheme
									cfg.Topology = topo
									cfg.Units = u
									cfg.Memory = m
									cfg.MemModel = mm
									cfg.LinkLatency = l
									cfg.STEntries = st
									specs = append(specs, RunSpec{Workload: w, Config: cfg, Params: s.Params})
								}
							}
						}
					}
				}
			}
		}
	}
	return specs
}

// Run expands the grid and executes it (or the configured Shard of it) with
// the sweep's execution policy; see SpecRunner.Run.
func (s Sweep) Run() []RunResult {
	return SpecRunner{
		Workers:   s.Workers,
		BaseSeed:  s.BaseSeed,
		Cache:     s.Cache,
		CacheOnly: s.CacheOnly,
		FailFast:  s.FailFast,
		Shard:     s.Shard,
	}.Run(s.Expand())
}

// RunSpecs executes specs on a pool of workers goroutines (default
// GOMAXPROCS) and returns one result per spec, in spec order. Each run whose
// Config.Seed is zero gets a seed derived only from baseSeed and its index,
// so results are byte-identical regardless of the worker count.
func RunSpecs(specs []RunSpec, workers int, baseSeed uint64) []RunResult {
	return SpecRunner{Workers: workers, BaseSeed: baseSeed}.Run(specs)
}

// ResolveSeeds returns a copy of specs in which every zero Config.Seed is
// replaced by a seed derived only from baseSeed and the spec's grid index —
// the same derivation at any worker count or shard split. Seed resolution is
// the step that turns a grid definition into content-addressable work: after
// it, every spec is a pure description of one deterministic run, hashable
// with SpecKey.
func ResolveSeeds(specs []RunSpec, baseSeed uint64) []RunSpec {
	out := make([]RunSpec, len(specs))
	for i, spec := range specs {
		if spec.Config.Seed == 0 {
			spec.Config.Seed = deriveSeed(baseSeed, i)
		}
		out[i] = spec
	}
	return out
}

// Shard names one slice of an N-way grid partition. Index must be in
// [0, Count); the zero value (Count 0, like Count 1) means "the whole grid".
type Shard struct {
	Index int
	Count int
}

// validate panics on an impossible shard — a configuration bug, caught
// before any simulation starts (CLI flags are validated at parse time).
func (sh Shard) validate() {
	if sh.Count < 0 || sh.Index < 0 || (sh.Count > 0 && sh.Index >= sh.Count) {
		panic(fmt.Sprintf("syncron: invalid shard %d/%d (want 0 <= index < count)", sh.Index, sh.Count))
	}
}

// Select returns the grid indices of the seed-resolved specs that belong to
// the shard, in grid order. Shards of the same Count are disjoint and
// exhaustive: every spec belongs to exactly one of them, assigned by spec
// content hash (see shardOf), never by position — so any process expanding
// the same grid computes the same partition.
func (sh Shard) Select(specs []RunSpec) []int {
	sh.validate()
	if sh.Count <= 1 {
		idx := make([]int, len(specs))
		for i := range specs {
			idx[i] = i
		}
		return idx
	}
	var idx []int
	for i, spec := range specs {
		if shardOf(spec, sh.Count) == sh.Index {
			idx = append(idx, i)
		}
	}
	return idx
}

// SpecRunner is the execution policy of a sweep: worker-pool width, seed
// derivation, result caching, and shard selection. Sweep.Run is
// SpecRunner.Run over Sweep.Expand; the CLI uses SpecRunner directly when it
// post-processes expanded specs before running them.
type SpecRunner struct {
	// Workers bounds simultaneous runs (default GOMAXPROCS).
	Workers int
	// BaseSeed anchors per-run seed derivation (see ResolveSeeds).
	BaseSeed uint64
	// Cache, CacheOnly, FailFast, and Shard behave as on Sweep.
	Cache     ResultCache
	CacheOnly bool
	FailFast  bool
	Shard     Shard
	// OnResult, when non-nil, is invoked once per completed run — simulated,
	// cache-served, failed, or canceled — as results become available.
	// Invocations are serialized (never concurrent) but arrive in completion
	// order, not grid order; use RunResult.GridIndex to re-anchor. It is the
	// progress hook of long-running callers (the serve daemon streams run
	// completions from it).
	OnResult func(RunResult)
}

// Run resolves seeds over the full spec list, selects the runner's shard,
// and executes it on the worker pool. It returns one result per selected
// spec in grid order, each carrying its unsharded GridIndex, so shard
// outputs merge (MergeShards) into the exact byte sequence an unsharded run
// produces. Cached results are returned without simulating; newly simulated
// successful results are stored back (best-effort — a failed cache write is
// ignored).
func (r SpecRunner) Run(specs []RunSpec) []RunResult {
	return r.RunContext(context.Background(), specs)
}

// RunContext is Run under a caller-supplied context: once ctx is canceled
// (or its deadline passes), runs that have not started yet are not simulated.
// Cancellation granularity is between runs — a simulation already in flight
// completes (the discrete-event engine is not preemptible) and its result is
// still returned and cached. Canceled runs are reported, never dropped: the
// returned slice always has one result per selected spec, in grid order, and
// a canceled run carries a non-empty Err naming the context error, so callers
// (and OnResult observers) can tell "not run" apart from "lost".
func (r SpecRunner) RunContext(ctx context.Context, specs []RunSpec) []RunResult {
	resolved := ResolveSeeds(specs, r.BaseSeed)
	selected := r.Shard.Select(resolved)

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	results := make([]RunResult, len(selected))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failed atomic.Pointer[RunResult]
	var cbMu sync.Mutex // serializes OnResult across workers
	pos := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pos {
				results[p] = r.runOne(runCtx, resolved[selected[p]], selected[p], &failed, cancel)
				if r.OnResult != nil {
					cbMu.Lock()
					r.OnResult(results[p])
					cbMu.Unlock()
				}
			}
		}()
	}
	for p := range selected {
		pos <- p
	}
	close(pos)
	wg.Wait()
	return results
}

// runOne executes (or cache-serves, or cancels) one seed-resolved spec.
func (r SpecRunner) runOne(ctx context.Context, spec RunSpec, gridIndex int,
	failed *atomic.Pointer[RunResult], cancel context.CancelFunc) RunResult {
	// The key hashes the spec as requested, before Execute resolves config
	// defaults into the result; it is computed whether or not a cache is
	// wired so cached and uncached sweeps serialize identically.
	key := SpecKey(spec)
	finish := func(res RunResult) RunResult {
		res.Key = key
		res.GridIndex = gridIndex
		if r.FailFast && res.Err != "" {
			if failed.CompareAndSwap(nil, &res) {
				cancel()
			}
		}
		return res
	}
	if ctx.Err() != nil {
		res := RunResult{Spec: spec, Seed: spec.Config.Seed, Key: key, GridIndex: gridIndex}
		// A fail-fast failure is always recorded before the internal cancel, so
		// a done context with no recorded failure means the caller's RunContext
		// context was canceled or timed out.
		if first := failed.Load(); r.FailFast && first != nil {
			res.Err = fmt.Sprintf("canceled by fail-fast: %s under %s failed: %s",
				first.Spec.Workload, first.Spec.Config.Scheme, first.Err)
		} else {
			res.Err = fmt.Sprintf("canceled: %v", ctx.Err())
		}
		return res
	}
	if r.Cache != nil {
		if payload, ok := r.Cache.Get(key); ok {
			if res, err := decodeCachedResult(payload); err == nil {
				res.Cached = true
				return finish(res)
			}
		}
	}
	if r.CacheOnly {
		res := RunResult{Spec: spec, Seed: spec.Config.Seed}
		if r.Cache == nil {
			res.Err = "cache-only run without a cache"
		} else {
			res.Err = fmt.Sprintf("not in cache (key %s); run the sweep with -cache first", key)
		}
		return finish(res)
	}
	res := Execute(spec)
	res.Key = key
	if r.Cache != nil && res.Err == "" {
		if payload, err := encodeCachedResult(res); err == nil {
			_ = r.Cache.Put(key, payload) // best-effort: a failed write only costs a future miss
		}
	}
	return finish(res)
}

// MergeShards reassembles shard outputs into the full grid: results are
// reordered by GridIndex and validated to cover exactly 0..n-1 once each —
// a missing index means a shard output was lost, a duplicate means two
// overlapping (or repeated) shard files. The merged slice serializes
// (WriteJSON, WriteCSV) byte-identically to the unsharded run of the same
// grid. A single unsharded output is itself a valid input.
func MergeShards(shards ...[]RunResult) ([]RunResult, error) {
	var all []RunResult
	for _, s := range shards {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("syncron: merging empty shard set")
	}
	merged := make([]RunResult, len(all))
	seen := make([]bool, len(all))
	for _, r := range all {
		if r.GridIndex < 0 || r.GridIndex >= len(all) {
			return nil, fmt.Errorf("syncron: grid index %d out of range for %d merged results (shard set incomplete?)",
				r.GridIndex, len(all))
		}
		if seen[r.GridIndex] {
			return nil, fmt.Errorf("syncron: duplicate grid index %d (overlapping or repeated shard outputs)", r.GridIndex)
		}
		seen[r.GridIndex] = true
		merged[r.GridIndex] = r
	}
	return merged, nil
}

// deriveSeed mixes baseSeed and the run index (splitmix64 finalizer) into a
// non-zero per-run seed.
func deriveSeed(baseSeed uint64, i int) uint64 {
	z := baseSeed + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// ResultSet is a slice of run results with grouping and join helpers — the
// substrate the analysis layer (analysis.go) builds its paper-figure views
// on. Methods never mutate the receiver; they return filtered views backed by
// fresh slices.
type ResultSet []RunResult

// Ok returns the runs that completed without error.
func (rs ResultSet) Ok() ResultSet {
	return rs.Filter(func(r RunResult) bool { return r.Err == "" })
}

// Failed returns the runs that reported an error.
func (rs ResultSet) Failed() ResultSet {
	return rs.Filter(func(r RunResult) bool { return r.Err != "" })
}

// Filter returns the runs for which keep reports true.
func (rs ResultSet) Filter(keep func(RunResult) bool) ResultSet {
	var out ResultSet
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Workloads returns the distinct workload names in first-seen order.
func (rs ResultSet) Workloads() []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range rs {
		if !seen[r.Spec.Workload] {
			seen[r.Spec.Workload] = true
			names = append(names, r.Spec.Workload)
		}
	}
	return names
}

// Schemes returns the distinct schemes in first-seen order.
func (rs ResultSet) Schemes() []Scheme {
	seen := map[Scheme]bool{}
	var schemes []Scheme
	for _, r := range rs {
		s := r.Spec.Config.Scheme
		if !seen[s] {
			seen[s] = true
			schemes = append(schemes, s)
		}
	}
	return schemes
}

// ByWorkload groups the runs by workload name.
func (rs ResultSet) ByWorkload() map[string]ResultSet {
	out := map[string]ResultSet{}
	for _, r := range rs {
		out[r.Spec.Workload] = append(out[r.Spec.Workload], r)
	}
	return out
}

// gridKey identifies the grid point a run belongs to with the per-run seed
// and any axes zeroed by strip removed, so runs differing only in those axes
// land on the same key. It is the single join-key builder behind
// JoinBaseline and TopologySensitivity.
func gridKey(r RunResult, strip func(*Config)) string {
	cfg := r.Spec.Config
	cfg.Seed = 0
	strip(&cfg)
	key, err := json.Marshal(struct {
		W string
		C Config
		P WorkloadParams
	}{r.Spec.Workload, cfg, r.Spec.Params})
	if err != nil {
		panic(fmt.Sprintf("syncron: marshaling grid key: %v", err))
	}
	return string(key)
}

// comparisonKey strips the scheme (and seed), so runs of different schemes
// on the same workload and configuration land on the same key. This is the
// join key of JoinBaseline.
func comparisonKey(r RunResult) string {
	return gridKey(r, func(c *Config) { c.Scheme = "" })
}

// BaselinePair joins one successful run with the baseline-scheme run of the
// same workload and grid point.
type BaselinePair struct {
	Run      RunResult
	Baseline RunResult
}

// JoinBaseline pairs every successful run with the successful baseline-scheme
// run of the same workload and configuration (all config axes except scheme
// and seed must match). It fails if a run has no baseline counterpart: the
// sweep did not include the baseline scheme at that grid point, or that
// baseline run failed.
func (rs ResultSet) JoinBaseline(baseline Scheme) ([]BaselinePair, error) {
	ok := rs.Ok()
	base := map[string]RunResult{}
	for _, r := range ok {
		if r.Spec.Config.Scheme == baseline {
			base[comparisonKey(r)] = r
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("syncron: no successful %q runs to use as baseline", baseline)
	}
	pairs := make([]BaselinePair, 0, len(ok))
	for _, r := range ok {
		b, found := base[comparisonKey(r)]
		if !found {
			return nil, fmt.Errorf("syncron: %s under %s has no successful %q baseline at the same grid point",
				r.Spec.Workload, r.Spec.Config.Scheme, baseline)
		}
		pairs = append(pairs, BaselinePair{Run: r, Baseline: b})
	}
	return pairs, nil
}

// WriteJSON emits results as indented JSON.
func WriteJSON(w io.Writer, results []RunResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{"workload", "kind", "scheme", "topology", "units",
	"cores_per_unit", "memory", "mem_model", "link_latency_ps", "st_entries",
	"seed", "makespan_ps", "ops", "ops_per_ms", "mops_per_sec",
	"cache_energy_pj", "network_energy_pj", "memory_energy_pj",
	"row_hit_rate", "bytes_inside_units", "bytes_across_units",
	"avg_route_links", "st_occupancy_max", "st_occupancy_mean",
	"overflowed_fraction", "error"}

// WriteCSV emits results as one flat CSV row per run.
func WriteCSV(w io.Writer, results []RunResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range results {
		cfg := r.Spec.Config
		row := []string{
			r.Spec.Workload, string(r.Kind), string(cfg.Scheme), string(cfg.Topology),
			strconv.Itoa(cfg.Units), strconv.Itoa(cfg.CoresPerUnit),
			cfg.Memory.String(), string(cfg.MemModel),
			strconv.FormatInt(int64(cfg.LinkLatency), 10),
			strconv.Itoa(cfg.STEntries), strconv.FormatUint(r.Seed, 10),
			strconv.FormatInt(int64(r.Makespan), 10), strconv.FormatUint(r.Ops, 10),
			f(r.OpsPerMs), f(r.MopsPerSec), f(r.CacheEnergyPJ), f(r.NetworkEnergyPJ),
			f(r.MemoryEnergyPJ), f(r.RowHitRate), strconv.FormatUint(r.BytesInsideUnits, 10),
			strconv.FormatUint(r.BytesAcrossUnits, 10), f(r.AvgRouteLinks),
			f(r.STOccupancyMax), f(r.STOccupancyMean), f(r.OverflowedFraction), r.Err,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
