// Package runcache is a content-addressed filesystem cache for sweep run
// results. It stores opaque payloads under caller-supplied keys — one JSON
// envelope file per key — and promises only integrity, never freshness:
//
//   - writes are atomic (temp file + rename), so a crashed or concurrent
//     writer can never leave a torn entry behind;
//   - reads validate the envelope; a corrupt file, an entry recorded under a
//     different key, or a key from another encoding version simply misses;
//   - keys are versioned by their prefix (e.g. "v1-<hash>"), so bumping the
//     key version orphans old entries instead of returning stale payloads.
//
// The package is deliberately ignorant of what a payload means — the syncron
// package defines the canonical spec encoding, the key derivation, and the
// RunResult payload format (see syncron.SpecKey and syncron.DirCache) — so it
// cannot import the root package and stays reusable for other batch layers.
package runcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Stats counts cache traffic. Misses include corrupt and mismatched entries;
// Errors counts failed writes (a failed Put only costs a future miss).
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	Errors uint64 `json:"errors"`
}

// Dir is a filesystem-backed cache: one <key>.json envelope per entry, all in
// a single flat directory. All methods are safe for concurrent use.
type Dir struct {
	path string

	hits, misses, puts, errors atomic.Uint64
}

// entry is the on-disk envelope. Recording the key inside the file lets Get
// reject entries that were renamed, truncated, or hash-collided into place.
type entry struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Open creates (if needed) and opens a cache directory.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	return &Dir{path: path}, nil
}

// Path returns the cache directory.
func (d *Dir) Path() string { return d.path }

// Stats returns a snapshot of the traffic counters.
func (d *Dir) Stats() Stats {
	return Stats{
		Hits:   d.hits.Load(),
		Misses: d.misses.Load(),
		Puts:   d.puts.Load(),
		Errors: d.errors.Load(),
	}
}

// validKey rejects keys that could escape the cache directory or collide
// with temp files. Canonical keys ("v1-" + hex digest) always pass.
func validKey(key string) bool {
	if key == "" || strings.HasPrefix(key, ".") {
		return false
	}
	return !strings.ContainsAny(key, "/\\:*?\"<>| \t\n")
}

// Get returns the payload stored under key, or (nil, false) on any miss:
// absent, unreadable, corrupt, or recorded under a different key.
func (d *Dir) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		d.misses.Add(1)
		return nil, false
	}
	raw, err := os.ReadFile(d.file(key))
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil || e.Key != key || len(e.Payload) == 0 {
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return e.Payload, true
}

// Put stores payload under key, replacing any existing entry atomically: the
// envelope is written to a temp file in the same directory and renamed into
// place, so concurrent readers see either the old complete entry or the new
// one, never a torn write.
func (d *Dir) Put(key string, payload []byte) error {
	if !validKey(key) {
		d.errors.Add(1)
		return &os.PathError{Op: "runcache.Put", Path: key, Err: os.ErrInvalid}
	}
	raw, err := json.Marshal(entry{Key: key, Payload: payload})
	if err != nil {
		d.errors.Add(1)
		return err
	}
	tmp, err := os.CreateTemp(d.path, ".tmp-*")
	if err != nil {
		d.errors.Add(1)
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return err
	}
	if err := os.Rename(tmp.Name(), d.file(key)); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return err
	}
	d.puts.Add(1)
	return nil
}

// Len reports the number of entry files currently in the directory.
func (d *Dir) Len() int {
	names, err := os.ReadDir(d.path)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range names {
		if strings.HasSuffix(de.Name(), ".json") && !strings.HasPrefix(de.Name(), ".") {
			n++
		}
	}
	return n
}

func (d *Dir) file(key string) string {
	return filepath.Join(d.path, key+".json")
}
