package runcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"makespan_ps":42}`)
	if err := d.Put("v1-abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("v1-abc123")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if st := d.Stats(); st.Hits != 1 || st.Misses != 0 || st.Puts != 1 || st.Errors != 0 {
		t.Fatalf("stats after round trip: %+v", st)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestAbsentKeyMisses(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("v1-nothere"); ok {
		t.Fatal("absent key hit")
	}
	if st := d.Stats(); st.Misses != 1 {
		t.Fatalf("miss not counted: %+v", st)
	}
}

// A corrupt entry file (truncated write from a crashed process, disk
// garbage) must read as a miss, never as an error or a bogus payload.
func TestCorruptEntryMisses(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "v1-corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("v1-corrupt"); ok {
		t.Fatal("corrupt entry hit")
	}
}

// An entry recorded under a different key (renamed file, hash collision,
// tampering) must miss: the envelope's recorded key is the authority.
func TestMismatchedKeyMisses(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("v1-original", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "v1-original.json"), filepath.Join(dir, "v1-renamed.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("v1-renamed"); ok {
		t.Fatal("entry recorded under a different key hit")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", ".hidden", "sp ace"} {
		if err := d.Put(key, []byte(`1`)); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := d.Get(key); ok {
			t.Errorf("Get(%q) hit on an invalid key", key)
		}
	}
}

// Put replaces entries atomically and leaves no temp droppings behind.
func TestPutReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("v1-k", []byte(`"old"`)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("v1-k", []byte(`"new"`)); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("v1-k")
	if !ok || string(got) != `"new"` {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// Writers racing DISTINCT payloads onto one key — the serve daemon's shape
// when several processes finish the same spec — must never expose a torn or
// interleaved entry: every read is one writer's complete payload, exactly one
// entry survives, and no temp files leak. Run under -race.
func TestConcurrentSameKeyDistinctPayloads(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	valid := make(map[string]bool, writers)
	payloads := make([][]byte, writers)
	for i := range payloads {
		// Distinct lengths so a torn write could not masquerade as a shorter
		// valid payload.
		payloads[i] = []byte(fmt.Sprintf(`{"writer":%d,"pad":%q}`, i, strings.Repeat("x", i*37)))
		valid[string(payloads[i])] = true
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(p []byte) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := d.Put("v1-contested", p); err != nil {
					t.Error(err)
					return
				}
			}
		}(payloads[i])
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if payload, ok := d.Get("v1-contested"); ok && !valid[string(payload)] {
					t.Errorf("torn read: %q", payload)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := d.Get("v1-contested")
	if !ok || !valid[string(got)] {
		t.Fatalf("final read = %q, %v; want one writer's full payload", got, ok)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := d.Put("v1-shared", []byte(`{"x":1}`)); err != nil {
					t.Error(err)
					return
				}
				if payload, ok := d.Get("v1-shared"); ok && string(payload) != `{"x":1}` {
					t.Errorf("torn read: %q", payload)
					return
				}
			}
		}()
	}
	wg.Wait()
}
