package program

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/sim"
)

// instantBackend grants with zero latency but correct lock queueing (a
// minimal Ideal for tests).
type instantBackend struct {
	m     *arch.Machine
	held  map[uint64]bool
	queue map[uint64][]func(sim.Time)
}

func (b *instantBackend) Name() string { return "instant" }
func (b *instantBackend) Attach(m *arch.Machine) {
	b.m = m
	b.held = make(map[uint64]bool)
	b.queue = make(map[uint64][]func(sim.Time))
}
func (b *instantBackend) ExtraCacheEnergyPJ() float64 { return 0 }
func (b *instantBackend) Request(t sim.Time, core int, req arch.SyncReq, done func(sim.Time)) {
	at := func(f func(sim.Time)) { b.m.Engine.Schedule(t, f) }
	switch req.Op {
	case arch.OpLockAcquire:
		if !b.held[req.Addr] {
			b.held[req.Addr] = true
			at(done)
			return
		}
		b.queue[req.Addr] = append(b.queue[req.Addr], done)
	case arch.OpLockRelease:
		at(done)
		if q := b.queue[req.Addr]; len(q) > 0 {
			next := q[0]
			b.queue[req.Addr] = q[1:]
			at(next)
			return
		}
		b.held[req.Addr] = false
	default:
		at(done)
	}
}

// brokenBackend grants every request instantly with no queueing at all —
// used to prove the mutual-exclusion checker catches bad backends.
type brokenBackend struct{ m *arch.Machine }

func (b *brokenBackend) Name() string                { return "broken" }
func (b *brokenBackend) Attach(m *arch.Machine)      { b.m = m }
func (b *brokenBackend) ExtraCacheEnergyPJ() float64 { return 0 }
func (b *brokenBackend) Request(t sim.Time, core int, req arch.SyncReq, done func(sim.Time)) {
	b.m.Engine.Schedule(t, done)
}

func newM() *arch.Machine {
	m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 2})
	m.Backend = &instantBackend{}
	return m
}

func TestComputeTiming(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	var finish sim.Time
	r.Add(func(ctx *Ctx) {
		ctx.Compute(1000)
		finish = ctx.Now()
	})
	r.Run()
	if want := m.CoreClock.Cycles(1000); finish != want {
		t.Fatalf("1000 instructions took %v, want %v", finish, want)
	}
}

func TestBlockingMemoryOps(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	a := m.AllocShared(0, 64)
	var t1, t2 sim.Time
	r.Add(func(ctx *Ctx) {
		ctx.Read(a)
		t1 = ctx.Now()
		ctx.Write(a)
		t2 = ctx.Now()
	})
	r.Run()
	if t1 <= 0 || t2 <= t1 {
		t.Fatalf("memory ops not blocking: %v, %v", t1, t2)
	}
}

func TestMakespanIsMaxFinish(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	r.Add(func(ctx *Ctx) { ctx.Compute(100) })
	r.Add(func(ctx *Ctx) { ctx.Compute(5000) })
	got := r.Run()
	if want := m.CoreClock.Cycles(5000); got != want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

func TestStatsCounts(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	a := m.AllocShared(0, 64)
	lock := m.Alloc(0, 64)
	r.Add(func(ctx *Ctx) {
		ctx.Compute(10)
		ctx.Read(a)
		ctx.Write(a)
		ctx.Lock(lock)
		ctx.Unlock(lock)
	})
	r.Run()
	s := r.Stats()[0]
	if s.Instrs != 10 || s.Reads != 1 || s.Writes != 1 || s.SyncOps != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		m := newM()
		r := NewRunner(m)
		lock := m.Alloc(0, 64)
		data := m.AllocShared(1, 64)
		r.AddN(4, func(i int) Program {
			return func(ctx *Ctx) {
				for k := 0; k < 20; k++ {
					ctx.Lock(lock)
					ctx.Read(data)
					ctx.Write(data)
					ctx.Unlock(lock)
					ctx.Compute(int64(10 * (i + 1)))
				}
			}
		})
		return r.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic makespans: %v vs %v", a, b)
	}
}

func TestLockCheckerDetectsDoubleUnlock(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	r.PanicOnViolation = false
	lock := m.Alloc(0, 64)
	r.Add(func(ctx *Ctx) {
		ctx.Lock(lock)
		ctx.Unlock(lock)
		ctx.Unlock(lock) // bug: released twice
	})
	r.Run()
	if r.Violations == 0 {
		t.Fatal("checker missed a double unlock")
	}
}

func TestLockCheckerDetectsBrokenBackend(t *testing.T) {
	// A backend that grants the same lock to everyone concurrently must be
	// flagged by the mutual-exclusion checker.
	m := arch.NewMachine(arch.Config{Units: 1, CoresPerUnit: 2})
	m.Backend = &brokenBackend{} // grants everything instantly, no queueing
	r := NewRunner(m)
	r.PanicOnViolation = false
	lock := m.Alloc(0, 64)
	r.AddN(2, func(i int) Program {
		return func(ctx *Ctx) {
			ctx.Lock(lock)
			ctx.Compute(1000) // overlap guaranteed
			ctx.Unlock(lock)
		}
	})
	r.Run()
	if r.Violations == 0 {
		t.Fatal("checker missed concurrent lock holders")
	}
}

func TestAddAtPinning(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	var unit int
	r.AddAt(3, func(ctx *Ctx) { unit = ctx.Unit })
	r.Run()
	if unit != m.UnitOf(3) {
		t.Fatalf("pinned core ran in unit %d", unit)
	}
}

func TestTooManyProgramsPanics(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.AddN(m.NumCores()+1, func(int) Program { return func(*Ctx) {} })
}
