package program

import (
	"testing"

	"syncron/internal/arch"
)

// BenchmarkProgramOps measures the per-operation cost of the program layer's
// engine handoff (step -> resumeAt -> step), the schedule-in-a-loop hot path
// every workload runs on. The CI perf gate tracks it alongside the raw engine
// benchmarks: a regression here that doesn't show in BenchmarkEngine* points
// at the handoff plumbing, not the event queue.
func BenchmarkProgramOps(b *testing.B) {
	const opsPerRun = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 2})
		m.Backend = &instantBackend{}
		r := NewRunner(m)
		for c := 0; c < m.NumCores(); c++ {
			r.Add(func(ctx *Ctx) {
				for k := 0; k < opsPerRun/4; k++ {
					ctx.Compute(10)
				}
			})
		}
		r.Run()
	}
	b.ReportMetric(float64(opsPerRun), "ops/run")
}

// BenchmarkProgramSyncOps measures the sync-request round trip through a
// minimal backend (request, grant callback, zero-delay resume).
func BenchmarkProgramSyncOps(b *testing.B) {
	const roundsPerCore = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 2})
		m.Backend = &instantBackend{}
		r := NewRunner(m)
		lock := m.Alloc(0, 64)
		for c := 0; c < m.NumCores(); c++ {
			r.Add(func(ctx *Ctx) {
				for k := 0; k < roundsPerCore; k++ {
					ctx.Lock(lock)
					ctx.Unlock(lock)
				}
			})
		}
		r.Run()
	}
}
