package program

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/sim"
)

// With TagCoreUnits, the steady-state hot path — compute, L1 hits, and
// own-unit memory misses — must schedule NO serial-barrier events: every
// event carries an owning unit, so the parallel dispatcher never has to
// fence the whole machine. sim.Engine.ExecutedBarriers is the hook; it is
// maintained by the serial and parallel dispatchers alike.
func TestTaggedHotPathSchedulesNoBarriers(t *testing.T) {
	for _, workers := range []int{0, 2} {
		m := newM()
		m.Engine.SetParallelism(workers)
		r := NewRunner(m)
		r.TagCoreUnits = true
		n := m.NumCores()
		// Each core hammers a cacheable line homed on its OWN unit: a cold
		// own-unit miss, then L1 hits — plus compute. No synchronization.
		addrs := make([]uint64, n)
		for c := 0; c < n; c++ {
			addrs[c] = m.Alloc(m.UnitOf(c), 64)
		}
		r.AddN(n, func(c int) Program {
			return func(ctx *Ctx) {
				for i := 0; i < 50; i++ {
					ctx.Compute(10)
					ctx.Read(addrs[c])
					ctx.Write(addrs[c])
				}
			}
		})
		r.Run()
		if got := m.Engine.ExecutedBarriers; got != 0 {
			t.Errorf("workers=%d: hot path executed %d serial-barrier events, want 0 (of %d total)",
				workers, got, m.Engine.Executed)
		}
		if m.Engine.Executed == 0 {
			t.Fatalf("workers=%d: vacuous run, no events executed", workers)
		}
	}
}

// Synchronization still fences: each sync op costs a bounded number of
// barrier events (issue + backend grant), independent of how much tagged
// compute/memory work surrounds it. This pins the ownership split — sync
// protocol serial, everything else unit-owned.
func TestTaggedSyncBarriersAreBounded(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	r.TagCoreUnits = true
	n := m.NumCores()
	lock := m.Alloc(0, 64)
	const rounds = 20
	r.AddN(n, func(c int) Program {
		return func(ctx *Ctx) {
			for i := 0; i < rounds; i++ {
				ctx.Compute(50)
				ctx.Lock(lock)
				ctx.Unlock(lock)
			}
		}
	})
	r.Run()
	syncOps := uint64(n * rounds * 2)
	// Issue barrier + grant event per sync op, plus the backend's own
	// events; 4x leaves room for queue hand-off without letting per-access
	// barriers sneak back in (the compute events alone number n*rounds).
	if got, max := m.Engine.ExecutedBarriers, 4*syncOps; got > max {
		t.Errorf("%d sync ops executed %d barrier events, want <= %d", syncOps, got, max)
	}
	if m.Engine.ExecutedBarriers == 0 {
		t.Error("sync ops executed zero barrier events; issue path lost its fence")
	}
}

// Untagged runners keep the PR-7 behavior: every program event is a serial
// barrier. This is the baseline the two tests above are measured against.
func TestUntaggedRunKeepsBarrierEvents(t *testing.T) {
	m := newM()
	r := NewRunner(m)
	r.AddN(m.NumCores(), func(int) Program {
		return func(ctx *Ctx) {
			for i := 0; i < 10; i++ {
				ctx.Compute(10)
			}
		}
	})
	r.Run()
	if m.Engine.ExecutedBarriers != m.Engine.Executed {
		t.Errorf("untagged run: %d of %d events were barriers, want all",
			m.Engine.ExecutedBarriers, m.Engine.Executed)
	}
}

// Tagged and untagged runs of the same program must report identical
// simulated timing: unit tagging moves events between dispatcher lanes,
// never across simulated time.
func TestTaggingDoesNotChangeTiming(t *testing.T) {
	run := func(tagged bool, workers int) sim.Time {
		m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 2})
		m.Backend = &instantBackend{}
		m.Engine.SetParallelism(workers)
		r := NewRunner(m)
		r.TagCoreUnits = tagged
		n := m.NumCores()
		lock := m.Alloc(0, 64)
		addrs := make([]uint64, n)
		for c := 0; c < n; c++ {
			addrs[c] = m.Alloc(m.UnitOf(c), 64)
		}
		r.AddN(n, func(c int) Program {
			return func(ctx *Ctx) {
				for i := 0; i < 30; i++ {
					ctx.Compute(20)
					ctx.Read(addrs[c])
					ctx.Lock(lock)
					ctx.Write(addrs[(c+1)%n]) // cross-unit for half the cores
					ctx.Unlock(lock)
				}
			}
		})
		return r.Run()
	}
	want := run(false, 0)
	for _, workers := range []int{0, 2, 4} {
		if got := run(true, workers); got != want {
			t.Errorf("tagged run (workers=%d) makespan %v, untagged %v", workers, got, want)
		}
	}
}
