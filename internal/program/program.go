// Package program executes per-core "programs" on the simulated machine.
//
// A Program is ordinary Go code written in straight-line style against a
// *Ctx. Each simulated core runs its program on a dedicated goroutine, but
// the simulation engine performs a strict synchronous handoff: the engine
// blocks while a program advances to its next operation, so exactly one
// goroutine is ever runnable and the simulation is fully deterministic.
//
// Cores are in-order and blocking (paper §5): each operation completes
// before the next one issues.
package program

import (
	"fmt"
	"sync"

	"syncron/internal/arch"
	"syncron/internal/sim"
)

// Program is the body of one simulated core's execution.
type Program func(*Ctx)

// Ctx is the interface a Program uses to interact with the simulated world.
// All methods must be called from the program's own goroutine.
type Ctx struct {
	ID   int // global core id
	Unit int // NDP unit
	RNG  *sim.RNG

	r   *Runner
	p   *proc
	now sim.Time
}

type opKind int

const (
	opCompute opKind = iota
	opRead
	opWrite
	opSync
)

type op struct {
	kind opKind
	n    int64
	addr uint64
	req  arch.SyncReq
}

type proc struct {
	id       int
	unit     int // NDP unit of the core
	opCh     chan op
	resCh    chan sim.Time
	startCh  chan struct{} // closed by the engine's first step for this core
	started  bool
	done     bool
	finishAt sim.Time

	// eventUnit is the engine unit the core's step/resume events are tagged
	// with: CoreUnit(id) when the runner tags core units, -1 (serial barrier)
	// otherwise.
	eventUnit int

	// The callbacks below are bound once at launch so the per-operation hot
	// path schedules without allocating a fresh closure per event. pend and
	// issued are the arena for the in-flight operation (in-order blocking
	// cores have at most one), which is what lets memFn/syncFn/grantFn be
	// prebound instead of capturing per-op state.
	stepFn   sim.UnitFunc
	resumeFn sim.UnitFunc
	memFn    sim.UnitFunc        // deferred memory access (pend)
	syncFn   sim.UnitFunc        // deferred synchronization request (pend)
	grantFn  func(done sim.Time) // backend grant callback for pend
	pend     op
	issued   sim.Time

	// statistics
	Instrs   uint64
	Reads    uint64
	Writes   uint64
	SyncOps  uint64
	SyncWait sim.Time // time spent blocked in acquire-type sync ops
}

// Runner drives a set of programs to completion on a machine.
type Runner struct {
	M     *arch.Machine
	procs []*proc
	progs map[int]Program
	next  int

	// CheckLocks enables the built-in mutual-exclusion checker (on by
	// default): lock acquire/release/cond_wait requests verify that no two
	// cores ever hold the same lock and that releases match the holder. The
	// checker runs engine-side (release checks at issue time, acquire checks
	// at grant time), so it is safe under the parallel dispatcher: sync
	// requests always issue from serial-barrier events.
	CheckLocks bool

	// TagCoreUnits tags every core's step/resume events with CoreUnit(core),
	// letting same-timestamp events of different cores run concurrently under
	// the parallel dispatcher (sim.Engine.SetParallelism). Own-unit memory
	// accesses are deferred to ResourceUnit-tagged events and synchronization
	// requests to serial barriers, so each event touches only its owner's
	// state.
	//
	// Legality is a property of the *programs*: host code between two
	// operations of different cores may run concurrently (with happens-before
	// edges only through the op channels), so every shared host variable must
	// be protected by simulated locks/barriers. Workloads that read shared
	// state outside critical sections (optimistic searches, unlocked reads)
	// must leave this off — they keep today's serial-barrier behavior, which
	// is identical on both dispatchers. Must be set before Run.
	TagCoreUnits bool

	holders map[uint64]int // lock addr -> core id

	// Violations counts checker failures when PanicOnViolation is off.
	Violations int
	// PanicOnViolation makes checker failures fatal (default true).
	PanicOnViolation bool

	// progPanic records the first panic raised by a program goroutine so Run
	// can re-raise it on its caller's goroutine, where it is recoverable.
	panicMu   sync.Mutex
	progPanic any
}

// NewRunner builds a runner for machine m.
func NewRunner(m *arch.Machine) *Runner {
	return &Runner{M: m, CheckLocks: true, PanicOnViolation: true,
		holders: make(map[uint64]int), progs: make(map[int]Program)}
}

// Add registers a program for the next free core. It panics if more programs
// are added than the machine has cores.
func (r *Runner) Add(p Program) {
	for r.progs[r.next] != nil {
		r.next++
	}
	r.AddAt(r.next, p)
}

// AddAt registers a program on a specific core (thread pinning).
func (r *Runner) AddAt(core int, p Program) {
	if core < 0 || core >= r.M.NumCores() {
		panic(fmt.Sprintf("program: core %d out of range (%d cores)", core, r.M.NumCores()))
	}
	if r.progs[core] != nil {
		panic(fmt.Sprintf("program: core %d already has a program", core))
	}
	r.progs[core] = p
}

// AddN registers n copies of the program produced by gen(i) on consecutive
// free cores.
func (r *Runner) AddN(n int, gen func(i int) Program) {
	for i := 0; i < n; i++ {
		r.Add(gen(i))
	}
}

// Run executes all programs to completion and returns the makespan (the time
// the last core finished).
func (r *Runner) Run() sim.Time {
	if r.M.Backend == nil {
		panic("program: machine has no synchronization backend attached")
	}
	r.M.Backend.Attach(r.M)
	eng := r.M.Engine
	for i := 0; i < r.M.NumCores(); i++ {
		pg := r.progs[i]
		if pg == nil {
			continue
		}
		p := &proc{id: i, unit: r.M.UnitOf(i), opCh: make(chan op),
			resCh: make(chan sim.Time), startCh: make(chan struct{})}
		p.eventUnit = -1
		if r.TagCoreUnits {
			p.eventUnit = r.M.CoreUnit(i)
		}
		p.stepFn = func(ctx *sim.UnitCtx, at sim.Time) { r.step(ctx, p, at) }
		p.resumeFn = func(ctx *sim.UnitCtx, at sim.Time) {
			p.resCh <- at
			r.step(ctx, p, at)
		}
		p.memFn = func(ctx *sim.UnitCtx, at sim.Time) {
			o := p.pend
			fin := r.M.CoreAccess(at, p.id, o.addr, o.kind == opWrite)
			ctx.Schedule(fin, p.eventUnit, p.resumeFn)
		}
		p.syncFn = func(_ *sim.UnitCtx, at sim.Time) { r.issueSync(p, at) }
		p.grantFn = func(done sim.Time) {
			req := p.pend.req
			if done < p.issued {
				panic(fmt.Sprintf("program: backend %s granted at %v before request at %v",
					r.M.Backend.Name(), done, p.issued))
			}
			if req.Op.Blocking() {
				p.SyncWait += done - p.issued
			}
			r.checkGrant(p, req, done)
			// Grant callbacks run inside backend events, which are serial
			// barriers with full engine access.
			r.M.Engine.ScheduleUnit(done, p.eventUnit, p.resumeFn)
		}
		r.procs = append(r.procs, p)
		ctx := &Ctx{ID: i, Unit: r.M.UnitOf(i), RNG: r.M.RNG.Fork(), r: r, p: p}
		go func(pg Program, ctx *Ctx) {
			defer close(ctx.p.opCh)
			// Program code (including the checkers in Ctx) runs on this
			// goroutine; re-raise its panics on the Run caller's goroutine so
			// callers can recover them instead of crashing the process.
			defer func() {
				if v := recover(); v != nil {
					r.panicMu.Lock()
					if r.progPanic == nil {
						r.progPanic = v
					}
					r.panicMu.Unlock()
				}
			}()
			// Host-side code before the program's first simulated operation
			// must not run until the engine hands this core the turn;
			// otherwise all cores race on shared host state at launch.
			<-ctx.p.startCh
			pg(ctx)
		}(pg, ctx)
	}
	for _, p := range r.procs {
		eng.ScheduleUnit(0, p.eventUnit, p.stepFn)
	}
	eng.Run()
	r.panicMu.Lock()
	progPanic := r.progPanic
	r.panicMu.Unlock()
	if progPanic != nil {
		panic(progPanic)
	}
	var makespan sim.Time
	for _, p := range r.procs {
		if !p.done {
			panic(fmt.Sprintf("program: core %d deadlocked at %v (sync op never granted)", p.id, eng.Now()))
		}
		if p.finishAt > makespan {
			makespan = p.finishAt
		}
	}
	return makespan
}

// step fetches the next operation from core p's program and models it. It
// runs as an engine event tagged with the core's eventUnit: a CoreUnit event
// may only touch the core's own state (proc fields, its L1), so anything
// heavier is deferred to a same-timestamp event on its owner — the core's
// ResourceUnit for own-unit memory accesses, a serial barrier for cross-unit
// accesses and synchronization requests. Untagged cores (eventUnit < 0) run
// as barriers and model everything inline, which is byte-identical to the
// pre-unit-tagging behavior.
func (r *Runner) step(ctx *sim.UnitCtx, p *proc, at sim.Time) {
	if !p.started {
		p.started = true
		close(p.startCh)
	}
	o, ok := <-p.opCh
	if !ok {
		p.done = true
		p.finishAt = at
		return
	}
	switch o.kind {
	case opCompute:
		p.Instrs += uint64(o.n)
		ctx.Schedule(at+r.M.CoreClock.Cycles(o.n), p.eventUnit, p.resumeFn)
	case opRead, opWrite:
		write := o.kind == opWrite
		if write {
			p.Writes++
		} else {
			p.Reads++
		}
		if p.eventUnit < 0 {
			ctx.Schedule(r.M.CoreAccess(at, p.id, o.addr, write), p.eventUnit, p.resumeFn)
			return
		}
		switch r.M.ClassifyCoreAccess(p.id, o.addr, write) {
		case arch.AccessL1Hit:
			// The hit path touches only the core's own L1; model it here.
			ctx.Schedule(r.M.CoreAccess(at, p.id, o.addr, write), p.eventUnit, p.resumeFn)
		case arch.AccessOwnUnit:
			p.pend = o
			ctx.Schedule(at, r.M.ResourceUnit(p.unit), p.memFn)
		default: // AccessCrossUnit
			p.pend = o
			ctx.Schedule(at, -1, p.memFn)
		}
	case opSync:
		p.SyncOps++
		p.pend = o
		if p.eventUnit < 0 {
			r.issueSync(p, at)
			return
		}
		ctx.Schedule(at, -1, p.syncFn)
	}
}

// issueSync submits the core's pending synchronization request to the
// backend. Always called from serial-barrier context: the backend and the
// lock checker touch global state.
func (r *Runner) issueSync(p *proc, at sim.Time) {
	p.issued = at
	r.checkIssue(p, p.pend.req)
	r.M.Backend.Request(at, p.id, p.pend.req, p.grantFn)
}

// checkIssue runs the release-side lock checks when a sync request is issued.
func (r *Runner) checkIssue(p *proc, req arch.SyncReq) {
	if !r.CheckLocks {
		return
	}
	switch req.Op {
	case arch.OpLockRelease:
		if h, held := r.holders[req.Addr]; !held || h != p.id {
			r.violation("core %d released lock %#x it does not hold (holder %d, held=%v)",
				p.id, req.Addr, h, held)
		}
		delete(r.holders, req.Addr)
	case arch.OpCondWait:
		if h, held := r.holders[req.Lock]; !held || h != p.id {
			r.violation("core %d cond_wait on %#x without holding lock %#x", p.id, req.Addr, req.Lock)
		}
		delete(r.holders, req.Lock)
	}
}

// checkGrant runs the acquire-side lock checks when the backend grants a sync
// request. Grant callbacks come from backend events (serial barriers).
func (r *Runner) checkGrant(p *proc, req arch.SyncReq, at sim.Time) {
	if !r.CheckLocks {
		return
	}
	switch req.Op {
	case arch.OpLockAcquire:
		if h, held := r.holders[req.Addr]; held {
			r.violation("mutual exclusion violated: lock %#x granted to core %d while held by %d at %v",
				req.Addr, p.id, h, at)
		}
		r.holders[req.Addr] = p.id
	case arch.OpCondWait:
		if h, held := r.holders[req.Lock]; held {
			r.violation("cond_wait woke core %d with lock %#x held by %d", p.id, req.Lock, h)
		}
		r.holders[req.Lock] = p.id
	}
}

// violation reports a checker failure.
func (r *Runner) violation(format string, args ...any) {
	r.Violations++
	if r.PanicOnViolation {
		panic("program: " + fmt.Sprintf(format, args...))
	}
}

// ---- Ctx operations ----

func (c *Ctx) do(o op) sim.Time {
	c.p.opCh <- o
	c.now = <-c.p.resCh
	return c.now
}

// Now returns the core's current simulated time.
func (c *Ctx) Now() sim.Time { return c.now }

// Compute models n instructions of local computation (1 instruction/cycle).
func (c *Ctx) Compute(n int64) {
	if n <= 0 {
		return
	}
	c.do(op{kind: opCompute, n: n})
}

// Read models a blocking load from addr.
func (c *Ctx) Read(addr uint64) { c.do(op{kind: opRead, addr: addr}) }

// Write models a blocking store to addr.
func (c *Ctx) Write(addr uint64) { c.do(op{kind: opWrite, addr: addr}) }

// Sync issues a raw synchronization request.
func (c *Ctx) Sync(req arch.SyncReq) { c.do(op{kind: opSync, req: req}) }

// Lock acquires the lock at addr (req_sync lock_acquire). When the runner's
// checker is on, mutual exclusion is verified engine-side at grant time.
func (c *Ctx) Lock(addr uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpLockAcquire, Addr: addr}})
}

// Unlock releases the lock at addr (req_async lock_release). The checker
// verifies the release against the holder engine-side at issue time.
func (c *Ctx) Unlock(addr uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpLockRelease, Addr: addr}})
}

// BarrierWithinUnit waits on a barrier among n cores of the caller's unit.
func (c *Ctx) BarrierWithinUnit(addr uint64, n int) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpBarrierWithinUnit, Addr: addr, Info: uint64(n)}})
}

// BarrierAcrossUnits waits on a barrier among n cores across NDP units.
func (c *Ctx) BarrierAcrossUnits(addr uint64, n int) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpBarrierAcrossUnits, Addr: addr, Info: uint64(n)}})
}

// SemWait performs P() on the semaphore at addr with the given initial value
// (communicated on first touch, as in the paper's API).
func (c *Ctx) SemWait(addr uint64, initial int) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpSemWait, Addr: addr, Info: uint64(initial)}})
}

// SemPost performs V() on the semaphore at addr.
func (c *Ctx) SemPost(addr uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpSemPost, Addr: addr}})
}

// CondWait atomically releases lock and waits on the condition variable at
// addr; the lock is re-acquired before return. The checker verifies the
// release at issue time and the re-acquisition at wakeup, engine-side.
func (c *Ctx) CondWait(addr, lock uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpCondWait, Addr: addr, Lock: lock}})
}

// CondSignal wakes one waiter of the condition variable at addr.
func (c *Ctx) CondSignal(addr, lock uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpCondSignal, Addr: addr, Lock: lock}})
}

// CondBroadcast wakes all waiters of the condition variable at addr.
func (c *Ctx) CondBroadcast(addr, lock uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpCondBroadcast, Addr: addr, Lock: lock}})
}

// FetchAdd performs the §4.4.1 RMW extension on SynCron backends.
func (c *Ctx) FetchAdd(addr uint64, delta uint64) {
	c.do(op{kind: opSync, req: arch.SyncReq{Op: arch.OpFetchAdd, Addr: addr, Info: delta}})
}

// Stats returns per-core statistics after a run.
type Stats struct {
	Core     int
	Instrs   uint64
	Reads    uint64
	Writes   uint64
	SyncOps  uint64
	SyncWait sim.Time
	Finish   sim.Time
}

// Stats returns statistics for every core, indexed by core id.
func (r *Runner) Stats() []Stats {
	out := make([]Stats, len(r.procs))
	for i, p := range r.procs {
		out[i] = Stats{Core: p.id, Instrs: p.Instrs, Reads: p.Reads, Writes: p.Writes,
			SyncOps: p.SyncOps, SyncWait: p.SyncWait, Finish: p.finishAt}
	}
	return out
}
