package core

import (
	"syncron/internal/network"
	"syncron/internal/sim"
)

// MiSAR-style non-integrated overflow handling (§6.7.3, Figure 23): when an
// ST overflows, the SEs send abort messages to all participating cores,
// which then synchronize through an alternative software solution — a
// message handler on an NDP core that keeps the synchronization variable in
// main memory (uncacheable: NDP systems have no shared caches to fall back
// on). When the variable drains, the cores notify the SEs to switch back to
// hardware synchronization. SynCron_CentralOvrfl uses one software server
// for the whole system; SynCron_DistribOvrfl one per NDP unit.

// fallbackUnit returns the NDP unit running the software fallback for addr.
func (c *Coordinator) fallbackUnit(addr uint64) int {
	if c.opt.Overflow == OverflowCentral {
		return 0
	}
	return c.m.HomeUnit(addr)
}

// enterFallback aborts hardware synchronization for ms's variable.
func (c *Coordinator) enterFallback(t sim.Time, ms *masterState) {
	ms.fallback = true
	c.abortsSent++
	// Abort notification to every client core (traffic + latency cost).
	master := c.masterNode(ms.addr)
	for core := 0; core < c.m.NumCores(); core++ {
		c.m.Net.Transfer(t, master.unit, c.m.UnitOf(core), c.m.LocalOf(core), 19)
	}
}

// exitFallback switches the variable back to hardware synchronization: the
// cores notify the SEs (one message per unit, modelled as traffic).
func (c *Coordinator) exitFallback(t sim.Time, ms *masterState) {
	ms.fallback = false
	master := c.masterNode(ms.addr)
	for u := 0; u < c.m.Cfg.Units; u++ {
		if u == master.unit {
			continue
		}
		c.m.Net.Transfer(t, u, master.unit, network.PortSE, 18)
	}
}

// fallbackService runs the software handler for one message: handler
// instructions plus an uncacheable read-modify-write of the variable in
// main memory, serialized on the fallback server.
func (c *Coordinator) fallbackService(t sim.Time, addr uint64) sim.Time {
	unit := c.fallbackUnit(addr)
	start := t
	if c.fallbackBusy[unit] > start {
		start = c.fallbackBusy[unit]
	}
	end := start + c.m.CoreClock.Cycles(c.opt.ServerHandlerInstrs)
	end = c.m.AccessFrom(end, unit, network.PortSE, nil, addr, false)
	end = c.m.AccessFrom(end, unit, network.PortSE, nil, addr, true)
	c.fallbackBusy[unit] = end
	return end
}

// fallbackLockAcquire services a lock acquire through the software fallback.
func (c *Coordinator) fallbackLockAcquire(t sim.Time, core int, addr uint64, done func(sim.Time)) {
	c.overflowReqs++
	unit := c.fallbackUnit(addr)
	arr := c.m.Net.Transfer(t, c.m.UnitOf(core), unit, network.PortSE, 18)
	c.m.Engine.Schedule(arr, func(arr sim.Time) {
		fin := c.fallbackService(arr, addr)
		c.m.Engine.Schedule(fin, func(fin sim.Time) {
			ms := c.master(addr)
			ref := holderRef{core: core, done: done}
			if !ms.lockHeld {
				ms.lockHeld = true
				c.fallbackGrant(fin, addr, ref)
				return
			}
			ms.queue = append(ms.queue, ref)
		})
	})
}

// fallbackLockRelease services a lock release through the software fallback.
func (c *Coordinator) fallbackLockRelease(t sim.Time, core int, addr uint64) {
	unit := c.fallbackUnit(addr)
	arr := c.m.Net.Transfer(t, c.m.UnitOf(core), unit, network.PortSE, 18)
	c.m.Engine.Schedule(arr, func(arr sim.Time) {
		fin := c.fallbackService(arr, addr)
		c.m.Engine.Schedule(fin, func(fin sim.Time) {
			ms := c.master(addr)
			ms.lockHeld = false
			if len(ms.queue) == 0 {
				c.masterFree(fin, ms)
				return
			}
			ref := ms.queue[0]
			k := copy(ms.queue, ms.queue[1:])
			ms.queue[k] = holderRef{}
			ms.queue = ms.queue[:k]
			ms.lockHeld = true
			c.fallbackGrant(fin, addr, ref)
		})
	})
}

// fallbackGrant delivers a software grant to a core.
func (c *Coordinator) fallbackGrant(t sim.Time, addr uint64, ref holderRef) {
	unit := c.fallbackUnit(addr)
	arr := c.m.Net.Transfer(t, unit, c.m.UnitOf(ref.core), c.m.LocalOf(ref.core), 19)
	c.m.Engine.Schedule(arr, ref.done)
}

// AbortsSent reports how many overflow abort broadcasts were issued (tests).
func (c *Coordinator) AbortsSent() uint64 { return c.abortsSent }
