package core

import (
	"syncron/internal/cache"
	"syncron/internal/network"
	"syncron/internal/sim"
)

// node is one coordination point: a Synchronization Engine (hardware) or a
// server NDP core (software message handler), in one NDP unit.
type node struct {
	c    *Coordinator
	unit int

	busyTill sim.Time

	// SE state (nil for server nodes): the Synchronization Table models
	// direct buffering; entries are refcounted because a node can hold both
	// the local-role and master-role state of the same variable in one entry
	// (§6.6: a single entry is reserved when the local SE is the Master SE).
	st        map[uint64]int
	counters  []int           // indexing counters (aliased by low address bits)
	memVars   map[uint64]bool // variables currently serviced via main memory
	occupancy sim.Gauge

	// Server state (nil for SEs): the software handler's L1 through which it
	// accesses variable state in memory.
	l1    *cache.Cache
	l1Cfg cache.Config

	// local per-variable protocol state (used in TopoHier).
	locals map[uint64]*localState
}

func newNode(c *Coordinator, unit int) *node {
	n := &node{c: c, unit: unit, locals: make(map[uint64]*localState)}
	if c.opt.HardwareSE {
		n.st = make(map[uint64]int)
		n.counters = make([]int, c.opt.IndexingCounters)
		n.memVars = make(map[uint64]bool)
	} else {
		n.l1Cfg = cache.DefaultConfig()
		n.l1 = cache.New(n.l1Cfg)
	}
	return n
}

// port is the node's crossbar endpoint inside its unit.
func (n *node) port() int { return network.PortSE }

// counterIndex hashes a variable address onto an indexing counter (8 LSBs of
// the line address, as in §4.2.3).
func (n *node) counterIndex(addr uint64) int {
	return int((addr / cache.LineSize) % uint64(len(n.counters)))
}

// viaMemory reports whether the node must service addr through main memory
// (SE only): either the variable already overflowed, or it has no ST entry
// and cannot get one because the ST is full or an aliased indexing counter
// is non-zero (§4.2.3 aliasing note).
func (n *node) viaMemory(addr uint64) bool {
	if n.st == nil {
		return false
	}
	if n.memVars[addr] {
		return true
	}
	if _, ok := n.st[addr]; ok {
		return false
	}
	return len(n.st) >= n.c.opt.STEntries || n.counters[n.counterIndex(addr)] > 0
}

// acquireRef tries to reserve (or re-reference) the ST entry for addr. For
// server nodes it always succeeds. On failure the variable must be serviced
// via memory.
func (n *node) acquireRef(t sim.Time, addr uint64) bool {
	if n.st == nil {
		return true
	}
	if refs, ok := n.st[addr]; ok {
		n.st[addr] = refs + 1
		return true
	}
	if n.memVars[addr] || len(n.st) >= n.c.opt.STEntries || n.counters[n.counterIndex(addr)] > 0 {
		return false
	}
	n.st[addr] = 1
	n.occupancy.Set(t, float64(len(n.st)))
	return true
}

// releaseRef drops one reference to addr's ST entry, freeing it at zero.
func (n *node) releaseRef(t sim.Time, addr uint64) {
	if n.st == nil {
		return
	}
	refs, ok := n.st[addr]
	if !ok {
		return
	}
	if refs <= 1 {
		delete(n.st, addr)
		n.occupancy.Set(t, float64(len(n.st)))
	} else {
		n.st[addr] = refs - 1
	}
}

// memEnter marks addr as serviced via memory, bumping its indexing counter.
func (n *node) memEnter(addr uint64) {
	if n.st == nil || n.memVars[addr] {
		return
	}
	n.memVars[addr] = true
	n.counters[n.counterIndex(addr)]++
}

// memExit clears addr's memory-service mode (decrease_indexing_counter).
func (n *node) memExit(addr uint64) {
	if n.st == nil || !n.memVars[addr] {
		return
	}
	delete(n.memVars, addr)
	n.counters[n.counterIndex(addr)]--
}

// process models the node handling one message for addr arriving at arr and
// returns the time processing completes. The node is occupied for the whole
// duration (SEs buffer and serve messages in order; server cores are
// blocking in-order cores).
func (n *node) process(arr sim.Time, addr uint64) sim.Time {
	m := n.c.m
	start := arr
	if n.busyTill > start {
		start = n.busyTill
	}
	var end sim.Time
	if n.st != nil {
		// SE: fixed SPU service (paper: 12 SE cycles for the slowest
		// opcode); +2 SE cycles when the indexing counters are consulted,
		// plus a read-modify-write of the syncronVar in local memory when
		// the variable is serviced via memory and this SE is its master.
		end = start + m.SEClock.Cycles(n.c.opt.SEServiceCycles)
		if n.viaMemory(addr) {
			n.c.overflowReqs++
			end += m.SEClock.Cycles(2)
			if n.c.masterNode(addr) == n {
				// Blocking read of the syncronVar, then a fire-and-forget
				// write-back of the updated record.
				varAddr := syncronVarAddr(addr)
				end = m.AccessFrom(end, n.unit, n.port(), nil, varAddr, false)
				m.AccessFrom(end, n.unit, n.port(), nil, varAddr, true)
			}
		}
	} else {
		// Server core: software handler instructions plus variable-state
		// accesses through the server's own L1 (cacheable: the state is
		// private to the server).
		end = start + m.CoreClock.Cycles(n.c.opt.ServerHandlerInstrs)
		for i := 0; i < n.c.opt.ServerVarAccesses; i++ {
			write := i == n.c.opt.ServerVarAccesses-1
			end = m.AccessFrom(end, n.unit, n.port(), n.l1, varStateAddr(addr, i), write)
		}
	}
	n.busyTill = end
	return end
}

// syncronVarAddr maps a synchronization variable to its in-memory syncronVar
// record (allocated by the NDP driver in the variable's home unit; we reuse
// the variable's own line, which lives in the right unit by construction).
func syncronVarAddr(addr uint64) uint64 { return addr }

// varStateAddr spreads a server's per-variable software state (variable word
// plus waiting-list record) over adjacent lines.
func varStateAddr(addr uint64, i int) uint64 { return addr + uint64(i)*cache.LineSize }
