package core

import "syncron/internal/sim"

// Lock protocol (paper §3.2, Figure 4).
//
// Hierarchical mode: cores send local lock_acquire messages to their local
// SE, which records them in the ST entry's local waiting list and sends one
// aggregated global lock_acquire to the Master SE. The master grants the
// lock SE-to-SE; each SE then serves its local waiters in sequence and sends
// one aggregated global lock_release when no local requests remain.
//
// Flat/Central modes: every core request is a per-core message straight to
// the master node. ST-overflowed local SEs degenerate to the same per-core
// handling, relayed through the overflowed SE with overflow opcodes (§4.3.2).

// lockAcquire is the entry point for a core's lock_acquire.
func (c *Coordinator) lockAcquire(t sim.Time, core int, addr uint64, done func(sim.Time)) {
	if ms, ok := c.vars[addr]; ok && ms.fallback {
		c.fallbackLockAcquire(t, core, addr, done)
		return
	}
	if !c.hierarchical() {
		o := c.op(opMasterCoreAcquire)
		o.core, o.addr, o.done = core, addr, done
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opLockEnqueue)
	o.nd, o.core, o.addr, o.done = local, core, addr, done
	c.coreToNode(t, core, local, addr, o.fn)
}

// lockEnqueueAt runs the local-SE side of an acquire after message
// processing at node local (also used by condition-variable wakeups).
func (c *Coordinator) lockEnqueueAt(pt sim.Time, local *node, core int, addr uint64, done func(sim.Time)) {
	master := c.masterNode(addr)
	ls, ok := local.localOf(pt, addr)
	if !ok {
		// Local ST overflow: redirect to the master with overflow opcodes.
		local.memEnter(addr)
		o := c.op(opMasterCoreAcquire)
		o.core, o.addr, o.done, o.nd = core, addr, done, local
		c.nodeToNode(pt, local, master, addr, o.fn)
		return
	}
	ls.waiters = append(ls.waiters, pend{core: core, done: done})
	switch {
	case ls.owning && !ls.holderActive:
		c.grantNextLocal(pt, local, ls)
	case !ls.owning && !ls.requested:
		ls.requested = true
		o := c.op(opMasterNodeAcquire)
		o.nd, o.addr = local, addr
		c.nodeToNode(pt, local, master, addr, o.fn)
	}
}

// grantNextLocal hands the lock to the next core in the SE's local waiting
// list (lock_grant_local).
func (c *Coordinator) grantNextLocal(t sim.Time, local *node, ls *localState) {
	w := ls.waiters[0]
	// Shift down instead of re-slicing so the pooled state keeps its full
	// backing-array capacity across episodes.
	k := copy(ls.waiters, ls.waiters[1:])
	ls.waiters[k] = pend{}
	ls.waiters = ls.waiters[:k]
	ls.holderActive = true
	ls.grants++
	c.nodeToCore(t, local, w.core, w.done)
}

// lockRelease is the entry point for a core's lock_release.
func (c *Coordinator) lockRelease(t sim.Time, core int, addr uint64) {
	if ms, ok := c.vars[addr]; ok && ms.fallback {
		c.fallbackLockRelease(t, core, addr)
		return
	}
	if !c.hierarchical() {
		o := c.op(opMasterCoreRelease)
		o.addr = addr
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opLockReleaseAt)
	o.nd, o.core, o.addr = local, core, addr
	c.coreToNode(t, core, local, addr, o.fn)
}

// lockReleaseAt runs the local-SE side of a release after message processing
// (also used when cond_wait releases the associated lock).
func (c *Coordinator) lockReleaseAt(pt sim.Time, local *node, core int, addr uint64) {
	master := c.masterNode(addr)
	ls := local.locals[addr]
	if ls == nil || !ls.owning || !ls.holderActive {
		// The acquire was serviced via the master (overflow mode): redirect
		// the release there too.
		o := c.op(opMasterCoreRelease)
		o.addr = addr
		c.nodeToNode(pt, local, master, addr, o.fn)
		return
	}
	ls.holderActive = false
	transfer := c.opt.FairnessThreshold > 0 && ls.grants >= c.opt.FairnessThreshold
	if len(ls.waiters) > 0 && !transfer {
		c.grantNextLocal(pt, local, ls)
		return
	}
	// No more local requests (or fairness transfer): send one aggregated
	// global lock_release; re-queue this SE when it still has waiters.
	requeue := len(ls.waiters) > 0
	ls.owning = false
	ls.grants = 0
	if !requeue {
		ls.requested = false
		local.localDrop(pt, addr)
	}
	o := c.op(opMasterNodeRelease)
	o.nd, o.addr, o.flag = local, addr, requeue
	c.nodeToNode(pt, local, master, addr, o.fn)
}

// masterLockNodeAcquire handles a global lock_acquire from a local SE.
func (c *Coordinator) masterLockNodeAcquire(t sim.Time, from *node, addr uint64) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	if !ms.lockHeld {
		ms.lockHeld = true
		c.grantLockToNode(t, from, addr)
		return
	}
	ms.queue = append(ms.queue, holderRef{node: from})
}

// masterLockCoreAcquire handles a per-core acquire at the master (flat,
// central, or overflow-redirected via relay).
func (c *Coordinator) masterLockCoreAcquire(t sim.Time, core int, addr uint64, done func(sim.Time), relay *node) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if relay != nil {
		// §4.3.2: both the overflowed SE and the master service the variable
		// via memory and track it in their indexing counters.
		ms.overflowSEs[relay] = true
		c.masterNode(addr).memEnter(addr)
	}
	if c.masterNode(addr).viaMemory(addr) || ms.fallback {
		c.overflowReqs++
	}
	ref := holderRef{node: nil, core: core, done: done, relay: relay}
	if !ms.lockHeld {
		ms.lockHeld = true
		c.grantLockToCore(t, addr, ref)
		return
	}
	ms.queue = append(ms.queue, ref)
}

// masterLockNodeRelease handles an aggregated global lock_release from a
// local SE; requeue re-enqueues that SE at the tail (fairness transfer).
func (c *Coordinator) masterLockNodeRelease(t sim.Time, from *node, addr uint64, requeue bool) {
	ms := c.master(addr)
	ms.lockHeld = false
	if requeue {
		ms.queue = append(ms.queue, holderRef{node: from})
	}
	c.masterLockGrantNext(t, ms, addr)
}

// masterLockCoreRelease handles a per-core release at the master.
func (c *Coordinator) masterLockCoreRelease(t sim.Time, addr uint64) {
	ms := c.master(addr)
	ms.lockHeld = false
	c.masterLockGrantNext(t, ms, addr)
}

// masterLockGrantNext transfers the lock to the next waiting SE or core,
// preferring the master's own unit's SE (the paper's master-local priority),
// or frees the variable when nobody waits.
func (c *Coordinator) masterLockGrantNext(t sim.Time, ms *masterState, addr uint64) {
	if len(ms.queue) == 0 {
		c.masterFree(t, ms)
		return
	}
	idx := 0
	mn := c.masterNode(addr)
	for i, ref := range ms.queue {
		if ref.node == mn {
			idx = i
			break
		}
	}
	ref := ms.queue[idx]
	last := len(ms.queue) - 1
	copy(ms.queue[idx:], ms.queue[idx+1:])
	ms.queue[last] = holderRef{}
	ms.queue = ms.queue[:last]
	ms.lockHeld = true
	if ref.node != nil {
		c.grantLockToNode(t, ref.node, addr)
	} else {
		c.grantLockToCore(t, addr, ref)
	}
}

// grantLockToNode sends lock_grant_global to a local SE, which then serves
// its local waiting list.
func (c *Coordinator) grantLockToNode(t sim.Time, to *node, addr uint64) {
	o := c.op(opGrantNodeArrived)
	o.nd, o.addr = to, addr
	c.nodeToNode(t, c.masterNode(addr), to, addr, o.fn)
}

// grantLockNodeArrived runs at the local SE when lock_grant_global arrives.
func (c *Coordinator) grantLockNodeArrived(lt sim.Time, to *node, addr uint64) {
	ls := to.locals[addr]
	if ls == nil {
		// All local waiters vanished (can only happen via fairness requeue
		// races); bounce the lock back.
		o := c.op(opMasterNodeRelease)
		o.nd, o.addr, o.flag = to, addr, false
		c.nodeToNode(lt, to, c.masterNode(addr), addr, o.fn)
		return
	}
	ls.owning = true
	if len(ls.waiters) > 0 && !ls.holderActive {
		c.grantNextLocal(lt, to, ls)
	}
}

// grantLockToCore sends the grant to a single core, through its overflowed
// local SE when the request was relayed.
func (c *Coordinator) grantLockToCore(t sim.Time, addr uint64, ref holderRef) {
	if ms, ok := c.vars[addr]; ok && ms.fallback {
		c.fallbackGrant(t, addr, ref)
		return
	}
	master := c.masterNode(addr)
	if ref.relay != nil && ref.relay != master {
		o := c.op(opRelayGrant)
		o.nd, o.core, o.done = ref.relay, ref.core, ref.done
		c.nodeToNode(t, master, ref.relay, addr, o.fn)
		return
	}
	c.nodeToCore(t, master, ref.core, ref.done)
}
