package core

import "syncron/internal/sim"

// holderRef identifies who holds or waits for a lock at the master: either a
// whole local SE (node-level, aggregated) or a single core (flat/central
// topologies and ST-overflow redirects).
type holderRef struct {
	node  *node // non-nil for node-level references
	core  int
	done  func(sim.Time)
	relay *node // local SE that redirected this core's request, if any
}

// condWaiter is a core parked on a condition variable.
type condWaiter struct {
	core  int
	lock  uint64
	done  func(sim.Time)
	relay *node
}

// masterState is the global coordination state of one synchronization
// variable, held by its Master node. Semantic state always lives here (in
// the simulator's host memory); whether the hardware services it from the
// ST, from a syncronVar in DRAM, or from a software fallback determines
// latency, not correctness.
type masterState struct {
	addr uint64

	refHeld  bool // master node holds an ST entry for this variable
	fallback bool // MiSAR-style software fallback active (Figure 23)

	overflowSEs map[*node]bool // local SEs redirected into overflow mode

	// lock
	lockHeld bool
	queue    []holderRef

	// barrier
	barArrived int
	barNodes   []*node
	barCores   []holderRef

	// semaphore
	semInit  bool
	semCount int
	semQ     []holderRef

	// condition variable
	condQ []condWaiter

	// rmw extension
	rmwValue uint64

	next *masterState // freelist link (see pool.go)
}

func (ms *masterState) idle() bool {
	return !ms.lockHeld && len(ms.queue) == 0 &&
		ms.barArrived == 0 && len(ms.barCores) == 0 && len(ms.barNodes) == 0 &&
		len(ms.semQ) == 0 && len(ms.condQ) == 0
}

// localState is a local SE's per-variable coordination state (TopoHier).
type localState struct {
	addr uint64

	// lock
	waiters      []pend
	owning       bool // this SE currently holds the (global) lock
	holderActive bool // a local core is inside the critical section
	requested    bool // a global acquire has been sent to the master
	grants       int  // consecutive local grants (fairness, §4.4.2)

	// barriers
	barWaiters []pend

	next *localState // freelist link (see pool.go)
}

func (ls *localState) idle() bool {
	return len(ls.waiters) == 0 && !ls.owning && !ls.requested && len(ls.barWaiters) == 0
}

// master returns (creating if needed) the global state for addr. Freed
// states are recycled through a pool so steady-state episodes reuse their
// slices' and map's capacity instead of reallocating per episode.
func (c *Coordinator) master(addr uint64) *masterState {
	ms, ok := c.vars[addr]
	if !ok {
		if ms = c.freeMasters; ms != nil {
			c.freeMasters = ms.next
			ms.next = nil
			ms.addr = addr
		} else {
			ms = &masterState{addr: addr, overflowSEs: make(map[*node]bool)}
		}
		c.vars[addr] = ms
	}
	return ms
}

// masterHold ensures the master node tracks addr: in its ST if possible,
// otherwise via memory (integrated overflow) or by triggering the software
// fallback, per the configured policy.
func (c *Coordinator) masterHold(t sim.Time, ms *masterState) {
	if ms.refHeld || ms.fallback {
		return
	}
	n := c.masterNode(ms.addr)
	if n.acquireRef(t, ms.addr) {
		ms.refHeld = true
		return
	}
	switch c.opt.Overflow {
	case OverflowIntegrated:
		n.memEnter(ms.addr)
	default:
		c.enterFallback(t, ms)
	}
}

// masterFree releases the master-side tracking for addr once the variable is
// idle: the ST entry, or the memory-service mode (sending
// decrease_indexing_counter messages to overflowed SEs), or the fallback.
func (c *Coordinator) masterFree(t sim.Time, ms *masterState) {
	if !ms.idle() {
		return
	}
	n := c.masterNode(ms.addr)
	if ms.refHeld {
		n.releaseRef(t, ms.addr)
		ms.refHeld = false
	}
	if n.memVars != nil && n.memVars[ms.addr] {
		n.memExit(ms.addr)
	}
	for se := range ms.overflowSEs {
		// decrease_indexing_counter message to the overflowed SE.
		o := c.op(opMemExit)
		o.nd, o.addr = se, ms.addr
		c.nodeToNode(t, n, se, ms.addr, o.fn)
		delete(ms.overflowSEs, se)
	}
	if ms.fallback {
		c.exitFallback(t, ms)
	}
	delete(c.vars, ms.addr)
	// Recycle: idle() plus the resets above leave every semantic field at
	// its zero value except the sem/rmw scalars, which a fresh state would
	// also start from zero (they are discarded on free today too).
	ms.addr = 0
	ms.semInit = false
	ms.semCount = 0
	ms.rmwValue = 0
	ms.next = c.freeMasters
	c.freeMasters = ms
}

// localOf returns (creating if needed) node n's local state for addr,
// reserving an ST entry. ok is false when the SE has overflowed for addr and
// the request must be redirected to the master.
func (n *node) localOf(t sim.Time, addr uint64) (*localState, bool) {
	if ls, ok := n.locals[addr]; ok {
		return ls, true
	}
	if !n.acquireRef(t, addr) {
		return nil, false
	}
	c := n.c
	ls := c.freeLocals
	if ls == nil {
		ls = &localState{}
	} else {
		c.freeLocals = ls.next
		ls.next = nil
	}
	ls.addr = addr
	n.locals[addr] = ls
	return ls, true
}

// localDrop frees node n's local state for addr if it is idle.
func (n *node) localDrop(t sim.Time, addr uint64) {
	ls, ok := n.locals[addr]
	if !ok || !ls.idle() {
		return
	}
	delete(n.locals, addr)
	n.releaseRef(t, addr)
	// Recycle through the pool, keeping the waiter slices' capacity. idle()
	// guarantees both are empty; the scalar flags are reset explicitly.
	c := n.c
	*ls = localState{waiters: ls.waiters[:0], barWaiters: ls.barWaiters[:0], next: c.freeLocals}
	c.freeLocals = ls
}
