package core

import "syncron/internal/sim"

// Barrier protocol (§4.1): two flavors.
//
//   - barrier_wait_within_unit: all participants are in one NDP unit; the
//     local SE coordinates the barrier entirely locally.
//   - barrier_wait_across_units: participants span units. When every client
//     core of the system participates, SynCron uses the two-level scheme
//     (each SE collects its unit's arrivals, then sends one aggregated
//     barrier_wait_global; the master releases SEs with
//     barrier_depart_global). With a subset of cores, local SEs redirect all
//     messages to the master, which coordinates cores individually
//     (one-level communication, as the paper chooses for ISA simplicity).

// barrierWithin handles barrier_wait_within_unit.
func (c *Coordinator) barrierWithin(t sim.Time, core int, addr uint64, n int, done func(sim.Time)) {
	if !c.hierarchical() {
		m := c.masterNode(addr)
		c.coreToNode(t, core, m, addr, func(pt sim.Time) {
			c.masterBarrierCoreArrive(pt, addr, n, holderRef{core: core, done: done})
		})
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		ls, ok := local.localOf(pt, addr)
		if !ok {
			local.memEnter(addr)
			master := c.masterNode(addr)
			c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
				c.masterBarrierCoreArrive(mt, addr, n, holderRef{core: core, done: done, relay: local})
			})
			return
		}
		ls.barWaiters = append(ls.barWaiters, pend{core: core, done: done})
		if len(ls.barWaiters) >= n {
			ws := ls.barWaiters
			ls.barWaiters = nil
			local.localDrop(pt, addr)
			for _, w := range ws {
				c.nodeToCore(pt, local, w.core, w.done)
			}
		}
	})
}

// barrierAcross handles barrier_wait_across_units with n total participants.
func (c *Coordinator) barrierAcross(t sim.Time, core int, addr uint64, n int, done func(sim.Time)) {
	if !c.hierarchical() {
		m := c.masterNode(addr)
		c.coreToNode(t, core, m, addr, func(pt sim.Time) {
			c.masterBarrierCoreArrive(pt, addr, n, holderRef{core: core, done: done})
		})
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	twoLevel := n == c.m.NumCores()
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		master := c.masterNode(addr)
		if !twoLevel {
			// One-level: redirect to the master (costed as a relay hop).
			c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
				c.masterBarrierCoreArrive(mt, addr, n, holderRef{core: core, done: done, relay: local})
			})
			return
		}
		ls, ok := local.localOf(pt, addr)
		if !ok {
			local.memEnter(addr)
			c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
				c.masterBarrierCoreArrive(mt, addr, n, holderRef{core: core, done: done, relay: local})
			})
			return
		}
		ls.barWaiters = append(ls.barWaiters, pend{core: core, done: done})
		if len(ls.barWaiters) >= c.m.Cfg.CoresPerUnit {
			// Unit complete: one aggregated barrier_wait_global.
			c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
				c.masterBarrierNodeArrive(mt, addr, n, local)
			})
		}
	})
}

// masterBarrierNodeArrive records an aggregated unit arrival.
func (c *Coordinator) masterBarrierNodeArrive(t sim.Time, addr uint64, n int, from *node) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	ms.barNodes = append(ms.barNodes, from)
	ms.barArrived += c.m.Cfg.CoresPerUnit
	c.masterBarrierMaybeDepart(t, ms, addr, n)
}

// masterBarrierCoreArrive records a single core arrival at the master.
func (c *Coordinator) masterBarrierCoreArrive(t sim.Time, addr uint64, n int, ref holderRef) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if ref.relay != nil {
		ms.overflowSEs[ref.relay] = true
		c.masterNode(addr).memEnter(addr)
	}
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	ms.barCores = append(ms.barCores, ref)
	ms.barArrived++
	c.masterBarrierMaybeDepart(t, ms, addr, n)
}

// masterBarrierMaybeDepart releases everyone once n arrivals are in.
func (c *Coordinator) masterBarrierMaybeDepart(t sim.Time, ms *masterState, addr uint64, n int) {
	if ms.barArrived < n {
		return
	}
	nodes := ms.barNodes
	cores := ms.barCores
	ms.barNodes = nil
	ms.barCores = nil
	ms.barArrived = 0
	master := c.masterNode(addr)
	for _, nd := range nodes {
		nd := nd
		// barrier_depart_global, then local departure grants.
		c.nodeToNode(t, master, nd, addr, func(lt sim.Time) {
			ls := nd.locals[addr]
			if ls == nil {
				return
			}
			ws := ls.barWaiters
			ls.barWaiters = nil
			nd.localDrop(lt, addr)
			for _, w := range ws {
				c.nodeToCore(lt, nd, w.core, w.done)
			}
		})
	}
	for _, ref := range cores {
		if ref.relay != nil && ref.relay != master {
			ref := ref
			c.nodeToNode(t, master, ref.relay, addr, func(rt sim.Time) {
				c.nodeToCore(rt, ref.relay, ref.core, ref.done)
			})
		} else {
			c.nodeToCore(t, master, ref.core, ref.done)
		}
	}
	c.masterFree(t, ms)
}
