package core

import "syncron/internal/sim"

// Barrier protocol (§4.1): two flavors.
//
//   - barrier_wait_within_unit: all participants are in one NDP unit; the
//     local SE coordinates the barrier entirely locally.
//   - barrier_wait_across_units: participants span units. When every client
//     core of the system participates, SynCron uses the two-level scheme
//     (each SE collects its unit's arrivals, then sends one aggregated
//     barrier_wait_global; the master releases SEs with
//     barrier_depart_global). With a subset of cores, local SEs redirect all
//     messages to the master, which coordinates cores individually
//     (one-level communication, as the paper chooses for ISA simplicity).

// barrierWithin handles barrier_wait_within_unit.
func (c *Coordinator) barrierWithin(t sim.Time, core int, addr uint64, n int, done func(sim.Time)) {
	if !c.hierarchical() {
		o := c.op(opBarrierCoreArrive)
		o.addr, o.n, o.core, o.done = addr, n, core, done
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opBarrierWithinLocal)
	o.nd, o.core, o.addr, o.n, o.done = local, core, addr, n, done
	c.coreToNode(t, core, local, addr, o.fn)
}

// barrierWithinLocal runs the local-SE side of barrier_wait_within_unit
// after message processing at node local.
func (c *Coordinator) barrierWithinLocal(pt sim.Time, local *node, core int, addr uint64, n int, done func(sim.Time)) {
	ls, ok := local.localOf(pt, addr)
	if !ok {
		local.memEnter(addr)
		o := c.op(opBarrierCoreArrive)
		o.addr, o.n, o.core, o.done, o.nd = addr, n, core, done, local
		c.nodeToNode(pt, local, c.masterNode(addr), addr, o.fn)
		return
	}
	ls.barWaiters = append(ls.barWaiters, pend{core: core, done: done})
	if len(ls.barWaiters) >= n {
		ws := ls.barWaiters
		for _, w := range ws {
			c.nodeToCore(pt, local, w.core, w.done)
		}
		for i := range ws {
			ws[i] = pend{}
		}
		ls.barWaiters = ws[:0]
		local.localDrop(pt, addr)
	}
}

// barrierAcross handles barrier_wait_across_units with n total participants.
func (c *Coordinator) barrierAcross(t sim.Time, core int, addr uint64, n int, done func(sim.Time)) {
	if !c.hierarchical() {
		o := c.op(opBarrierCoreArrive)
		o.addr, o.n, o.core, o.done = addr, n, core, done
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opBarrierAcrossLocal)
	o.nd, o.core, o.addr, o.n, o.done = local, core, addr, n, done
	o.flag = n == c.m.NumCores() // two-level scheme active
	c.coreToNode(t, core, local, addr, o.fn)
}

// barrierAcrossLocal runs the local-SE side of barrier_wait_across_units
// after message processing at node local.
func (c *Coordinator) barrierAcrossLocal(pt sim.Time, local *node, core int, addr uint64, n int, done func(sim.Time), twoLevel bool) {
	master := c.masterNode(addr)
	if !twoLevel {
		// One-level: redirect to the master (costed as a relay hop).
		o := c.op(opBarrierCoreArrive)
		o.addr, o.n, o.core, o.done, o.nd = addr, n, core, done, local
		c.nodeToNode(pt, local, master, addr, o.fn)
		return
	}
	ls, ok := local.localOf(pt, addr)
	if !ok {
		local.memEnter(addr)
		o := c.op(opBarrierCoreArrive)
		o.addr, o.n, o.core, o.done, o.nd = addr, n, core, done, local
		c.nodeToNode(pt, local, master, addr, o.fn)
		return
	}
	ls.barWaiters = append(ls.barWaiters, pend{core: core, done: done})
	if len(ls.barWaiters) >= c.m.Cfg.CoresPerUnit {
		// Unit complete: one aggregated barrier_wait_global.
		o := c.op(opBarrierNodeArrive)
		o.addr, o.n, o.nd = addr, n, local
		c.nodeToNode(pt, local, master, addr, o.fn)
	}
}

// masterBarrierNodeArrive records an aggregated unit arrival.
func (c *Coordinator) masterBarrierNodeArrive(t sim.Time, addr uint64, n int, from *node) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	ms.barNodes = append(ms.barNodes, from)
	ms.barArrived += c.m.Cfg.CoresPerUnit
	c.masterBarrierMaybeDepart(t, ms, addr, n)
}

// masterBarrierCoreArrive records a single core arrival at the master.
func (c *Coordinator) masterBarrierCoreArrive(t sim.Time, addr uint64, n int, ref holderRef) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if ref.relay != nil {
		ms.overflowSEs[ref.relay] = true
		c.masterNode(addr).memEnter(addr)
	}
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	ms.barCores = append(ms.barCores, ref)
	ms.barArrived++
	c.masterBarrierMaybeDepart(t, ms, addr, n)
}

// masterBarrierMaybeDepart releases everyone once n arrivals are in.
func (c *Coordinator) masterBarrierMaybeDepart(t sim.Time, ms *masterState, addr uint64, n int) {
	if ms.barArrived < n {
		return
	}
	nodes := ms.barNodes
	cores := ms.barCores
	ms.barArrived = 0
	master := c.masterNode(addr)
	for _, nd := range nodes {
		// barrier_depart_global, then local departure grants.
		o := c.op(opBarrierDepartLocal)
		o.nd, o.addr = nd, addr
		c.nodeToNode(t, master, nd, addr, o.fn)
	}
	for _, ref := range cores {
		if ref.relay != nil && ref.relay != master {
			o := c.op(opRelayGrant)
			o.nd, o.core, o.done = ref.relay, ref.core, ref.done
			c.nodeToNode(t, master, ref.relay, addr, o.fn)
		} else {
			c.nodeToCore(t, master, ref.core, ref.done)
		}
	}
	// Truncate in place (after the loops) so the pooled state keeps its
	// backing arrays; clear the holderRefs to drop their done references.
	for i := range nodes {
		nodes[i] = nil
	}
	for i := range cores {
		cores[i] = holderRef{}
	}
	ms.barNodes = nodes[:0]
	ms.barCores = cores[:0]
	c.masterFree(t, ms)
}

// barrierDepartLocal runs at a local SE when barrier_depart_global arrives:
// it grants all local barrier waiters and frees the local state.
func (c *Coordinator) barrierDepartLocal(lt sim.Time, nd *node, addr uint64) {
	ls := nd.locals[addr]
	if ls == nil {
		return
	}
	ws := ls.barWaiters
	for _, w := range ws {
		c.nodeToCore(lt, nd, w.core, w.done)
	}
	for i := range ws {
		ws[i] = pend{}
	}
	ls.barWaiters = ws[:0]
	nd.localDrop(lt, addr)
}
