package core_test

import (
	"fmt"
	"testing"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/core"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// backendsUnderTest returns fresh instances of every message-passing scheme.
func backendsUnderTest() map[string]func() arch.Backend {
	return map[string]func() arch.Backend{
		"syncron":      func() arch.Backend { return core.NewSynCron() },
		"syncron-flat": func() arch.Backend { return core.NewSynCronFlat() },
		"central":      func() arch.Backend { return baselines.NewCentral() },
		"hier":         func() arch.Backend { return baselines.NewHier() },
		"ideal":        func() arch.Backend { return baselines.NewIdeal() },
	}
}

func newTestMachine(t *testing.T, b arch.Backend) *arch.Machine {
	t.Helper()
	cfg := arch.Default()
	cfg.Units = 2
	cfg.CoresPerUnit = 4
	m := arch.NewMachine(cfg)
	m.Backend = b
	return m
}

func TestLockMutualExclusionAllSchemes(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			lock := m.Alloc(1, 8)
			counter := 0
			const iters = 25
			r.AddN(m.NumCores(), func(i int) program.Program {
				return func(ctx *program.Ctx) {
					for k := 0; k < iters; k++ {
						ctx.Lock(lock)
						counter++ // critical section, guarded by the checker
						ctx.Compute(20)
						ctx.Unlock(lock)
						ctx.Compute(30)
					}
				}
			})
			end := r.Run()
			if counter != m.NumCores()*iters {
				t.Fatalf("%s: counter = %d, want %d", name, counter, m.NumCores()*iters)
			}
			if end <= 0 {
				t.Fatalf("%s: non-positive makespan %v", name, end)
			}
		})
	}
}

func TestBarrierAcrossUnitsAllSchemes(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			bar := m.Alloc(0, 8)
			n := m.NumCores()
			const phases = 10
			phaseCount := make([]int, phases)
			r.AddN(n, func(i int) program.Program {
				return func(ctx *program.Ctx) {
					for p := 0; p < phases; p++ {
						// Every core must see all previous-phase arrivals
						// complete before any next-phase work starts.
						phaseCount[p]++
						ctx.BarrierAcrossUnits(bar, n)
						if phaseCount[p] != n {
							t.Errorf("%s: core %d passed barrier phase %d with %d/%d arrivals",
								name, ctx.ID, p, phaseCount[p], n)
						}
						ctx.Compute(int64(10 * (ctx.ID + 1)))
					}
				}
			})
			r.Run()
		})
	}
}

func TestBarrierSubsetAcrossUnits(t *testing.T) {
	// A subset barrier (fewer participants than all cores) exercises the
	// one-level redirect path in hierarchical schemes.
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			bar := m.Alloc(1, 8)
			n := 5 // not a multiple of anything relevant
			arrived := 0
			r.AddN(n, func(i int) program.Program {
				return func(ctx *program.Ctx) {
					ctx.Compute(int64(5 * (i + 1)))
					arrived++
					ctx.BarrierAcrossUnits(bar, n)
					if arrived != n {
						t.Errorf("%s: passed subset barrier with %d/%d", name, arrived, n)
					}
				}
			})
			r.Run()
		})
	}
}

func TestBarrierWithinUnit(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			bar := m.Alloc(0, 8)
			n := m.Cfg.CoresPerUnit
			arrived := 0
			r.AddN(n, func(i int) program.Program { // cores 0..3 are all in unit 0
				return func(ctx *program.Ctx) {
					ctx.Compute(int64(7 * (i + 1)))
					arrived++
					ctx.BarrierWithinUnit(bar, n)
					if arrived != n {
						t.Errorf("%s: passed within-unit barrier with %d/%d", name, arrived, n)
					}
				}
			})
			r.Run()
		})
	}
}

func TestSemaphoreCounting(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			sem := m.Alloc(0, 8)
			const slots = 3
			inside := 0
			maxInside := 0
			r.AddN(m.NumCores(), func(i int) program.Program {
				return func(ctx *program.Ctx) {
					for k := 0; k < 10; k++ {
						ctx.SemWait(sem, slots)
						inside++
						if inside > maxInside {
							maxInside = inside
						}
						ctx.Compute(50)
						inside--
						ctx.SemPost(sem)
					}
				}
			})
			r.Run()
			if maxInside > slots {
				t.Fatalf("%s: semaphore admitted %d concurrent holders, max %d", name, maxInside, slots)
			}
			if maxInside == 0 {
				t.Fatalf("%s: semaphore never admitted anyone", name)
			}
		})
	}
}

func TestConditionVariableSignal(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			cond := m.Alloc(0, 8)
			lock := m.Alloc(0, 8)
			// Mesa-style producer/consumer over an items counter: with one
			// produced item (and one signal) per consumer, no consumer can
			// block forever.
			items := 0
			consumed := 0
			producers, consumers := 4, 4
			r.AddN(consumers, func(i int) program.Program {
				return func(ctx *program.Ctx) {
					ctx.Lock(lock)
					for items == 0 {
						ctx.CondWait(cond, lock)
					}
					items--
					consumed++
					ctx.Unlock(lock)
				}
			})
			r.AddN(producers, func(i int) program.Program {
				return func(ctx *program.Ctx) {
					ctx.Compute(int64(100 * (i + 1)))
					ctx.Lock(lock)
					items++
					ctx.CondSignal(cond, lock)
					ctx.Unlock(lock)
				}
			})
			r.Run()
			if consumed != consumers {
				t.Fatalf("%s: %d items consumed, want %d", name, consumed, consumers)
			}
		})
	}
}

func TestLockFairnessThreshold(t *testing.T) {
	b := core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true, FairnessThreshold: 2})
	cfg := arch.Default()
	cfg.Units = 2
	cfg.CoresPerUnit = 4
	m := arch.NewMachine(cfg)
	m.Backend = b
	r := program.NewRunner(m)
	lock := m.Alloc(0, 8)
	total := 0
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < 20; k++ {
				ctx.Lock(lock)
				total++
				ctx.Unlock(lock)
			}
		}
	})
	r.Run()
	if total != m.NumCores()*20 {
		t.Fatalf("fairness run lost operations: %d", total)
	}
}

func TestSTOverflowIntegrated(t *testing.T) {
	// A tiny ST forces overflow; correctness must be preserved and the
	// overflow fraction must be visible in stats.
	b := core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true, STEntries: 2})
	cfg := arch.Default()
	cfg.Units = 2
	cfg.CoresPerUnit = 4
	m := arch.NewMachine(cfg)
	m.Backend = b
	r := program.NewRunner(m)
	// Many concurrently-held locks: each core holds two locks at once
	// (hand-over-hand), exceeding 2 ST entries per SE.
	locks := make([]uint64, 16)
	for i := range locks {
		locks[i] = m.Alloc(i%2, 8)
	}
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < 8; k++ {
				a := locks[(i+k)%len(locks)]
				bAddr := locks[(i+k+3)%len(locks)]
				if a == bAddr {
					continue
				}
				// Order locks by address to avoid deadlock.
				lo, hi := a, bAddr
				if lo > hi {
					lo, hi = hi, lo
				}
				ctx.Lock(lo)
				ctx.Lock(hi)
				ctx.Compute(10)
				ctx.Unlock(hi)
				ctx.Unlock(lo)
			}
		}
	})
	r.Run()
	if b.OverflowedFraction() == 0 {
		t.Fatal("expected some overflowed requests with a 2-entry ST")
	}
	max, mean := b.STOccupancy()
	if max <= 0 || max > 1 || mean < 0 || mean > 1 {
		t.Fatalf("implausible ST occupancy: max=%f mean=%f", max, mean)
	}
}

func TestOverflowFallbackPolicies(t *testing.T) {
	for _, pol := range []core.OverflowPolicy{core.OverflowCentral, core.OverflowDistrib} {
		pol := pol
		t.Run(fmt.Sprint(pol), func(t *testing.T) {
			b := core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true,
				STEntries: 1, Overflow: pol, Name: "syncron-ovrfl"})
			cfg := arch.Default()
			cfg.Units = 2
			cfg.CoresPerUnit = 4
			m := arch.NewMachine(cfg)
			m.Backend = b
			r := program.NewRunner(m)
			locks := []uint64{m.Alloc(0, 8), m.Alloc(1, 8), m.Alloc(0, 8), m.Alloc(1, 8)}
			r.AddN(m.NumCores(), func(i int) program.Program {
				return func(ctx *program.Ctx) {
					for k := 0; k < 10; k++ {
						a, bAddr := locks[k%4], locks[(k+1)%4]
						lo, hi := a, bAddr
						if lo > hi {
							lo, hi = hi, lo
						}
						ctx.Lock(lo)
						ctx.Lock(hi)
						ctx.Compute(5)
						ctx.Unlock(hi)
						ctx.Unlock(lo)
					}
				}
			})
			r.Run()
			if b.AbortsSent() == 0 {
				t.Fatal("expected fallback aborts with a 1-entry ST")
			}
		})
	}
}

func TestFetchAddRMW(t *testing.T) {
	b := core.NewSynCron()
	cfg := arch.Default()
	cfg.Units = 2
	cfg.CoresPerUnit = 4
	m := arch.NewMachine(cfg)
	m.Backend = b
	r := program.NewRunner(m)
	v := m.Alloc(1, 8)
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < 10; k++ {
				ctx.FetchAdd(v, 1)
			}
		}
	})
	r.Run()
	if got := b.RMWValue(v); got != uint64(m.NumCores()*10) {
		t.Fatalf("fetch-add total = %d, want %d", got, m.NumCores()*10)
	}
}

func TestHierBeatsCentralUnderContention(t *testing.T) {
	// The paper's core claim at small scale: with all cores pounding one
	// lock, hierarchical schemes beat Central, and Ideal beats everything.
	times := map[string]sim.Time{}
	for name, mk := range backendsUnderTest() {
		m := newTestMachine(t, mk())
		r := program.NewRunner(m)
		lock := m.Alloc(0, 8)
		r.AddN(m.NumCores(), func(i int) program.Program {
			return func(ctx *program.Ctx) {
				for k := 0; k < 40; k++ {
					ctx.Lock(lock)
					ctx.Compute(10)
					ctx.Unlock(lock)
					ctx.Compute(50)
				}
			}
		})
		times[name] = r.Run()
	}
	if times["ideal"] >= times["syncron"] {
		t.Errorf("ideal (%v) should beat syncron (%v)", times["ideal"], times["syncron"])
	}
	if times["syncron"] >= times["central"] {
		t.Errorf("syncron (%v) should beat central (%v)", times["syncron"], times["central"])
	}
	if times["hier"] >= times["central"] {
		t.Errorf("hier (%v) should beat central (%v)", times["hier"], times["central"])
	}
}
