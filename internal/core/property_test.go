package core_test

import (
	"testing"
	"testing/quick"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/core"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// TestSchemesFunctionallyEquivalent is the central property of the whole
// reproduction: for a random mix of lock-protected counter increments, every
// synchronization scheme must produce exactly the same functional result —
// schemes may only differ in time, traffic, and energy.
func TestSchemesFunctionallyEquivalent(t *testing.T) {
	type workload struct {
		Cores   uint8
		Locks   uint8
		OpsEach uint8
		Compute uint16
	}
	f := func(w workload) bool {
		cores := int(w.Cores%6) + 2
		nlocks := int(w.Locks%4) + 1
		ops := int(w.OpsEach%12) + 3
		results := map[string]int{}
		for _, mk := range []func() arch.Backend{
			func() arch.Backend { return core.NewSynCron() },
			func() arch.Backend { return core.NewSynCronFlat() },
			func() arch.Backend { return baselines.NewCentral() },
			func() arch.Backend { return baselines.NewHier() },
			func() arch.Backend { return baselines.NewIdeal() },
		} {
			b := mk()
			cfg := arch.Default()
			cfg.Units = 2
			cfg.CoresPerUnit = (cores + 1) / 2
			m := arch.NewMachine(cfg)
			m.Backend = b
			r := program.NewRunner(m)
			locks := make([]uint64, nlocks)
			for i := range locks {
				locks[i] = m.Alloc(i%2, 64)
			}
			counters := make([]int, nlocks)
			r.AddN(cores, func(i int) program.Program {
				return func(ctx *program.Ctx) {
					for k := 0; k < ops; k++ {
						l := (i + k) % nlocks
						ctx.Lock(locks[l])
						counters[l]++
						ctx.Compute(int64(w.Compute % 500))
						ctx.Unlock(locks[l])
					}
				}
			})
			r.Run()
			total := 0
			for _, c := range counters {
				total += c
			}
			results[b.Name()] = total
		}
		want := cores * ops
		for name, got := range results {
			if got != want {
				t.Logf("%s produced %d, want %d", name, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicMakespans: identical configuration => identical timing.
func TestDeterministicMakespans(t *testing.T) {
	run := func() sim.Time {
		m := newTestMachine(t, core.NewSynCron())
		r := program.NewRunner(m)
		lock := m.Alloc(0, 64)
		bar := m.Alloc(1, 64)
		r.AddN(m.NumCores(), func(i int) program.Program {
			return func(ctx *program.Ctx) {
				for k := 0; k < 15; k++ {
					ctx.Lock(lock)
					ctx.Compute(20)
					ctx.Unlock(lock)
					ctx.BarrierAcrossUnits(bar, m.NumCores())
				}
			}
		})
		return r.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// TestHierarchyReducesInterUnitTraffic: under single-lock contention,
// SynCron's SE-level aggregation must cross units less often than the flat
// variant (the Figure 21b mechanism).
func TestHierarchyReducesInterUnitTraffic(t *testing.T) {
	traffic := func(mk func() arch.Backend) uint64 {
		cfg := arch.Default()
		cfg.Units = 4
		cfg.CoresPerUnit = 8
		m := arch.NewMachine(cfg)
		m.Backend = mk()
		r := program.NewRunner(m)
		lock := m.Alloc(0, 64)
		r.AddN(m.NumCores(), func(i int) program.Program {
			return func(ctx *program.Ctx) {
				for k := 0; k < 30; k++ {
					ctx.Lock(lock)
					ctx.Compute(5)
					ctx.Unlock(lock)
				}
			}
		})
		r.Run()
		_, inter := m.DataMovement()
		return inter
	}
	hier := traffic(func() arch.Backend { return core.NewSynCron() })
	flat := traffic(func() arch.Backend { return core.NewSynCronFlat() })
	if hier >= flat {
		t.Fatalf("hierarchical inter-unit traffic %d not below flat %d", hier, flat)
	}
}

// TestBarrierReuse: the same barrier variable must be reusable round after
// round (the graph apps' pattern) without state leakage.
func TestBarrierReuse(t *testing.T) {
	for name, mk := range backendsUnderTest() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, mk())
			r := program.NewRunner(m)
			bar := m.Alloc(0, 64)
			n := m.NumCores()
			const rounds = 25
			phase := 0
			r.AddN(n, func(i int) program.Program {
				return func(ctx *program.Ctx) {
					for k := 0; k < rounds; k++ {
						if phase != k {
							t.Errorf("%s: core %d entered round %d during phase %d", name, ctx.ID, k, phase)
						}
						ctx.Compute(int64(1 + (i*7+k*13)%40))
						ctx.BarrierAcrossUnits(bar, n)
						if ctx.ID == 0 {
							phase = k + 1
						}
						ctx.BarrierAcrossUnits(bar, n)
					}
				}
			})
			r.Run()
		})
	}
}

// TestSTEntryLifecycle: after a run with transient locks, all ST entries
// must have been released (occupancy returns to zero).
func TestSTEntryLifecycle(t *testing.T) {
	b := core.NewSynCron()
	m := newTestMachine(t, b)
	r := program.NewRunner(m)
	locks := make([]uint64, 8)
	for i := range locks {
		locks[i] = m.Alloc(i%2, 64)
	}
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < 10; k++ {
				l := locks[(i+k)%len(locks)]
				ctx.Lock(l)
				ctx.Compute(10)
				ctx.Unlock(l)
			}
		}
	})
	r.Run()
	max, _ := b.STOccupancy()
	if max <= 0 {
		t.Fatal("locks never occupied the ST")
	}
	if b.STEntriesLive() != 0 {
		t.Fatalf("%d ST entries leaked after the run", b.STEntriesLive())
	}
}

// TestOverflowAliasing: two variables aliasing to the same indexing counter
// must still synchronize correctly (aliasing affects performance only,
// §4.2.3).
func TestOverflowAliasing(t *testing.T) {
	b := core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true,
		STEntries: 1, IndexingCounters: 2})
	m := newTestMachine(t, b)
	r := program.NewRunner(m)
	// Addresses 2 counters apart alias.
	l1 := m.Alloc(0, 64)
	l2 := m.Alloc(0, 64)
	l3 := m.Alloc(0, 64)
	count := 0
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < 10; k++ {
				a, bb := l1, l2
				switch k % 3 {
				case 1:
					a, bb = l2, l3
				case 2:
					a, bb = l1, l3
				}
				ctx.Lock(a)
				ctx.Lock(bb)
				count++
				ctx.Unlock(bb)
				ctx.Unlock(a)
			}
		}
	})
	r.Run()
	if count != m.NumCores()*10 {
		t.Fatalf("aliased overflow lost operations: %d", count)
	}
	if b.OverflowedFraction() == 0 {
		t.Fatal("expected overflow with 1-entry ST")
	}
}
