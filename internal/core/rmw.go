package core

import "syncron/internal/sim"

// fetchAdd implements the §4.4.1 enhancement: a simple atomic
// read-modify-write executed inside the Master SE's lightweight ALU. The
// paper leaves this to future work; we implement it behind the same routing
// machinery so it can be exercised and benchmarked.
func (c *Coordinator) fetchAdd(t sim.Time, core int, addr uint64, delta uint64, done func(sim.Time)) {
	if !c.hierarchical() {
		o := c.op(opFetchAddApply)
		o.core, o.addr, o.addr2, o.done = core, addr, delta, done
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opForwardMaster)
	o.kind2 = opFetchAddApply
	o.nd, o.core, o.addr, o.addr2, o.done = local, core, addr, delta, done
	c.coreToNode(t, core, local, addr, o.fn)
}

// fetchAddApply executes the RMW in the Master SE and sends the response,
// through the waiter's relaying SE when the request was relayed.
func (c *Coordinator) fetchAddApply(mt sim.Time, core int, addr, delta uint64, done func(sim.Time), relay *node) {
	master := c.masterNode(addr)
	ms := c.master(addr)
	c.masterHold(mt, ms)
	ms.rmwValue += delta
	if relay != nil && relay != master {
		o := c.op(opRelayGrant)
		o.nd, o.core, o.done = relay, core, done
		c.nodeToNode(mt, master, relay, addr, o.fn)
		return
	}
	c.nodeToCore(mt, master, core, done)
}

// RMWValue returns the accumulated fetch-add value for addr (testing hook).
func (c *Coordinator) RMWValue(addr uint64) uint64 {
	if ms, ok := c.vars[addr]; ok {
		return ms.rmwValue
	}
	return 0
}
