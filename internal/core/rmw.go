package core

import "syncron/internal/sim"

// fetchAdd implements the §4.4.1 enhancement: a simple atomic
// read-modify-write executed inside the Master SE's lightweight ALU. The
// paper leaves this to future work; we implement it behind the same routing
// machinery so it can be exercised and benchmarked.
func (c *Coordinator) fetchAdd(t sim.Time, core int, addr uint64, delta uint64, done func(sim.Time)) {
	master := c.masterNode(addr)
	apply := func(mt sim.Time, relay *node) {
		ms := c.master(addr)
		c.masterHold(mt, ms)
		ms.rmwValue += delta
		if relay != nil && relay != master {
			c.nodeToNode(mt, master, relay, addr, func(rt sim.Time) {
				c.nodeToCore(rt, relay, core, done)
			})
			return
		}
		c.nodeToCore(mt, master, core, done)
	}
	if !c.hierarchical() {
		c.coreToNode(t, core, master, addr, func(pt sim.Time) { apply(pt, nil) })
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		c.nodeToNode(pt, local, master, addr, func(mt sim.Time) { apply(mt, local) })
	})
}

// RMWValue returns the accumulated fetch-add value for addr (testing hook).
func (c *Coordinator) RMWValue(addr uint64) uint64 {
	if ms, ok := c.vars[addr]; ok {
		return ms.rmwValue
	}
	return 0
}
