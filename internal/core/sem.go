package core

import "syncron/internal/sim"

// Semaphore protocol: the resource count lives in the master's ST entry
// (TableInfo: available #resources, Figure 7). In hierarchical mode local
// SEs relay sem_wait_local / sem_post_local as per-waiter global messages,
// and grants are delivered back through the waiter's local SE
// (sem_grant_global -> sem_grant_local).

// semWait handles sem_wait; initial is the semaphore's initial resource
// count, communicated on first touch (MessageInfo).
func (c *Coordinator) semWait(t sim.Time, core int, addr uint64, initial int, done func(sim.Time)) {
	if !c.hierarchical() {
		m := c.masterNode(addr)
		c.coreToNode(t, core, m, addr, func(pt sim.Time) {
			c.masterSemWait(pt, addr, initial, holderRef{core: core, done: done})
		})
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	master := c.masterNode(addr)
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
			c.masterSemWait(mt, addr, initial, holderRef{core: core, done: done, relay: local})
		})
	})
}

// semPost handles sem_post.
func (c *Coordinator) semPost(t sim.Time, core int, addr uint64) {
	if !c.hierarchical() {
		m := c.masterNode(addr)
		c.coreToNode(t, core, m, addr, func(pt sim.Time) {
			c.masterSemPost(pt, addr)
		})
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	master := c.masterNode(addr)
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
			c.masterSemPost(mt, addr)
		})
	})
}

func (c *Coordinator) masterSemWait(t sim.Time, addr uint64, initial int, ref holderRef) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if !ms.semInit {
		ms.semInit = true
		ms.semCount = initial
	}
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	if ms.semCount > 0 {
		ms.semCount--
		c.semGrant(t, addr, ref)
		return
	}
	ms.semQ = append(ms.semQ, ref)
}

func (c *Coordinator) masterSemPost(t sim.Time, addr uint64) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if !ms.semInit {
		ms.semInit = true
	}
	if len(ms.semQ) > 0 {
		ref := ms.semQ[0]
		ms.semQ = ms.semQ[1:]
		c.semGrant(t, addr, ref)
		return
	}
	ms.semCount++
}

// semGrant delivers a sem_grant to the waiting core.
func (c *Coordinator) semGrant(t sim.Time, addr uint64, ref holderRef) {
	master := c.masterNode(addr)
	if ref.relay != nil && ref.relay != master {
		c.nodeToNode(t, master, ref.relay, addr, func(rt sim.Time) {
			c.nodeToCore(rt, ref.relay, ref.core, ref.done)
		})
		return
	}
	c.nodeToCore(t, master, ref.core, ref.done)
}
