package core

import "syncron/internal/sim"

// Semaphore protocol: the resource count lives in the master's ST entry
// (TableInfo: available #resources, Figure 7). In hierarchical mode local
// SEs relay sem_wait_local / sem_post_local as per-waiter global messages,
// and grants are delivered back through the waiter's local SE
// (sem_grant_global -> sem_grant_local).

// semWait handles sem_wait; initial is the semaphore's initial resource
// count, communicated on first touch (MessageInfo).
func (c *Coordinator) semWait(t sim.Time, core int, addr uint64, initial int, done func(sim.Time)) {
	if !c.hierarchical() {
		o := c.op(opMasterSemWait)
		o.addr, o.n, o.core, o.done = addr, initial, core, done
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opForwardMaster)
	o.kind2 = opMasterSemWait
	o.nd, o.addr, o.n, o.core, o.done = local, addr, initial, core, done
	c.coreToNode(t, core, local, addr, o.fn)
}

// semPost handles sem_post.
func (c *Coordinator) semPost(t sim.Time, core int, addr uint64) {
	if !c.hierarchical() {
		o := c.op(opMasterSemPost)
		o.addr = addr
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opForwardMaster)
	o.kind2 = opMasterSemPost
	o.nd, o.addr = local, addr
	c.coreToNode(t, core, local, addr, o.fn)
}

func (c *Coordinator) masterSemWait(t sim.Time, addr uint64, initial int, ref holderRef) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if !ms.semInit {
		ms.semInit = true
		ms.semCount = initial
	}
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	if ms.semCount > 0 {
		ms.semCount--
		c.semGrant(t, addr, ref)
		return
	}
	ms.semQ = append(ms.semQ, ref)
}

func (c *Coordinator) masterSemPost(t sim.Time, addr uint64) {
	ms := c.master(addr)
	c.masterHold(t, ms)
	if !ms.semInit {
		ms.semInit = true
	}
	if len(ms.semQ) > 0 {
		ref := ms.semQ[0]
		k := copy(ms.semQ, ms.semQ[1:])
		ms.semQ[k] = holderRef{}
		ms.semQ = ms.semQ[:k]
		c.semGrant(t, addr, ref)
		return
	}
	ms.semCount++
}

// semGrant delivers a sem_grant to the waiting core.
func (c *Coordinator) semGrant(t sim.Time, addr uint64, ref holderRef) {
	master := c.masterNode(addr)
	if ref.relay != nil && ref.relay != master {
		o := c.op(opRelayGrant)
		o.nd, o.core, o.done = ref.relay, ref.core, ref.done
		c.nodeToNode(t, master, ref.relay, addr, o.fn)
		return
	}
	c.nodeToCore(t, master, ref.core, ref.done)
}
