// Package core implements SynCron, the paper's contribution: per-NDP-unit
// Synchronization Engines (SEs) with a Synchronization Table (ST) that
// directly buffers synchronization variables, a hierarchical message-passing
// protocol between local SEs and the Master SE of each variable, and a
// hardware-only overflow scheme that falls back to a syncronVar record in
// the Master SE's local memory (paper §3–§4).
//
// The same protocol machinery, parameterized by topology and node model,
// also realizes the paper's comparison points: the flat SynCron variant
// (§6.7.1) and — via internal/baselines — the Central and Hier
// message-passing schemes built from server NDP cores.
package core

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/sim"
)

// Topology selects how requests are routed between cores and coordination
// nodes.
type Topology int

const (
	// TopoHier is SynCron's hierarchical scheme: cores talk to the SE in
	// their own unit; SEs talk to the variable's Master SE.
	TopoHier Topology = iota
	// TopoFlat sends every core request directly to the variable's Master
	// node (the flat variant of §6.7.1).
	TopoFlat
	// TopoCentral sends every request to a single node in unit 0 (the
	// Central baseline, like Tesseract's barrier server).
	TopoCentral
)

func (t Topology) String() string {
	switch t {
	case TopoHier:
		return "hier"
	case TopoFlat:
		return "flat"
	case TopoCentral:
		return "central"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// OverflowPolicy selects what happens when an ST fills up (§6.7.3).
type OverflowPolicy int

const (
	// OverflowIntegrated is SynCron's hardware-only scheme: the Master SE
	// services the variable via a syncronVar in its local memory.
	OverflowIntegrated OverflowPolicy = iota
	// OverflowCentral emulates MiSAR-style aborts to an alternative software
	// solution with one server core for the whole system
	// (SynCron_CentralOvrfl in Figure 23).
	OverflowCentral
	// OverflowDistrib is the alternative with one software server per NDP
	// unit (SynCron_DistribOvrfl in Figure 23).
	OverflowDistrib
)

// Options configures a Coordinator.
type Options struct {
	Topology Topology

	// Nodes are SEs when true, server NDP cores when false.
	HardwareSE bool

	// STEntries is the Synchronization Table capacity per SE (default 64).
	// Ignored for server nodes, whose tables live in memory.
	STEntries int

	// IndexingCounters is the overflow-tracking counter count (default 256).
	IndexingCounters int

	// Overflow selects the ST-overflow handling policy.
	Overflow OverflowPolicy

	// FairnessThreshold bounds consecutive local lock grants before the lock
	// is transferred to another waiting unit (§4.4.2). Zero disables it.
	FairnessThreshold int

	// ServerHandlerInstrs is the software message-handler cost, in core
	// instructions, for server nodes (Central/Hier baselines).
	ServerHandlerInstrs int64

	// ServerVarAccesses is how many loads/stores to the synchronization
	// variable's state a server performs per message (through its L1).
	ServerVarAccesses int

	// SEServiceCycles is the SE occupancy per message in SE cycles (paper:
	// 12, the slowest opcode).
	SEServiceCycles int64

	// Name overrides the reported scheme name.
	Name string
}

func (o Options) withDefaults() Options {
	if o.STEntries == 0 {
		o.STEntries = 64
	}
	if o.IndexingCounters == 0 {
		o.IndexingCounters = 256
	}
	if o.ServerHandlerInstrs == 0 {
		o.ServerHandlerInstrs = 60
	}
	if o.ServerVarAccesses == 0 {
		o.ServerVarAccesses = 2
	}
	if o.SEServiceCycles == 0 {
		o.SEServiceCycles = 12
	}
	return o
}

// NewSynCron returns the paper's SynCron backend: hierarchical SEs with
// 64-entry STs and integrated overflow.
func NewSynCron() *Coordinator { return NewCoordinator(Options{Topology: TopoHier, HardwareSE: true}) }

// NewSynCronFlat returns the flat SynCron variant of §6.7.1.
func NewSynCronFlat() *Coordinator {
	return NewCoordinator(Options{Topology: TopoFlat, HardwareSE: true, Name: "syncron-flat"})
}

// NewCoordinator builds a message-passing synchronization backend.
func NewCoordinator(o Options) *Coordinator {
	o = o.withDefaults()
	return &Coordinator{opt: o}
}

// pend is a core blocked in an acquire-type operation.
type pend struct {
	core int
	done func(sim.Time)
}

// Coordinator implements arch.Backend for all message-passing schemes.
type Coordinator struct {
	opt Options
	m   *arch.Machine

	nodes []*node // per unit (TopoHier/TopoFlat); single element for TopoCentral

	vars map[uint64]*masterState // global per-variable state, held at the master node

	totalReqs    uint64
	overflowReqs uint64

	// syncTr is non-nil when the machine has a tracer attached; it wraps each
	// request's done continuation with span emission (see arch.SyncTracer).
	syncTr *arch.SyncTracer

	// fallback server busy horizons for OverflowCentral/OverflowDistrib.
	fallbackBusy []sim.Time
	abortsSent   uint64

	// continuation and state freelists (see pool.go).
	freeDeliver *deliver
	freeOps     *callOp
	freeMasters *masterState
	freeLocals  *localState
}

// Name implements arch.Backend.
func (c *Coordinator) Name() string {
	if c.opt.Name != "" {
		return c.opt.Name
	}
	if c.opt.HardwareSE {
		if c.opt.Topology == TopoFlat {
			return "syncron-flat"
		}
		return "syncron"
	}
	switch c.opt.Topology {
	case TopoCentral:
		return "central"
	case TopoFlat:
		return "flat-server"
	default:
		return "hier"
	}
}

// Attach implements arch.Backend.
func (c *Coordinator) Attach(m *arch.Machine) {
	c.m = m
	c.vars = make(map[uint64]*masterState)
	n := m.Cfg.Units
	if c.opt.Topology == TopoCentral {
		n = 1
	}
	c.nodes = nil
	for i := 0; i < n; i++ {
		unit := i
		if c.opt.Topology == TopoCentral {
			unit = 0
		}
		c.nodes = append(c.nodes, newNode(c, unit))
	}
	c.fallbackBusy = make([]sim.Time, m.Cfg.Units)
	c.freeDeliver, c.freeOps, c.freeMasters, c.freeLocals = nil, nil, nil, nil
	c.syncTr = nil
	if m.Tracer != nil {
		c.syncTr = arch.NewSyncTracer(m.Tracer)
	}
}

// masterNode returns the node coordinating variable addr globally.
func (c *Coordinator) masterNode(addr uint64) *node {
	if c.opt.Topology == TopoCentral {
		return c.nodes[0]
	}
	return c.nodes[c.m.HomeUnit(addr)]
}

// localNode returns the node a core sends its requests to.
func (c *Coordinator) localNode(core int, addr uint64) *node {
	switch c.opt.Topology {
	case TopoCentral:
		return c.nodes[0]
	case TopoFlat:
		return c.masterNode(addr)
	default:
		return c.nodes[c.m.UnitOf(core)]
	}
}

// hierarchical reports whether local aggregation is active.
func (c *Coordinator) hierarchical() bool { return c.opt.Topology == TopoHier }

// Request implements arch.Backend.
func (c *Coordinator) Request(t sim.Time, core int, req arch.SyncReq, done func(sim.Time)) {
	c.totalReqs++
	if c.syncTr != nil {
		done = c.syncTr.Request(t, core, req, done)
	}
	switch req.Op {
	case arch.OpLockAcquire:
		c.lockAcquire(t, core, req.Addr, done)
	case arch.OpLockRelease:
		done(t + c.m.CoreClock.Cycles(1)) // req_async commits once issued
		c.lockRelease(t, core, req.Addr)
	case arch.OpBarrierWithinUnit:
		c.barrierWithin(t, core, req.Addr, int(req.Info), done)
	case arch.OpBarrierAcrossUnits:
		c.barrierAcross(t, core, req.Addr, int(req.Info), done)
	case arch.OpSemWait:
		c.semWait(t, core, req.Addr, int(req.Info), done)
	case arch.OpSemPost:
		done(t + c.m.CoreClock.Cycles(1))
		c.semPost(t, core, req.Addr)
	case arch.OpCondWait:
		c.condWait(t, core, req.Addr, req.Lock, done)
	case arch.OpCondSignal:
		done(t + c.m.CoreClock.Cycles(1))
		c.condSignal(t, core, req.Addr, req.Lock)
	case arch.OpCondBroadcast:
		done(t + c.m.CoreClock.Cycles(1))
		c.condBroadcast(t, core, req.Addr, req.Lock)
	case arch.OpFetchAdd:
		c.fetchAdd(t, core, req.Addr, req.Info, done)
	default:
		panic(fmt.Sprintf("core: unknown sync op %v", req.Op))
	}
}

// ExtraCacheEnergyPJ implements arch.Backend.
func (c *Coordinator) ExtraCacheEnergyPJ() float64 {
	var pj float64
	for _, n := range c.nodes {
		if n.l1 != nil {
			pj += n.l1.Stats.EnergyPJ(n.l1Cfg)
		}
	}
	return pj
}

// STOccupancy implements arch.BackendStats.
func (c *Coordinator) STOccupancy() (max, mean float64) {
	var sum float64
	cnt := 0
	for _, n := range c.nodes {
		if n.st == nil {
			continue
		}
		cap := float64(c.opt.STEntries)
		if f := n.occupancy.Max() / cap; f > max {
			max = f
		}
		sum += n.occupancy.Mean() / cap
		cnt++
	}
	if cnt > 0 {
		mean = sum / float64(cnt)
	}
	return max, mean
}

// STEntriesLive returns the number of currently occupied ST entries across
// all SEs (testing hook: must be zero once all variables are released).
func (c *Coordinator) STEntriesLive() int {
	n := 0
	for _, nd := range c.nodes {
		n += len(nd.st)
	}
	return n
}

// OverflowedFraction implements arch.BackendStats.
func (c *Coordinator) OverflowedFraction() float64 {
	if c.totalReqs == 0 {
		return 0
	}
	return float64(c.overflowReqs) / float64(c.totalReqs)
}

// ---- message transport ----

// coreToNode delivers a request message from a core to a node and invokes
// then at the time the node finished processing it. viaMemory must reflect
// the node's servicing mode for addr at processing time; because the mode is
// determined when the message is handled, the node computes it itself.
func (c *Coordinator) coreToNode(t sim.Time, core int, n *node, addr uint64, then func(sim.Time)) {
	unit := c.m.UnitOf(core)
	arr := c.m.Net.Transfer(t, unit, n.unit, n.port(), arch.SyncReqBytes)
	c.m.Engine.Schedule(arr, c.newDeliver(n, addr, then).fn)
}

// nodeToNode delivers a message between nodes. Same-node delivery costs
// nothing extra (the SE continues processing internally).
func (c *Coordinator) nodeToNode(t sim.Time, from, to *node, addr uint64, then func(sim.Time)) {
	if from == to {
		c.m.Engine.Schedule(t, then)
		return
	}
	arr := c.m.Net.Transfer(t, from.unit, to.unit, to.port(), arch.SyncReqBytes)
	c.m.Engine.Schedule(arr, c.newDeliver(to, addr, then).fn)
}

// nodeToCore delivers a grant/notification from a node to a core; done gets
// the arrival time.
func (c *Coordinator) nodeToCore(t sim.Time, n *node, core int, done func(sim.Time)) {
	unit := c.m.UnitOf(core)
	arr := c.m.Net.Transfer(t, n.unit, unit, c.m.LocalOf(core), arch.SyncRespBytes)
	c.m.Engine.Schedule(arr, done)
}
