package core

import "syncron/internal/sim"

// Pooled protocol continuations.
//
// The protocol layer used to allocate a fresh closure for every message hop
// (transport delivery, lock/barrier/semaphore/cond continuations), which made
// internal/core the dominant allocation source of the whole simulator.
// Continuations are now pooled: each in-flight message draws a deliver or
// callOp from a per-Coordinator freelist, carries its operands in plain
// fields, and is prebound to a reusable func(sim.Time), so scheduling one
// allocates nothing in steady state. An op frees itself before dispatching,
// which lets the dispatched handler immediately draw (and reuse) the op it
// just ran from.
//
// Pools are per Coordinator and every protocol event runs as a serial
// barrier on the engine goroutine, so no locking is needed. Timing is
// untouched: the pooled paths issue exactly the same Transfer/Schedule
// sequence as the closures they replace.

// deliver is a pooled in-flight message delivery: node processing at the
// arrival time, then the continuation at the finish time (the former inner
// closure of coreToNode/nodeToNode).
type deliver struct {
	c    *Coordinator
	n    *node
	addr uint64
	then func(sim.Time)
	fn   func(sim.Time) // prebound adapter, allocated once per pooled object
	next *deliver
}

func (c *Coordinator) newDeliver(n *node, addr uint64, then func(sim.Time)) *deliver {
	d := c.freeDeliver
	if d == nil {
		d = &deliver{c: c}
		d.fn = func(at sim.Time) { d.run(at) }
	} else {
		c.freeDeliver = d.next
	}
	d.n, d.addr, d.then = n, addr, then
	return d
}

func (d *deliver) run(at sim.Time) {
	c, n, addr, then := d.c, d.n, d.addr, d.then
	d.n, d.then = nil, nil
	d.next = c.freeDeliver
	c.freeDeliver = d
	fin := n.process(at, addr)
	c.m.Engine.Schedule(fin, then)
}

// opKind selects which protocol step a pooled callOp performs when it fires.
type opKind uint8

const (
	opLockEnqueue opKind = iota
	opMasterCoreAcquire
	opLockReleaseAt
	opMasterCoreRelease
	opMasterNodeAcquire
	opMasterNodeRelease
	opGrantNodeArrived
	opRelayGrant
	opBarrierWithinLocal
	opBarrierAcrossLocal
	opBarrierCoreArrive
	opBarrierNodeArrive
	opBarrierDepartLocal
	opMasterSemWait
	opMasterSemPost
	opCondWaitFlat
	opCondWaitLocal
	opCondWaitReg
	opCondSignal
	opCondBroadcast
	opFetchAddApply
	opMemExit
	opForwardMaster
)

// callOp is a pooled protocol continuation. Which fields are meaningful
// depends on kind; unused ones stay zero. addr2 doubles as the associated
// lock address (cond variables) and the fetch-add delta.
type callOp struct {
	c     *Coordinator
	kind  opKind
	kind2 opKind // inner kind run at the master, for opForwardMaster
	core  int
	n     int // participant count (barriers) / initial resources (semaphores)
	addr  uint64
	addr2 uint64
	flag  bool
	nd    *node
	done  func(sim.Time)
	fn    func(sim.Time) // prebound adapter, allocated once per pooled object
	next  *callOp
}

// op draws a continuation from the pool. Callers fill in the operand fields
// and hand o.fn to the transport as the `then` callback.
func (c *Coordinator) op(kind opKind) *callOp {
	o := c.freeOps
	if o == nil {
		o = &callOp{c: c}
		o.fn = func(t sim.Time) { o.run(t) }
	} else {
		c.freeOps = o.next
	}
	o.kind = kind
	return o
}

func (o *callOp) run(t sim.Time) {
	c := o.c
	v := *o // copy the operands: the dispatch below may reuse this op
	o.nd, o.done = nil, nil
	o.next = c.freeOps
	c.freeOps = o
	switch v.kind {
	case opLockEnqueue:
		c.lockEnqueueAt(t, v.nd, v.core, v.addr, v.done)
	case opMasterCoreAcquire:
		c.masterLockCoreAcquire(t, v.core, v.addr, v.done, v.nd)
	case opLockReleaseAt:
		c.lockReleaseAt(t, v.nd, v.core, v.addr)
	case opMasterCoreRelease:
		c.masterLockCoreRelease(t, v.addr)
	case opMasterNodeAcquire:
		c.masterLockNodeAcquire(t, v.nd, v.addr)
	case opMasterNodeRelease:
		c.masterLockNodeRelease(t, v.nd, v.addr, v.flag)
	case opGrantNodeArrived:
		c.grantLockNodeArrived(t, v.nd, v.addr)
	case opRelayGrant:
		c.nodeToCore(t, v.nd, v.core, v.done)
	case opBarrierWithinLocal:
		c.barrierWithinLocal(t, v.nd, v.core, v.addr, v.n, v.done)
	case opBarrierAcrossLocal:
		c.barrierAcrossLocal(t, v.nd, v.core, v.addr, v.n, v.done, v.flag)
	case opBarrierCoreArrive:
		c.masterBarrierCoreArrive(t, v.addr, v.n, holderRef{core: v.core, done: v.done, relay: v.nd})
	case opBarrierNodeArrive:
		c.masterBarrierNodeArrive(t, v.addr, v.n, v.nd)
	case opBarrierDepartLocal:
		c.barrierDepartLocal(t, v.nd, v.addr)
	case opMasterSemWait:
		c.masterSemWait(t, v.addr, v.n, holderRef{core: v.core, done: v.done, relay: v.nd})
	case opMasterSemPost:
		c.masterSemPost(t, v.addr)
	case opCondWaitFlat:
		c.condWaitAtMaster(t, v.core, v.addr, v.addr2, v.done)
	case opCondWaitLocal:
		c.condWaitAtLocal(t, v.nd, v.core, v.addr, v.addr2, v.done)
	case opCondWaitReg:
		c.condWaitRegister(t, v.core, v.addr, v.addr2, v.done, v.nd)
	case opCondSignal:
		c.condSignalAtMaster(t, v.addr)
	case opCondBroadcast:
		c.condBroadcastAtMaster(t, v.addr)
	case opFetchAddApply:
		c.fetchAddApply(t, v.core, v.addr, v.addr2, v.done, v.nd)
	case opMemExit:
		v.nd.memExit(v.addr)
	case opForwardMaster:
		// Hierarchical second hop: forward from the local SE (v.nd) to the
		// master and run the inner kind there, with v.nd as the relay.
		inner := c.op(v.kind2)
		inner.core, inner.n, inner.addr, inner.addr2, inner.flag, inner.nd, inner.done =
			v.core, v.n, v.addr, v.addr2, v.flag, v.nd, v.done
		c.nodeToNode(t, v.nd, c.masterNode(v.addr), v.addr, inner.fn)
	}
}
