package core

import "syncron/internal/sim"

// Condition-variable protocol: a cond_wait message carries the associated
// lock address (MessageInfo, Figure 5). The waiter's local SE first performs
// the lock-release semantics on the associated lock, then registers the
// waiter with the condition variable's master. A signal wakes the oldest
// waiter, which must re-acquire the lock before its cond_wait completes —
// the wakeup is therefore injected into the lock protocol at the waiter's
// local SE.

// condWait handles cond_wait(cond, lock).
func (c *Coordinator) condWait(t sim.Time, core int, addr, lock uint64, done func(sim.Time)) {
	if !c.hierarchical() {
		m := c.masterNode(addr)
		c.coreToNode(t, core, m, addr, func(pt sim.Time) {
			// Release the lock at its own master, then park the waiter.
			lm := c.masterNode(lock)
			c.nodeToNode(pt, m, lm, lock, func(lt sim.Time) {
				c.masterLockCoreRelease(lt, lock)
			})
			ms := c.master(addr)
			c.masterHold(pt, ms)
			ms.condQ = append(ms.condQ, condWaiter{core: core, lock: lock, done: done})
		})
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	master := c.masterNode(addr)
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		// The SE releases the associated lock on the waiter's behalf.
		c.lockReleaseAt(pt, local, core, lock)
		c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
			ms := c.master(addr)
			c.masterHold(mt, ms)
			if c.masterNode(addr).viaMemory(addr) {
				c.overflowReqs++
			}
			ms.condQ = append(ms.condQ, condWaiter{core: core, lock: lock, done: done, relay: local})
		})
	})
}

// condSignal wakes one waiter.
func (c *Coordinator) condSignal(t sim.Time, core int, addr, lock uint64) {
	c.condDeliver(t, core, addr, func(mt sim.Time, ms *masterState) {
		if len(ms.condQ) == 0 {
			c.masterFree(mt, ms)
			return
		}
		w := ms.condQ[0]
		ms.condQ = ms.condQ[1:]
		c.condWake(mt, addr, w)
		c.masterFree(mt, ms)
	})
}

// condBroadcast wakes all waiters.
func (c *Coordinator) condBroadcast(t sim.Time, core int, addr, lock uint64) {
	c.condDeliver(t, core, addr, func(mt sim.Time, ms *masterState) {
		ws := ms.condQ
		ms.condQ = nil
		for _, w := range ws {
			c.condWake(mt, addr, w)
		}
		c.masterFree(mt, ms)
	})
}

// condDeliver routes a signal/broadcast message to the master and runs act
// there.
func (c *Coordinator) condDeliver(t sim.Time, core int, addr uint64, act func(sim.Time, *masterState)) {
	master := c.masterNode(addr)
	if !c.hierarchical() {
		c.coreToNode(t, core, master, addr, func(pt sim.Time) {
			act(pt, c.master(addr))
		})
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	c.coreToNode(t, core, local, addr, func(pt sim.Time) {
		c.nodeToNode(pt, local, master, addr, func(mt sim.Time) {
			act(mt, c.master(addr))
		})
	})
}

// condWake re-acquires the waiter's lock and completes its cond_wait when
// the lock is granted.
func (c *Coordinator) condWake(t sim.Time, addr uint64, w condWaiter) {
	master := c.masterNode(addr)
	if !c.hierarchical() {
		// cond_grant travels to the lock's master as a per-core acquire.
		lm := c.masterNode(w.lock)
		c.nodeToNode(t, master, lm, w.lock, func(lt sim.Time) {
			c.masterLockCoreAcquire(lt, w.core, w.lock, w.done, nil)
		})
		return
	}
	relay := w.relay
	if relay == nil {
		relay = c.nodes[c.m.UnitOf(w.core)]
	}
	// cond_grant_global to the waiter's local SE, which enqueues the waiter
	// on the lock as a normal local acquire.
	c.nodeToNode(t, master, relay, w.lock, func(rt sim.Time) {
		c.lockEnqueueAt(rt, relay, w.core, w.lock, w.done)
	})
}
