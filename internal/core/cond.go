package core

import "syncron/internal/sim"

// Condition-variable protocol: a cond_wait message carries the associated
// lock address (MessageInfo, Figure 5). The waiter's local SE first performs
// the lock-release semantics on the associated lock, then registers the
// waiter with the condition variable's master. A signal wakes the oldest
// waiter, which must re-acquire the lock before its cond_wait completes —
// the wakeup is therefore injected into the lock protocol at the waiter's
// local SE.

// condWait handles cond_wait(cond, lock).
func (c *Coordinator) condWait(t sim.Time, core int, addr, lock uint64, done func(sim.Time)) {
	if !c.hierarchical() {
		o := c.op(opCondWaitFlat)
		o.core, o.addr, o.addr2, o.done = core, addr, lock, done
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opCondWaitLocal)
	o.nd, o.core, o.addr, o.addr2, o.done = local, core, addr, lock, done
	c.coreToNode(t, core, local, addr, o.fn)
}

// condWaitAtMaster runs a flat/central cond_wait at the variable's master:
// release the lock at its own master, then park the waiter.
func (c *Coordinator) condWaitAtMaster(pt sim.Time, core int, addr, lock uint64, done func(sim.Time)) {
	m := c.masterNode(addr)
	rel := c.op(opMasterCoreRelease)
	rel.addr = lock
	c.nodeToNode(pt, m, c.masterNode(lock), lock, rel.fn)
	ms := c.master(addr)
	c.masterHold(pt, ms)
	ms.condQ = append(ms.condQ, condWaiter{core: core, lock: lock, done: done})
}

// condWaitAtLocal runs a hierarchical cond_wait at the waiter's local SE:
// the SE releases the associated lock on the waiter's behalf, then forwards
// the wait to the condition variable's master.
func (c *Coordinator) condWaitAtLocal(pt sim.Time, local *node, core int, addr, lock uint64, done func(sim.Time)) {
	c.lockReleaseAt(pt, local, core, lock)
	o := c.op(opCondWaitReg)
	o.core, o.addr, o.addr2, o.done, o.nd = core, addr, lock, done, local
	c.nodeToNode(pt, local, c.masterNode(addr), addr, o.fn)
}

// condWaitRegister parks the waiter at the master.
func (c *Coordinator) condWaitRegister(mt sim.Time, core int, addr, lock uint64, done func(sim.Time), relay *node) {
	ms := c.master(addr)
	c.masterHold(mt, ms)
	if c.masterNode(addr).viaMemory(addr) {
		c.overflowReqs++
	}
	ms.condQ = append(ms.condQ, condWaiter{core: core, lock: lock, done: done, relay: relay})
}

// condSignal wakes one waiter.
func (c *Coordinator) condSignal(t sim.Time, core int, addr, lock uint64) {
	c.condDeliver(t, core, addr, opCondSignal)
}

// condBroadcast wakes all waiters.
func (c *Coordinator) condBroadcast(t sim.Time, core int, addr, lock uint64) {
	c.condDeliver(t, core, addr, opCondBroadcast)
}

// condDeliver routes a signal/broadcast message to the master, where the
// continuation of the given kind runs.
func (c *Coordinator) condDeliver(t sim.Time, core int, addr uint64, kind opKind) {
	if !c.hierarchical() {
		o := c.op(kind)
		o.addr = addr
		c.coreToNode(t, core, c.masterNode(addr), addr, o.fn)
		return
	}
	local := c.nodes[c.m.UnitOf(core)]
	o := c.op(opForwardMaster)
	o.kind2 = kind
	o.nd, o.addr = local, addr
	c.coreToNode(t, core, local, addr, o.fn)
}

// condSignalAtMaster wakes the oldest waiter at the master.
func (c *Coordinator) condSignalAtMaster(mt sim.Time, addr uint64) {
	ms := c.master(addr)
	if len(ms.condQ) == 0 {
		c.masterFree(mt, ms)
		return
	}
	w := ms.condQ[0]
	k := copy(ms.condQ, ms.condQ[1:])
	ms.condQ[k] = condWaiter{}
	ms.condQ = ms.condQ[:k]
	c.condWake(mt, addr, w)
	c.masterFree(mt, ms)
}

// condBroadcastAtMaster wakes all waiters at the master.
func (c *Coordinator) condBroadcastAtMaster(mt sim.Time, addr uint64) {
	ms := c.master(addr)
	ws := ms.condQ
	for _, w := range ws {
		c.condWake(mt, addr, w)
	}
	for i := range ws {
		ws[i] = condWaiter{}
	}
	ms.condQ = ws[:0]
	c.masterFree(mt, ms)
}

// condWake re-acquires the waiter's lock and completes its cond_wait when
// the lock is granted.
func (c *Coordinator) condWake(t sim.Time, addr uint64, w condWaiter) {
	master := c.masterNode(addr)
	if !c.hierarchical() {
		// cond_grant travels to the lock's master as a per-core acquire.
		o := c.op(opMasterCoreAcquire)
		o.core, o.addr, o.done = w.core, w.lock, w.done
		c.nodeToNode(t, master, c.masterNode(w.lock), w.lock, o.fn)
		return
	}
	relay := w.relay
	if relay == nil {
		relay = c.nodes[c.m.UnitOf(w.core)]
	}
	// cond_grant_global to the waiter's local SE, which enqueues the waiter
	// on the lock as a normal local acquire.
	o := c.op(opLockEnqueue)
	o.nd, o.core, o.addr, o.done = relay, w.core, w.lock, w.done
	c.nodeToNode(t, master, relay, w.lock, o.fn)
}
