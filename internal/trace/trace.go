// Package trace is the time-resolved tracing layer of the simulator: a
// nil-by-default Tracer interface, a generic record schema modeled on akita
// PerfAnalyzer's (start, end, where, what, value, unit) tuples, and a
// buffered, allocation-pooled CSV writer.
//
// # Zero overhead when disabled
//
// Every hook point in the model layers is branch-guarded on a nil tracer
// (`if tr := x.tracer; tr != nil { ... }`), so the disabled path costs one
// predictable branch and zero allocations — pinned by
// internal/sim's TestEngineSteadyStateAllocFreeTracerNil and the CI perf
// gate. Enabled-path cost is measured honestly by the `tracer-on` entry of
// `syncron-bench -perf` (BENCH.json).
//
// # Determinism
//
// Trace output must be byte-identical at any -parallel setting. Two
// mechanisms guarantee that:
//
//   - every hook point fires on the engine goroutine: protocol layers and
//     cross-unit network transfers are serial-barrier events by construction
//     (see ARCHITECTURE.md "Unit ownership map"), and the engine's dispatch
//     hook (sim.Hook) fires from the dispatch loop itself at the same
//     logical point under both dispatchers. Unit-tagged hot paths (L1 hits,
//     intra-unit crossbar traversals) are deliberately untraced — they may
//     run concurrently on workers and their volume would dwarf the signal;
//   - the Collector commits records in a total deterministic order: the CSV
//     writer sorts by the full (start, end, where, what, value, unit) tuple
//     before emission, mirroring how the parallel dispatcher replays
//     buffered schedule ops in serial seq order. Identical record multisets
//     therefore serialize to identical bytes regardless of emission order.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"syncron/internal/sim"
)

// Record is one trace tuple in the generic PerfAnalyzer-style schema.
// Where and What must not contain commas or newlines (they are emitted
// unquoted); all emitters use fixed or precomputed names.
type Record struct {
	Start sim.Time // span start (ps)
	End   sim.Time // span end (ps); == Start for point samples
	Where string   // component the record is about ("engine", "link.0-1", "var.0x...")
	What  string   // metric name ("queue_depth", "link_xfer", "lock_hold", ...)
	Value float64  // metric value
	Unit  string   // unit of Value ("events", "bytes", "ps")
}

// Well-known What values emitted by the built-in hook points.
const (
	WhatQueueDepth  = "queue_depth"  // engine: max pending events in a bucket
	WhatDispatched  = "dispatched"   // engine: events executed in a bucket
	WhatLinkXfer    = "link_xfer"    // network: one message's busy window on a link
	WhatLockWait    = "lock_wait"    // backend: lock acquire -> grant span
	WhatLockHold    = "lock_hold"    // backend: lock grant -> release span
	WhatBarrierWait = "barrier_wait" // backend: barrier arrive -> release span
	WhatSemWait     = "sem_wait"     // backend: semaphore P() wait span
	WhatCondWait    = "cond_wait"    // backend: condition-variable wait span
	WhatBankBusy    = "bank_busy"    // mem (bank model): one access's occupancy of a bank
	WhatRowHit      = "row_hit"      // mem (bank model): run-total open-row hits per stack
	WhatRowMiss     = "row_miss"     // mem (bank model): run-total row misses per stack
)

// compareRecords is the total order trace output is committed in. Every
// field participates, so ties are only possible between fully identical
// records and the sort is deterministic for a fixed record multiset.
func compareRecords(a, b Record) int {
	switch {
	case a.Start != b.Start:
		return cmpOrd(a.Start, b.Start)
	case a.End != b.End:
		return cmpOrd(a.End, b.End)
	case a.Where != b.Where:
		return strings.Compare(a.Where, b.Where)
	case a.What != b.What:
		return strings.Compare(a.What, b.What)
	case a.Value != b.Value:
		return cmpOrd(a.Value, b.Value)
	default:
		return strings.Compare(a.Unit, b.Unit)
	}
}

func cmpOrd[T sim.Time | float64](a, b T) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// Tracer receives trace records. Implementations are driven only from the
// engine goroutine (see the package comment), so they need no locking.
type Tracer interface {
	Emit(r Record)
}

// Discard is a Tracer that drops every record. It keeps all hook points —
// branch checks, span bookkeeping, record construction — live without
// buffering anything, which is exactly what the `tracer-on` entry of
// `syncron-bench -perf` measures.
var Discard Tracer = discard{}

type discard struct{}

func (discard) Emit(Record) {}

// Collector is the standard Tracer: an in-memory record buffer with a
// deterministic CSV emitter. The buffer and the writer's row scratch are
// pooled — Reset keeps their capacity, so one Collector can trace many runs
// with a single steady-state allocation footprint.
type Collector struct {
	recs   []Record
	sorted bool
	row    []byte // pooled per-row encoding scratch for WriteCSV
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(r Record) {
	c.recs = append(c.recs, r)
	c.sorted = false
}

// Len returns the number of buffered records.
func (c *Collector) Len() int { return len(c.recs) }

// Reset drops all buffered records but keeps the backing storage, so the
// Collector can be reused across runs without reallocating.
func (c *Collector) Reset() {
	c.recs = c.recs[:0]
	c.sorted = true
}

// Records returns the buffered records in the deterministic commit order
// (sorted by the full record tuple). The returned slice is the Collector's
// own buffer; it is valid until the next Emit or Reset.
func (c *Collector) Records() []Record {
	if !c.sorted {
		slices.SortFunc(c.recs, compareRecords)
		c.sorted = true
	}
	return c.recs
}

// Header is the CSV header line (without trailing newline) of the trace
// schema. It is pinned by a golden test; changing it is a trace-format
// version change.
const Header = "start_ps,end_ps,where,what,value,unit"

// WriteCSV writes the buffered records as CSV in deterministic commit order:
// the header line, then one line per record. Output is byte-identical for
// identical record multisets regardless of emission order.
func (c *Collector) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(Header)
	bw.WriteByte('\n')
	for _, r := range c.Records() {
		c.row = AppendRecord(c.row[:0], r)
		if _, err := bw.Write(c.row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendRecord appends r's CSV encoding (including the trailing newline) to
// b. Times are integer picoseconds; Value uses strconv's shortest 'g'
// round-trip form, so encoding is platform-independent and deterministic.
func AppendRecord(b []byte, r Record) []byte {
	b = strconv.AppendInt(b, int64(r.Start), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.End), 10)
	b = append(b, ',')
	b = append(b, r.Where...)
	b = append(b, ',')
	b = append(b, r.What...)
	b = append(b, ',')
	b = strconv.AppendFloat(b, r.Value, 'g', -1, 64)
	b = append(b, ',')
	b = append(b, r.Unit...)
	b = append(b, '\n')
	return b
}

// ReadCSV parses a trace written by WriteCSV back into records. It verifies
// the header and every field, so tests and smoke scripts can assert
// well-formedness by round-tripping.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input (missing header %q)", Header)
	}
	if sc.Text() != Header {
		return nil, fmt.Errorf("trace: bad header %q, want %q", sc.Text(), Header)
	}
	var recs []Record
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 6", line, len(fields))
		}
		start, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start_ps %q: %v", line, fields[0], err)
		}
		end, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad end_ps %q: %v", line, fields[1], err)
		}
		val, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad value %q: %v", line, fields[4], err)
		}
		recs = append(recs, Record{
			Start: sim.Time(start), End: sim.Time(end),
			Where: fields[2], What: fields[3], Value: val, Unit: fields[5],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
