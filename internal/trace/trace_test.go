package trace

import (
	"bytes"
	"strings"
	"testing"

	"syncron/internal/sim"
)

// The CSV schema is a published format: smoke scripts, CI diffs, and external
// tooling parse it. Pinning the header and the exact encoding of a known
// record set makes any schema change a deliberate, test-visible act.
func TestCSVSchemaGolden(t *testing.T) {
	if Header != "start_ps,end_ps,where,what,value,unit" {
		t.Fatalf("trace CSV header changed: %q", Header)
	}
	c := NewCollector()
	c.Emit(Record{Start: 100, End: 200, Where: "engine", What: WhatQueueDepth, Value: 7, Unit: "events"})
	c.Emit(Record{Start: 0, End: 16000, Where: "var.0x40", What: WhatLockWait, Value: 16000, Unit: "ps"})
	c.Emit(Record{Start: 100, End: 164, Where: "link.0-1", What: WhatLinkXfer, Value: 64, Unit: "bytes"})
	c.Emit(Record{Start: 100, End: 164, Where: "link.0-1", What: WhatLinkXfer, Value: 0.5, Unit: "bytes"})

	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `start_ps,end_ps,where,what,value,unit
0,16000,var.0x40,lock_wait,16000,ps
100,164,link.0-1,link_xfer,0.5,bytes
100,164,link.0-1,link_xfer,64,bytes
100,200,engine,queue_depth,7,events
`
	if got := buf.String(); got != want {
		t.Errorf("trace CSV encoding changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// WriteCSV commits records in the total (start, end, where, what, value,
// unit) order, so identical record multisets serialize identically no matter
// the emission order.
func TestWriteCSVOrderIndependent(t *testing.T) {
	recs := []Record{
		{Start: 5, End: 9, Where: "b", What: "y", Value: 2, Unit: "ps"},
		{Start: 5, End: 9, Where: "a", What: "z", Value: 1, Unit: "ps"},
		{Start: 1, End: 3, Where: "c", What: "x", Value: 3, Unit: "ps"},
		{Start: 5, End: 7, Where: "a", What: "x", Value: 4, Unit: "ps"},
	}
	emit := func(order []int) string {
		c := NewCollector()
		for _, i := range order {
			c.Emit(recs[i])
		}
		var buf bytes.Buffer
		if err := c.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := emit([]int{0, 1, 2, 3})
	b := emit([]int{3, 2, 1, 0})
	if a != b {
		t.Errorf("emission order leaked into CSV:\n%s\nvs:\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header + 4 records, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1,3,c") || !strings.HasPrefix(lines[2], "5,7,a") ||
		!strings.HasPrefix(lines[3], "5,9,a") || !strings.HasPrefix(lines[4], "5,9,b") {
		t.Errorf("records not in commit order:\n%s", a)
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	c := NewCollector()
	want := []Record{
		{Start: 0, End: 100000, Where: "engine", What: WhatDispatched, Value: 104, Unit: "events"},
		{Start: 42, End: 106, Where: "link.1-0", What: WhatLinkXfer, Value: 64, Unit: "bytes"},
		{Start: 7, End: 7, Where: "var.0xff", What: WhatLockHold, Value: 0, Unit: "ps"},
	}
	for _, r := range want {
		c.Emit(r)
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d records, want %d", len(got), len(want))
	}
	// ReadCSV returns commit order; compare as multisets via re-encoding.
	c2 := NewCollector()
	for _, r := range got {
		c2.Emit(r)
	}
	var buf2 bytes.Buffer
	c.Reset()
	for _, r := range want {
		c.Emit(r)
	}
	if err := c.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := c2.WriteCSV(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Errorf("round-trip changed records:\n%s\nvs:\n%s", buf2.String(), buf3.String())
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "a,b,c\n"},
		{"short line", Header + "\n1,2,a,b,3\n"},
		{"bad start", Header + "\nx,2,a,b,3,ps\n"},
		{"bad value", Header + "\n1,2,a,b,zzz,ps\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadCSV accepted malformed input", tc.name)
		}
	}
}

// Reset must keep backing storage so a reused Collector reaches a zero-alloc
// steady state across runs.
func TestCollectorResetKeepsCapacity(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 100; i++ {
		c.Emit(Record{Start: sim.Time(i), Where: "x", What: "y", Unit: "ps"})
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if cap(c.recs) < 100 {
		t.Errorf("Reset dropped capacity: %d", cap(c.recs))
	}
}

// EngineHook coalesces per-timestamp advances into fixed sim-time buckets:
// max depth per bucket, executed-delta per bucket, final partial bucket on
// Flush. Hand-computed fixture.
func TestEngineHookBucketing(t *testing.T) {
	c := NewCollector()
	h := NewEngineHook(c, 100)

	h.OnAdvance(0, 10, 5, 0)     // bucket 0
	h.OnAdvance(10, 50, 9, 3)    // bucket 0, deeper
	h.OnAdvance(50, 120, 4, 7)   // bucket 1 -> emits bucket 0 (depth 9, 7 events)
	h.OnAdvance(120, 130, 6, 8)  // bucket 1
	h.OnAdvance(130, 350, 2, 20) // bucket 3 -> emits bucket 1 (depth 6, 20-7=13 events)
	h.Flush(25)                  // emits bucket 3 (depth 2, 25-20=5 events)

	want := []Record{
		{Start: 0, End: 100, Where: "engine", What: WhatQueueDepth, Value: 9, Unit: "events"},
		{Start: 0, End: 100, Where: "engine", What: WhatDispatched, Value: 7, Unit: "events"},
		{Start: 100, End: 200, Where: "engine", What: WhatQueueDepth, Value: 6, Unit: "events"},
		{Start: 100, End: 200, Where: "engine", What: WhatDispatched, Value: 13, Unit: "events"},
		{Start: 300, End: 400, Where: "engine", What: WhatQueueDepth, Value: 2, Unit: "events"},
		{Start: 300, End: 400, Where: "engine", What: WhatDispatched, Value: 5, Unit: "events"},
	}
	got := c.Records()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(got), len(want), got)
	}
	// Compare as multisets (Records sorts by tuple, want is listed per bucket).
	cw := NewCollector()
	for _, r := range want {
		cw.Emit(r)
	}
	for i, w := range cw.Records() {
		if got[i] != w {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], w)
		}
	}

	// Flush resets the hook: a second run starts a fresh bucket sequence.
	c.Reset()
	h.OnAdvance(0, 20, 3, 0)
	h.Flush(2)
	got = c.Records()
	if len(got) != 2 || got[0].Value != 2 || got[1].Value != 3 {
		t.Errorf("after reset: %+v", got)
	}
}

// Discard must accept records without retaining anything (it is the
// enabled-path cost probe of syncron-bench).
func TestDiscard(t *testing.T) {
	Discard.Emit(Record{Start: 1, End: 2, Where: "x", What: "y", Value: 3, Unit: "ps"})
}
