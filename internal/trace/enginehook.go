package trace

import "syncron/internal/sim"

// DefaultEngineBucket is the default sim-time width of one engine trace
// bucket: fine enough to resolve contention phases, coarse enough that a
// full quick-figures run stays a few thousand records per run.
const DefaultEngineBucket = 100 * sim.Nanosecond

// EngineHook adapts a Tracer to sim.Hook: it coalesces the per-timestamp
// OnAdvance samples into fixed sim-time buckets and emits two records per
// non-empty bucket —
//
//	(bucketStart, bucketEnd, "engine", "queue_depth", maxPending, "events")
//	(bucketStart, bucketEnd, "engine", "dispatched",  executedDelta, "events")
//
// Bucketing is in simulated time, so output is independent of wall clock and
// parallelism. Flush must be called once after the run completes to emit the
// final partial bucket.
type EngineHook struct {
	tr    Tracer
	width sim.Time

	open     bool
	bucket   int64  // current bucket index (now / width)
	maxDepth int    // max pending seen in the current bucket
	baseExec uint64 // Engine.Executed when the current bucket opened
	lastExec uint64 // Engine.Executed at the most recent advance
}

// NewEngineHook builds an engine dispatch hook feeding tr; width <= 0 uses
// DefaultEngineBucket.
func NewEngineHook(tr Tracer, width sim.Time) *EngineHook {
	if width <= 0 {
		width = DefaultEngineBucket
	}
	return &EngineHook{tr: tr, width: width}
}

// OnAdvance implements sim.Hook. executed counts events completed BEFORE this
// advance — i.e. everything at timestamps of earlier (or the current) bucket —
// so on a bucket roll it is exactly the old bucket's closing count.
func (h *EngineHook) OnAdvance(prev, now sim.Time, pending int, executed uint64) {
	b := int64(now / h.width)
	if !h.open {
		h.open = true
		h.bucket = b
		h.maxDepth = 0
		h.baseExec = executed
	} else if b != h.bucket {
		h.lastExec = executed
		h.emit()
		h.bucket = b
		h.maxDepth = 0
		h.baseExec = executed
	}
	if pending > h.maxDepth {
		h.maxDepth = pending
	}
	h.lastExec = executed
}

// Flush emits the final partial bucket, attributing events executed after
// the last advance (finalExecuted is the engine's Executed count at run
// end). It resets the hook, so one EngineHook can observe several runs.
func (h *EngineHook) Flush(finalExecuted uint64) {
	if !h.open {
		return
	}
	h.lastExec = finalExecuted
	h.emit()
	h.open = false
}

// emit writes the current bucket's two records.
func (h *EngineHook) emit() {
	start := sim.Time(h.bucket) * h.width
	end := start + h.width
	h.tr.Emit(Record{Start: start, End: end, Where: "engine",
		What: WhatQueueDepth, Value: float64(h.maxDepth), Unit: "events"})
	h.tr.Emit(Record{Start: start, End: end, Where: "engine",
		What: WhatDispatched, Value: float64(h.lastExec - h.baseExec), Unit: "events"})
}
