package exp

import (
	"fmt"

	"syncron"
	"syncron/internal/mem"
	"syncron/internal/sim"
)

// combosSubset is the representative subset used by Figures 13-15 (the paper
// shows the same subset for space).
var combosSubset = []GraphRun{
	{"bfs", "sl"}, {"cc", "sx"}, {"sssp", "co"}, {"pr", "wk"},
	{"tf", "sl"}, {"tc", "sx"}, {"ts", "air"}, {"ts", "pow"},
}

func (g GraphRun) String() string { return g.App + "." + g.Input }

// names lists the registry names of runs (GraphRun strings are registry keys).
func names(runs []GraphRun) []string {
	var out []string
	for _, run := range runs {
		out = append(out, run.String())
	}
	return out
}

// sweep26 runs the 26 application-input combinations across the four main
// schemes through the public sweep engine.
func sweep26(scale float64) []syncron.RunResult {
	return sweepRegistry(names(Combos26()), parsedSchemes(), scale)
}

func init() {
	register(&Experiment{
		ID:    "fig12",
		Paper: "Figure 12",
		Brief: "Speedup of all schemes over Central across the 26 application-input combinations",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig12",
				Title:   "Real applications: speedup normalized to Central",
				Columns: []string{"workload", "central", "hier", "syncron", "ideal"},
			}
			st, err := syncron.SpeedupVsBaseline(sweep26(scale), syncron.SchemeCentral)
			if err != nil {
				panic(fmt.Sprintf("exp: %v", err))
			}
			for _, row := range st.Rows {
				cells := []string{row.Workload}
				for _, scheme := range parsedSchemes() {
					cells = append(cells, f2(row.Speedup[scheme]))
				}
				t.Rows = append(t.Rows, cells)
			}
			geo := []string{"GEOMEAN"}
			for _, scheme := range parsedSchemes() {
				geo = append(geo, f2(st.OverallGeomean[scheme]))
			}
			t.Rows = append(t.Rows, geo)
			t.Notes = "paper AVG: Hier 1.19x, SynCron 1.47x, Ideal 1.62x over Central (SynCron within 9.5% of Ideal)"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig13",
		Paper: "Figure 13",
		Brief: "Scalability of real applications with SynCron, 1-4 NDP units",
		Run: func(scale float64) []*Table {
			// Scaling needs enough work per core to amortize remote accesses;
			// run this experiment on larger inputs than the shared scale.
			scale *= 5
			t := &Table{ID: "fig13",
				Title:   "SynCron speedup over 1 NDP unit",
				Columns: []string{"workload", "1 unit", "2 units", "3 units", "4 units"},
			}
			var sum [4]float64
			for _, run := range combosSubset {
				var base sim.Time
				row := []string{run.String()}
				for u := 1; u <= 4; u++ {
					res := RunGraph(Spec{Backend: "syncron", Units: u}, run, scale, false)
					if u == 1 {
						base = res.Makespan
					}
					sp := float64(base) / float64(res.Makespan)
					sum[u-1] += sp
					row = append(row, f2(sp))
				}
				t.Rows = append(t.Rows, row)
			}
			avg := []string{"AVG"}
			for i := range sum {
				avg = append(avg, f2(sum[i]/float64(len(combosSubset))))
			}
			t.Rows = append(t.Rows, avg)
			t.Notes = "paper: 2.03x on average at 4 units (range 1.32x-3.03x)"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig14",
		Paper: "Figure 14",
		Brief: "Energy breakdown (cache / network / memory) in real applications",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig14",
				Title:   "Energy (normalized to Central = 1.0) split into cache/network/memory",
				Columns: []string{"workload", "scheme", "cache", "network", "memory", "total"},
			}
			rows, err := syncron.EnergyBreakdown(
				sweepRegistry(names(combosSubset), parsedSchemes(), scale), syncron.SchemeCentral)
			if err != nil {
				panic(fmt.Sprintf("exp: %v", err))
			}
			for _, r := range rows {
				t.Rows = append(t.Rows, []string{r.Workload, string(r.Scheme),
					f2(r.Cache), f2(r.Network), f2(r.Memory), f2(r.Total)})
			}
			t.Notes = "paper: SynCron reduces energy 2.22x vs Central, 1.94x vs Hier, within 6.2% of Ideal"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig15",
		Paper: "Figure 15",
		Brief: "Data movement inside/across NDP units in real applications",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig15",
				Title:   "Bytes moved (normalized to Central total) inside vs across NDP units",
				Columns: []string{"workload", "scheme", "inside", "across", "total"},
			}
			rows, err := syncron.TrafficBreakdown(
				sweepRegistry(names(combosSubset), parsedSchemes(), scale), syncron.SchemeCentral)
			if err != nil {
				panic(fmt.Sprintf("exp: %v", err))
			}
			for _, r := range rows {
				t.Rows = append(t.Rows, []string{r.Workload, string(r.Scheme),
					f2(r.Inside), f2(r.Across), f2(r.Total)})
			}
			t.Notes = "paper: SynCron reduces data movement 2.08x vs Central and 2.04x vs Hier"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig17",
		Paper: "Figure 17",
		Brief: "pr.wk slowdown vs Ideal as inter-unit link latency grows (low contention)",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig17",
				Title:   "pr.wk: slowdown over Ideal per link latency",
				Columns: []string{"latency", "ideal", "syncron", "hier", "central"},
			}
			for _, lat := range []sim.Time{40 * sim.Nanosecond, 100 * sim.Nanosecond,
				200 * sim.Nanosecond, 500 * sim.Nanosecond} {
				times := map[string]sim.Time{}
				for _, scheme := range Schemes {
					times[scheme] = RunGraph(Spec{Backend: scheme, Link: lat},
						GraphRun{"pr", "wk"}, scale, false).Makespan
				}
				t.Rows = append(t.Rows, []string{lat.String(),
					"1.00",
					f2(float64(times["syncron"]) / float64(times["ideal"])),
					f2(float64(times["hier"]) / float64(times["ideal"])),
					f2(float64(times["central"]) / float64(times["ideal"]))})
			}
			t.Notes = "paper @500ns: SynCron 1.17, Hier 1.37, Central 2.67 over Ideal"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig18",
		Paper: "Figure 18",
		Brief: "Speedup with different memory technologies (HBM / HMC / DDR4)",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig18",
				Title:   "Speedup over Central per memory technology",
				Columns: []string{"workload", "memory", "central", "hier", "syncron", "ideal"},
			}
			runs := []GraphRun{{"cc", "wk"}, {"pr", "wk"}, {"ts", "pow"}}
			for _, run := range runs {
				for _, tech := range []mem.Tech{mem.HBM, mem.HMC, mem.DDR4} {
					times := map[string]sim.Time{}
					for _, scheme := range Schemes {
						times[scheme] = RunGraph(Spec{Backend: scheme, Mem: tech},
							run, scale, false).Makespan
					}
					row := []string{run.String(), tech.String()}
					for _, scheme := range Schemes {
						row = append(row, f2(float64(times["central"])/float64(times[scheme])))
					}
					t.Rows = append(t.Rows, row)
				}
			}
			t.Notes = "paper: SynCron's edge over Hier grows with memory latency (ts.pow: 1.41x HBM -> 2.49x DDR4)"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig19",
		Paper: "Figure 19",
		Brief: "Effect of better graph partitioning (METIS stand-in) on pagerank",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig19",
				Title:   "pagerank: speedup over Central/no-partitioning; SynCron max ST occupancy",
				Columns: []string{"graph", "partition", "central", "hier", "syncron", "ideal", "maxST"},
			}
			for _, input := range []string{"wk", "sl", "sx", "co"} {
				var base sim.Time
				for _, metis := range []bool{false, true} {
					times := map[string]sim.Time{}
					var stMax float64
					for _, scheme := range Schemes {
						res := RunGraph(Spec{Backend: scheme}, GraphRun{"pr", input}, scale, metis)
						times[scheme] = res.Makespan
						if scheme == "syncron" {
							stMax = res.STMax
						}
					}
					if !metis {
						base = times["central"]
					}
					label := "hash"
					if metis {
						label = "metis-like"
					}
					row := []string{"pr." + input, label}
					for _, scheme := range Schemes {
						row = append(row, f2(float64(base)/float64(times[scheme])))
					}
					row = append(row, pct(stMax))
					t.Rows = append(t.Rows, row)
				}
			}
			t.Notes = "paper: with METIS, SynCron still wins and max ST occupancy drops (62->39% on wk)"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig20",
		Paper: "Figure 20",
		Brief: "SynCron vs flat on low-contention, sync-non-intensive graph workloads",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig20",
				Title:   "Speedup of SynCron normalized to flat (40ns links)",
				Columns: []string{"workload", "syncron/flat"},
			}
			var sum float64
			n := 0
			for _, run := range Combos26() {
				if run.App == "ts" {
					continue // Figure 20 is graphs only
				}
				sc := RunGraph(Spec{Backend: "syncron"}, run, scale, false)
				fl := RunGraph(Spec{Backend: "flat"}, run, scale, false)
				sp := float64(fl.Makespan) / float64(sc.Makespan)
				sum += sp
				n++
				t.Rows = append(t.Rows, []string{run.String(), f2(sp)})
			}
			t.Rows = append(t.Rows, []string{"AVG", f2(sum / float64(n))})
			t.Notes = "paper: SynCron within 1.1% of flat on average in this regime"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig22",
		Paper: "Figure 22",
		Brief: "Performance sensitivity to ST size (64 down to 8 entries)",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "fig22",
				Title:   "Slowdown vs 64-entry ST (and % overflowed requests)",
				Columns: []string{"workload", "ST", "slowdown", "overflowed"},
			}
			results := syncron.Sweep{
				Workloads: names([]GraphRun{{"cc", "wk"}, {"pr", "wk"}, {"ts", "air"}, {"ts", "pow"}}),
				Schemes:   []syncron.Scheme{syncron.SchemeSynCron},
				STEntries: []int{64, 48, 32, 16, 8},
				Base:      syncron.Config{Seed: 1},
				Params:    syncron.WorkloadParams{Scale: scale},
			}.Run()
			for _, r := range syncron.ResultSet(results).Failed() {
				panic(fmt.Sprintf("exp: %s: %s", r.Spec.Workload, r.Err))
			}
			rows, err := syncron.STAblation(results)
			if err != nil {
				panic(fmt.Sprintf("exp: %v", err))
			}
			for _, r := range rows {
				t.Rows = append(t.Rows, []string{r.Workload, fmt.Sprint(r.STEntries),
					f2(r.SlowdownVsLargest), pct(r.Overflowed)})
			}
			t.Notes = "paper: graphs never overflow at 64 entries; ts overflows below 48 entries with small slowdowns"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "table7",
		Paper: "Table 7",
		Brief: "ST occupancy (max and time-weighted average) across all 26 workloads",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "table7",
				Title:   "SynCron ST occupancy in real applications",
				Columns: []string{"workload", "max", "avg"},
			}
			for _, run := range Combos26() {
				res := RunGraph(Spec{Backend: "syncron"}, run, scale, false)
				t.Rows = append(t.Rows, []string{run.String(), pct(res.STMax), pct(res.STMean)})
			}
			t.Notes = "paper: graphs max 46-63%, avg 1.2-6.1%; ts max 84-89%, avg ~44%"
			return []*Table{t}
		},
	})
}
