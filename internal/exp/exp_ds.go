package exp

import (
	"fmt"

	"syncron"
	"syncron/internal/sim"
	"syncron/internal/workloads/ds"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Paper: "Figure 11",
		Brief: "Throughput of the nine pointer-chasing data structures, 15-60 cores, all schemes",
		Run: func(scale float64) []*Table {
			ops := int(40 * scale)
			if ops < 8 {
				ops = 8
			}
			var tables []*Table
			for _, name := range ds.Names() {
				t := &Table{
					ID:      "fig11-" + name,
					Title:   fmt.Sprintf("%s: operations/ms vs NDP cores", name),
					Columns: []string{"cores", "central", "hier", "syncron", "ideal"},
				}
				size := dsSize(name, scale)
				for _, units := range []int{1, 2, 3, 4} {
					row := []string{fmt.Sprint(units * 15)}
					for _, scheme := range Schemes {
						res := RunDS(Spec{Backend: scheme, Units: units, Cores: 15}, name, size, ops)
						row = append(row, f1(res.OpsPerMs()))
					}
					t.Rows = append(t.Rows, row)
				}
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:    "fig16",
		Paper: "Figure 16",
		Brief: "High-contention throughput (stack, priority queue) vs inter-unit link transfer latency",
		Run: func(scale float64) []*Table {
			ops := int(30 * scale)
			if ops < 8 {
				ops = 8
			}
			latencies := []sim.Time{40 * sim.Nanosecond, 100 * sim.Nanosecond,
				200 * sim.Nanosecond, 500 * sim.Nanosecond, 1 * sim.Microsecond,
				2 * sim.Microsecond, 4500 * sim.Nanosecond, 9 * sim.Microsecond}
			var tables []*Table
			for _, name := range []string{"stack", "priorityqueue"} {
				t := &Table{
					ID:      "fig16-" + name,
					Title:   fmt.Sprintf("%s: operations/ms vs inter-unit transfer latency (60 cores)", name),
					Columns: []string{"latency", "central", "hier", "syncron", "ideal"},
				}
				size := dsSize(name, scale)
				for _, lat := range latencies {
					row := []string{lat.String()}
					for _, scheme := range Schemes {
						res := RunDS(Spec{Backend: scheme, Link: lat}, name, size, ops)
						row = append(row, f1(res.OpsPerMs()))
					}
					t.Rows = append(t.Rows, row)
				}
				t.Notes = "paper: SynCron and Hier hide slow links; Central collapses; SynCron beats Hier ~1.04-1.06x"
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:    "fig21",
		Paper: "Figure 21",
		Brief: "SynCron vs flat: (a) time series across link latencies, (b) queue under high contention",
		Run: func(scale float64) []*Table {
			latencies := []sim.Time{40 * sim.Nanosecond, 100 * sim.Nanosecond,
				200 * sim.Nanosecond, 500 * sim.Nanosecond}
			ta := &Table{ID: "fig21a",
				Title:   "Speedup of SynCron over flat, time series (low contention, sync-intensive)",
				Columns: []string{"input", "40ns", "100ns", "200ns", "500ns"},
			}
			for _, input := range []string{"air", "pow"} {
				row := []string{"ts." + input}
				for _, lat := range latencies {
					sc := RunTS(Spec{Backend: "syncron", Link: lat}, input, scale*0.5)
					fl := RunTS(Spec{Backend: "flat", Link: lat}, input, scale*0.5)
					row = append(row, f2(float64(fl.Makespan)/float64(sc.Makespan)))
				}
				ta.Rows = append(ta.Rows, row)
			}
			ta.Notes = "paper: flat slightly wins (SynCron 3.6-7.3% worse) at low contention"

			ops := int(30 * scale)
			if ops < 8 {
				ops = 8
			}
			tb := &Table{ID: "fig21b",
				Title:   "Speedup of SynCron over flat, queue (high contention)",
				Columns: []string{"cores", "40ns", "100ns", "200ns", "500ns"},
			}
			for _, units := range []int{2, 4} {
				row := []string{fmt.Sprint(units * 15)}
				for _, lat := range latencies {
					sc := RunDS(Spec{Backend: "syncron", Units: units, Link: lat}, "queue", dsSize("queue", scale), ops)
					fl := RunDS(Spec{Backend: "flat", Units: units, Link: lat}, "queue", dsSize("queue", scale), ops)
					row = append(row, f2(float64(fl.Makespan)/float64(sc.Makespan)))
				}
				tb.Rows = append(tb.Rows, row)
			}
			tb.Notes = "paper: SynCron beats flat 1.23-2.14x, growing with link latency and core count"
			return []*Table{ta, tb}
		},
	})

	register(&Experiment{
		ID:    "fig23",
		Paper: "Figure 23",
		Brief: "BST_FG throughput under the three overflow schemes, varying ST size",
		Run: func(scale float64) []*Table {
			ops := int(20 * scale)
			if ops < 6 {
				ops = 6
			}
			// Overflow pressure needs a deep tree (many concurrently-held
			// lock-coupling pairs); use a larger size than the shared scale.
			size := dsSize("bst_fg", scale*8)
			t := &Table{ID: "fig23",
				Title:   "BST_FG operations/ms by overflow scheme and ST size (60 cores)",
				Columns: []string{"ST size", "SynCron", "CentralOvrfl", "DistribOvrfl", "overflowed"},
			}
			for _, st := range []int{16, 32, 48, 64, 128, 256} {
				integ := RunDS(Spec{Backend: "syncron", STEntries: st}, "bst_fg", size, ops)
				cen := RunDS(Spec{Backend: "syncron", STEntries: st, Overflow: syncron.OverflowCentral},
					"bst_fg", size, ops)
				dis := RunDS(Spec{Backend: "syncron", STEntries: st, Overflow: syncron.OverflowDistrib},
					"bst_fg", size, ops)
				t.Rows = append(t.Rows, []string{fmt.Sprint(st),
					f1(integ.OpsPerMs()), f1(cen.OpsPerMs()), f1(dis.OpsPerMs()),
					pct(integ.OverflowF)})
			}
			t.Notes = "paper @64 entries (30.5% overflowed): integrated scheme loses 3.2%, CentralOvrfl 12.3%, DistribOvrfl 10.4%"
			return []*Table{t}
		},
	})
}
