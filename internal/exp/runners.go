package exp

import (
	"fmt"

	"syncron"
	"syncron/internal/arch"
	"syncron/internal/mem"
	"syncron/internal/sim"
	"syncron/internal/workloads/graphs"
	"syncron/internal/workloads/ubench"
)

// Spec describes one simulation configuration in experiment shorthand. It is
// a thin veneer over the public syncron.Config: every run is executed
// through the public workload registry and sweep executor, so the harness
// has no scheme or workload dispatch of its own.
type Spec struct {
	Backend string // scheme name; "flat" is accepted for syncron-flat
	Units   int
	Cores   int // cores per unit
	Link    sim.Time
	Mem     mem.Tech

	STEntries int
	Overflow  syncron.OverflowPolicy
	Fairness  int
	SEService int64 // SE service-cycle override (0 = the paper's 12)
	Seed      uint64
}

// Schemes is the Figure order of the four main comparison points.
var Schemes = []string{"central", "hier", "syncron", "ideal"}

// parsedSchemes maps the Schemes figure order onto public Scheme values.
func parsedSchemes() []syncron.Scheme {
	out := make([]syncron.Scheme, len(Schemes))
	for i, name := range Schemes {
		s, err := syncron.ParseScheme(name)
		if err != nil {
			panic(fmt.Sprintf("exp: %v", err))
		}
		out[i] = s
	}
	return out
}

// sweepRegistry runs the (names x Schemes) grid through the public sweep
// engine with the fixed seed the direct runners use, panicking on any
// failure (experiment inputs are trusted). The normalization views the
// tables need (speedup, energy, traffic) are then computed by the public
// analysis layer rather than by hand.
func sweepRegistry(names []string, schemes []syncron.Scheme, scale float64) []syncron.RunResult {
	results := syncron.Sweep{
		Workloads: names,
		Schemes:   schemes,
		Base:      syncron.Config{Seed: 1},
		Params:    syncron.WorkloadParams{Scale: scale},
	}.Run()
	for _, r := range syncron.ResultSet(results).Failed() {
		panic(fmt.Sprintf("exp: %s under %s: %s", r.Spec.Workload, r.Spec.Config.Scheme, r.Err))
	}
	return results
}

// Config translates the shorthand into the public configuration.
func (s Spec) Config() syncron.Config {
	scheme, err := syncron.ParseScheme(s.Backend)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return syncron.Config{
		Scheme:            scheme,
		Units:             s.Units,
		CoresPerUnit:      s.Cores,
		Memory:            s.Mem,
		LinkLatency:       s.Link,
		STEntries:         s.STEntries,
		Overflow:          s.Overflow,
		FairnessThreshold: s.Fairness,
		SEServiceCycles:   s.SEService,
		Seed:              s.Seed,
	}
}

// Result captures everything the experiments report.
type Result struct {
	Makespan  sim.Time
	Ops       uint64
	Energy    arch.Energy
	IntraB    uint64
	InterB    uint64
	STMax     float64
	STMean    float64
	OverflowF float64
}

// MopsPerSec is throughput in million operations per second.
func (r Result) MopsPerSec() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.Ops) / r.Makespan.Seconds() / 1e6
}

// OpsPerMs is throughput in operations per millisecond (Figure 11's unit).
func (r Result) OpsPerMs() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.Ops) / (r.Makespan.Seconds() * 1e3)
}

// execute runs one spec through the public executor; experiment runs are
// trusted inputs, so failures (bad spec, failed functional check) panic.
func execute(spec syncron.RunSpec) Result {
	rr := syncron.Execute(spec)
	if rr.Err != "" {
		panic(fmt.Sprintf("exp: %s under %s: %s", spec.Workload, spec.Config.Scheme, rr.Err))
	}
	return Result{
		Makespan: rr.Makespan,
		Ops:      rr.Ops,
		Energy: arch.Energy{CachePJ: rr.CacheEnergyPJ, NetworkPJ: rr.NetworkEnergyPJ,
			MemoryPJ: rr.MemoryEnergyPJ},
		IntraB:    rr.BytesInsideUnits,
		InterB:    rr.BytesAcrossUnits,
		STMax:     rr.STOccupancyMax,
		STMean:    rr.STOccupancyMean,
		OverflowF: rr.OverflowedFraction,
	}
}

// fromReport converts a public Report for runs driven directly on a System.
func fromReport(rep syncron.Report, ops uint64) Result {
	return Result{
		Makespan: rep.Makespan,
		Ops:      ops,
		Energy: arch.Energy{CachePJ: rep.CacheEnergyPJ, NetworkPJ: rep.NetworkEnergyPJ,
			MemoryPJ: rep.MemoryEnergyPJ},
		IntraB:    rep.BytesInsideUnits,
		InterB:    rep.BytesAcrossUnits,
		STMax:     rep.STOccupancyMax,
		STMean:    rep.STOccupancyMean,
		OverflowF: rep.OverflowedFraction,
	}
}

// RunUbench runs a Figure-10 microbenchmark.
func RunUbench(s Spec, prim ubench.Primitive, interval int64, rounds int) Result {
	return execute(syncron.RunSpec{Workload: string(prim), Config: s.Config(),
		Params: syncron.WorkloadParams{Interval: interval, Rounds: rounds}})
}

// RunDS runs a pointer-chasing data structure benchmark.
func RunDS(s Spec, name string, size, opsPerCore int) Result {
	return execute(syncron.RunSpec{Workload: name, Config: s.Config(),
		Params: syncron.WorkloadParams{Size: size, OpsPerCore: opsPerCore}})
}

// dsSize scales Table-6 sizes; pointer-heavy structures are kept within
// simulation-friendly bounds while preserving their relative shapes.
func dsSize(name string, scale float64) int {
	base := map[string]int{
		"stack": 2048, "queue": 2048, "arraymap": 10, "priorityqueue": 1024,
		"skiplist": 512, "hashtable": 512, "linkedlist": 256, "bst_fg": 512,
		"bst_drachsler": 512,
	}[name]
	n := int(float64(base) * scale)
	if name == "arraymap" {
		return 10
	}
	if n < 32 {
		n = 32
	}
	return n
}

// GraphRun identifies one app-input combination (e.g. "pr", "wk").
type GraphRun struct {
	App, Input string
}

// Combos26 is the paper's 26 application-input combinations of Figure 12.
func Combos26() []GraphRun {
	var out []GraphRun
	for _, app := range graphs.Apps() {
		for _, in := range graphs.Inputs() {
			out = append(out, GraphRun{app, in})
		}
	}
	out = append(out, GraphRun{"ts", "air"}, GraphRun{"ts", "pow"})
	return out
}

// RunGraph runs one graph application (or time series when app == "ts").
func RunGraph(s Spec, run GraphRun, scale float64, metis bool) Result {
	if run.App == "ts" {
		return RunTS(s, run.Input, scale)
	}
	return execute(syncron.RunSpec{Workload: run.App + "." + run.Input, Config: s.Config(),
		Params: syncron.WorkloadParams{Scale: scale, Metis: metis}})
}

// RunTS runs the time-series analysis workload.
func RunTS(s Spec, input string, scale float64) Result {
	return execute(syncron.RunSpec{Workload: "ts." + input, Config: s.Config(),
		Params: syncron.WorkloadParams{Scale: scale}})
}

// RunLockPinned runs an empty-critical-section lock microbenchmark with the
// given threads pinned to specific cores (Table 1 and the fairness ablation);
// pinning is not expressible as a registered workload, so it drives a public
// System directly.
func RunLockPinned(s Spec, pinned []int, rounds int, interval int64) Result {
	sys := syncron.New(s.Config())
	lock := sys.AllocLocal(0, 64)
	for _, c := range pinned {
		sys.SpawnAt(c, func(ctx *syncron.Context) {
			for k := 0; k < rounds; k++ {
				ctx.Lock(lock)
				ctx.Unlock(lock)
				ctx.Compute(interval)
			}
		})
	}
	return fromReport(sys.Run(), uint64(rounds*len(pinned)))
}
