package exp

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/coherlock"
	"syncron/internal/core"
	"syncron/internal/mem"
	"syncron/internal/program"
	"syncron/internal/sim"
	"syncron/internal/workloads/ds"
	"syncron/internal/workloads/graphs"
	"syncron/internal/workloads/tseries"
	"syncron/internal/workloads/ubench"
)

// Spec describes one simulation configuration.
type Spec struct {
	Backend string // central | hier | syncron | flat | ideal | mesi-lock | ttas | htl
	Units   int
	Cores   int // cores per unit
	Link    sim.Time
	Mem     mem.Tech

	STEntries int
	Overflow  core.OverflowPolicy
	Fairness  int
	Seed      uint64
}

// Schemes is the Figure order of the four main comparison points.
var Schemes = []string{"central", "hier", "syncron", "ideal"}

func (s Spec) machine() *arch.Machine {
	cfg := arch.Default()
	if s.Units != 0 {
		cfg.Units = s.Units
	}
	if s.Cores != 0 {
		cfg.CoresPerUnit = s.Cores
	}
	cfg.LinkLatency = s.Link
	cfg.Mem = s.Mem
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	m := arch.NewMachine(cfg)
	m.Backend = s.backend()
	return m
}

func (s Spec) backend() arch.Backend {
	switch s.Backend {
	case "central":
		return baselines.NewCentral()
	case "hier":
		return baselines.NewHier()
	case "ideal":
		return baselines.NewIdeal()
	case "syncron":
		return core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true,
			STEntries: s.STEntries, Overflow: s.Overflow, FairnessThreshold: s.Fairness})
	case "flat":
		return core.NewCoordinator(core.Options{Topology: core.TopoFlat, HardwareSE: true,
			STEntries: s.STEntries, Name: "syncron-flat"})
	case "mesi-lock":
		return coherlock.New(coherlock.MESILock)
	case "ttas":
		return coherlock.New(coherlock.TTAS)
	case "htl":
		return coherlock.New(coherlock.HTL)
	default:
		panic(fmt.Sprintf("exp: unknown backend %q", s.Backend))
	}
}

// Result captures everything the experiments report.
type Result struct {
	Makespan  sim.Time
	Ops       uint64
	Energy    arch.Energy
	IntraB    uint64
	InterB    uint64
	STMax     float64
	STMean    float64
	OverflowF float64
}

// MopsPerSec is throughput in million operations per second.
func (r Result) MopsPerSec() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.Ops) / r.Makespan.Seconds() / 1e6
}

// OpsPerMs is throughput in operations per millisecond (Figure 11's unit).
func (r Result) OpsPerMs() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.Ops) / (r.Makespan.Seconds() * 1e3)
}

func collect(m *arch.Machine, makespan sim.Time, ops uint64) Result {
	res := Result{Makespan: makespan, Ops: ops, Energy: m.EnergyBreakdown()}
	res.IntraB, res.InterB = m.DataMovement()
	if bs, ok := m.Backend.(arch.BackendStats); ok {
		res.STMax, res.STMean = bs.STOccupancy()
		res.OverflowF = bs.OverflowedFraction()
	}
	return res
}

// RunUbench runs a Figure-10 microbenchmark.
func RunUbench(s Spec, prim ubench.Primitive, interval int64, rounds int) Result {
	m := s.machine()
	r := program.NewRunner(m)
	ubench.Build(m, r, ubench.Config{Primitive: prim, Interval: interval, Rounds: rounds})
	t := r.Run()
	return collect(m, t, uint64(rounds*m.NumCores()))
}

// RunDS runs a pointer-chasing data structure benchmark.
func RunDS(s Spec, name string, size, opsPerCore int) Result {
	m := s.machine()
	rng := sim.NewRNG(m.Cfg.Seed + 100)
	d := ds.New(name, m, ds.Config{Size: size}, rng)
	r := program.NewRunner(m)
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < opsPerCore; k++ {
				d.Op(ctx, ctx.RNG)
			}
		}
	})
	t := r.Run()
	if err := d.Check(); err != nil {
		panic(fmt.Sprintf("exp: %s failed functional check under %s: %v", name, s.Backend, err))
	}
	return collect(m, t, uint64(opsPerCore*m.NumCores()))
}

// dsSize scales Table-6 sizes; pointer-heavy structures are kept within
// simulation-friendly bounds while preserving their relative shapes.
func dsSize(name string, scale float64) int {
	base := map[string]int{
		"stack": 2048, "queue": 2048, "arraymap": 10, "priorityqueue": 1024,
		"skiplist": 512, "hashtable": 512, "linkedlist": 256, "bst_fg": 512,
		"bst_drachsler": 512,
	}[name]
	n := int(float64(base) * scale)
	if name == "arraymap" {
		return 10
	}
	if n < 32 {
		n = 32
	}
	return n
}

// GraphRun identifies one app-input combination (e.g. "pr", "wk").
type GraphRun struct {
	App, Input string
}

// Combos26 is the paper's 26 application-input combinations of Figure 12.
func Combos26() []GraphRun {
	var out []GraphRun
	for _, app := range graphs.Apps() {
		for _, in := range graphs.Inputs() {
			out = append(out, GraphRun{app, in})
		}
	}
	out = append(out, GraphRun{"ts", "air"}, GraphRun{"ts", "pow"})
	return out
}

// RunGraph runs one graph application (or time series when app == "ts").
func RunGraph(s Spec, run GraphRun, scale float64, metis bool) Result {
	if run.App == "ts" {
		return RunTS(s, run.Input, scale)
	}
	m := s.machine()
	g := graphs.Load(run.Input, scale)
	var part graphs.Partition
	if metis {
		part = graphs.GreedyPartition(g, m.Cfg.Units)
	} else {
		part = graphs.HashPartition(g, m.Cfg.Units)
	}
	ly := graphs.NewLayout(m, g, part)
	a := graphs.NewApp(m, ly, graphs.RunConfig{App: run.App, Graph: g, Part: part})
	r := program.NewRunner(m)
	a.Build(m, r)
	t := r.Run()
	if err := a.Check(); err != nil {
		panic(fmt.Sprintf("exp: %s.%s failed functional check under %s: %v",
			run.App, run.Input, s.Backend, err))
	}
	return collect(m, t, uint64(g.M))
}

// runTSWithSECycles runs ts with a SynCron backend whose SE service time is
// overridden (ablation-seservice).
func runTSWithSECycles(s Spec, input string, scale float64, cycles int64) Result {
	cfg := arch.Default()
	if s.Units != 0 {
		cfg.Units = s.Units
	}
	m := arch.NewMachine(cfg)
	m.Backend = core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true,
		SEServiceCycles: cycles})
	series := tseries.Load(input, scale)
	w := tseries.New(m, series)
	r := program.NewRunner(m)
	w.Build(m, r)
	t := r.Run()
	if err := w.Check(); err != nil {
		panic(fmt.Sprintf("exp: ts.%s failed functional check: %v", input, err))
	}
	return collect(m, t, uint64(series.Profiles()))
}

// RunTS runs the time-series analysis workload.
func RunTS(s Spec, input string, scale float64) Result {
	m := s.machine()
	series := tseries.Load(input, scale)
	w := tseries.New(m, series)
	r := program.NewRunner(m)
	w.Build(m, r)
	t := r.Run()
	if err := w.Check(); err != nil {
		panic(fmt.Sprintf("exp: ts.%s failed functional check under %s: %v", input, s.Backend, err))
	}
	return collect(m, t, uint64(series.Profiles()))
}
