package exp

import (
	"fmt"

	"syncron/internal/hwmodel"
)

func init() {
	register(&Experiment{
		ID:    "table8",
		Paper: "Table 8",
		Brief: "SE area/power vs an ARM Cortex-A7 (analytic SRAM/logic model at 40nm)",
		Run: func(scale float64) []*Table {
			se := hwmodel.DefaultSE()
			est := se.Estimate()
			t := &Table{ID: "table8",
				Title:   "Synchronization Engine hardware cost",
				Columns: []string{"component", "bytes", "area (mm^2)", "power (mW)"},
				Rows: [][]string{
					{"SPU (logic)", "-", fmt.Sprintf("%.4f", est.SPUAreaMM2), fmt.Sprintf("%.2f", est.SPUPowerMW)},
					{"ST (64 x 149b)", fmt.Sprint(se.STBytes()), fmt.Sprintf("%.4f", est.STAreaMM2), fmt.Sprintf("%.2f", est.STPowerMW)},
					{"Indexing counters (256)", fmt.Sprint(se.CounterBytes()), fmt.Sprintf("%.4f", est.CountersAreaMM2), fmt.Sprintf("%.2f", est.CountersPowerMW)},
					{"SE total", "-", fmt.Sprintf("%.4f", est.TotalAreaMM2()), fmt.Sprintf("%.2f", est.TotalPowerMW())},
					{"ARM Cortex-A7 (28nm, 32KB L1)", "-", "0.4500", "100.00"},
				},
				Notes: "paper: SPU 0.0141, ST 0.0112, counters 0.0208, total 0.0461 mm^2 @40nm; 2.7mW",
			}
			return []*Table{t}
		},
	})
}
