package exp

import (
	"fmt"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Paper: "Table 1",
		Brief: "Throughput of coherence-based lock algorithms (TTAS, Hierarchical Ticket Lock) on a simulated 2-socket NUMA machine",
		Run: func(scale float64) []*Table {
			rounds := int(400 * scale)
			if rounds < 40 {
				rounds = 40
			}
			// Two sockets x 14 cores, like the Intel Xeon Gold server.
			base := Spec{Units: 2, Cores: 14}
			cases := []struct {
				label  string
				pinned []int
			}{
				{"1 thread", []int{0}},
				{"14 threads single-socket", seq(0, 14)},
				{"2 threads same-socket", []int{0, 1}},
				{"2 threads different-socket", []int{0, 14}},
			}
			t := &Table{ID: "table1",
				Title:   "Million lock operations per second (coherence-based locks, 2-socket NUMA)",
				Columns: append([]string{"algorithm"}, labels(cases)...),
			}
			for _, alg := range []string{"ttas", "htl"} {
				row := []string{alg}
				for _, c := range cases {
					s := base
					s.Backend = alg
					res := RunLockPinned(s, c.pinned, rounds, 60)
					row = append(row, f2(res.MopsPerSec()))
				}
				t.Rows = append(t.Rows, row)
			}
			t.Notes = "paper (real Xeon): TTAS 8.92/2.28/9.91/4.32; HTL 8.06/2.91/9.01/6.79 Mops/s — expect the same qualitative drops, not the same absolute numbers"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig2",
		Paper: "Figure 2",
		Brief: "Slowdown of a lock-based stack with a MESI coherence lock vs an ideal zero-cost lock",
		Run: func(scale float64) []*Table {
			ops := int(60 * scale)
			if ops < 10 {
				ops = 10
			}
			size := dsSize("stack", scale)

			runStack := func(s Spec) Result {
				return RunDS(s, "stack", size, ops)
			}
			ta := &Table{ID: "fig2a",
				Title:   "Stack slowdown (mesi-lock / ideal-lock), single NDP unit",
				Columns: []string{"NDP cores", "ideal-lock", "mesi-lock", "slowdown"},
			}
			for _, cores := range []int{15, 30, 45, 60} {
				ideal := runStack(Spec{Backend: "ideal", Units: 1, Cores: cores})
				mesi := runStack(Spec{Backend: "mesi-lock", Units: 1, Cores: cores})
				ta.Rows = append(ta.Rows, []string{
					fmt.Sprint(cores), ideal.Makespan.String(), mesi.Makespan.String(),
					f2(float64(mesi.Makespan) / float64(ideal.Makespan))})
			}
			ta.Notes = "paper: slowdown grows with cores, 2.03x at 60 cores"

			tb := &Table{ID: "fig2b",
				Title:   "Stack slowdown (mesi-lock / ideal-lock), 60 cores across NDP units",
				Columns: []string{"NDP units", "ideal-lock", "mesi-lock", "slowdown"},
			}
			for _, units := range []int{1, 2, 3, 4} {
				ideal := runStack(Spec{Backend: "ideal", Units: units, Cores: 60 / units})
				mesi := runStack(Spec{Backend: "mesi-lock", Units: units, Cores: 60 / units})
				tb.Rows = append(tb.Rows, []string{
					fmt.Sprint(units), ideal.Makespan.String(), mesi.Makespan.String(),
					f2(float64(mesi.Makespan) / float64(ideal.Makespan))})
			}
			tb.Notes = "paper: slowdown grows with units, 2.66x at 4 units"
			return []*Table{ta, tb}
		},
	})
}

func seq(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func labels[T any](cases []struct {
	label  string
	pinned T
}) []string {
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.label
	}
	return out
}
