package exp

import (
	"fmt"
)

// Ablation experiments for the design choices DESIGN.md calls out beyond the
// paper's own figures: the §4.4.2 lock-fairness threshold (which the paper
// leaves to future work) and the sensitivity of the headline result to the
// SE's per-message service time (the 12-cycle assumption of §5).

func init() {
	register(&Experiment{
		ID:    "ablation-fairness",
		Paper: "§4.4.2",
		Brief: "Lock-fairness threshold sweep: throughput vs per-unit grant batching on a contended lock",
		Run: func(scale float64) []*Table {
			rounds := int(200 * scale)
			if rounds < 20 {
				rounds = 20
			}
			t := &Table{ID: "ablation-fairness",
				Title:   "Contended lock: makespan and max per-core finish skew vs fairness threshold",
				Columns: []string{"threshold", "makespan", "Mops/s", "skew"},
			}
			for _, th := range []int{0, 1, 2, 4, 8, 16, 64} {
				res := RunLockPinned(Spec{Backend: "syncron", Fairness: th},
					seq(0, 60), rounds, 60)
				// skew: unfairness shows up as spread between core finishes —
				// approximated by makespan over the mean (Ops/rounds) rate.
				t.Rows = append(t.Rows, []string{fmt.Sprint(th), res.Makespan.String(),
					f2(res.MopsPerSec()), f2(res.STMax)})
			}
			t.Notes = "threshold 0 disables transfers (max batching); small thresholds trade throughput for fairness, as §4.4.2 predicts"
			return []*Table{t}
		},
	})

	register(&Experiment{
		ID:    "ablation-seservice",
		Paper: "§5 (SE model)",
		Brief: "Sensitivity of SynCron's gains to the SE per-message service time (paper assumes 12 SE cycles)",
		Run: func(scale float64) []*Table {
			t := &Table{ID: "ablation-seservice",
				Title:   "ts.air speedup over Central vs SE service cycles",
				Columns: []string{"SE cycles", "syncron/central"},
			}
			central := RunTS(Spec{Backend: "central"}, "air", scale)
			for _, cyc := range []int64{4, 8, 12, 24, 48} {
				res := RunTS(Spec{Backend: "syncron", SEService: cyc}, "air", scale)
				t.Rows = append(t.Rows, []string{fmt.Sprint(cyc),
					f2(float64(central.Makespan) / float64(res.Makespan))})
			}
			t.Notes = "the paper's conclusion is robust while the SE stays cheaper than a software handler (~60 instructions + cache accesses)"
			return []*Table{t}
		},
	})
}
