package exp

import (
	"fmt"

	"syncron/internal/sim"
	"syncron/internal/workloads/ubench"
)

func init() {
	register(&Experiment{
		ID:    "fig10",
		Paper: "Figure 10",
		Brief: "Speedup of the four synchronization primitives vs instruction interval (60 cores, single variable)",
		Run: func(scale float64) []*Table {
			rounds := int(60 * scale)
			if rounds < 10 {
				rounds = 10
			}
			intervals := map[ubench.Primitive][]int64{
				ubench.Lock:      {50, 100, 200, 400, 1000, 2000, 5000},
				ubench.Barrier:   {20, 50, 100, 200, 500, 1000, 2000},
				ubench.Semaphore: {100, 200, 400, 1000, 2000, 5000, 10000},
				ubench.CondVar:   {200, 400, 1000, 2000, 5000, 10000, 50000},
			}
			var tables []*Table
			for _, prim := range ubench.Primitives() {
				t := &Table{
					ID:      "fig10-" + string(prim),
					Title:   fmt.Sprintf("%s: speedup vs Central, varying instructions between sync points", prim),
					Columns: []string{"interval", "central", "hier", "syncron", "ideal"},
				}
				for _, iv := range intervals[prim] {
					times := map[string]sim.Time{}
					for _, scheme := range Schemes {
						res := RunUbench(Spec{Backend: scheme}, prim, iv, rounds)
						times[scheme] = res.Makespan
					}
					row := []string{fmt.Sprint(iv)}
					for _, scheme := range Schemes {
						row = append(row, f2(float64(times["central"])/float64(times[scheme])))
					}
					t.Rows = append(t.Rows, row)
				}
				t.Notes = "paper @200 instr: SynCron outperforms Central 3.05x and Hier 1.40x on average across primitives"
				tables = append(tables, t)
			}
			return tables
		},
	})
}
