package exp

import (
	"strings"
	"testing"

	"syncron/internal/sim"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table1", "fig2", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"fig23", "table7", "table8", "ablation-fairness", "ablation-seservice"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: "n"}
	out := tb.Format()
	for _, want := range []string{"== x: t ==", "a  bb", "1  2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestCombos26(t *testing.T) {
	c := Combos26()
	if len(c) != 26 {
		t.Fatalf("Combos26 has %d entries, want 26 (Figure 12)", len(c))
	}
	if c[24].App != "ts" || c[25].App != "ts" {
		t.Fatal("time series combos missing")
	}
}

// TestShapeFig10 checks the paper's primitive-benchmark ordering at tiny
// scale: Ideal >= SynCron >= Hier >= Central for small intervals.
func TestShapeFig10(t *testing.T) {
	times := map[string]float64{}
	for _, scheme := range Schemes {
		res := RunUbench(Spec{Backend: scheme, Units: 2, Cores: 8}, "lock", 100, 15)
		times[scheme] = float64(res.Makespan)
	}
	if !(times["ideal"] <= times["syncron"] && times["syncron"] <= times["hier"] &&
		times["hier"] <= times["central"]) {
		t.Fatalf("fig10 ordering violated: %v", times)
	}
}

// TestShapeFig15 checks SynCron moves less data across units than Central.
func TestShapeFig15(t *testing.T) {
	c := RunGraph(Spec{Backend: "central"}, GraphRun{"pr", "wk"}, 0.05, false)
	s := RunGraph(Spec{Backend: "syncron"}, GraphRun{"pr", "wk"}, 0.05, false)
	if s.InterB >= c.InterB {
		t.Fatalf("syncron inter-unit bytes %d not below central %d", s.InterB, c.InterB)
	}
}

// TestShapeFig22 checks that shrinking the ST induces overflow and slowdown
// on the sync-intensive time-series workload.
func TestShapeFig22(t *testing.T) {
	big := RunTS(Spec{Backend: "syncron", STEntries: 64}, "air", 0.15)
	small := RunTS(Spec{Backend: "syncron", STEntries: 4}, "air", 0.15)
	if small.OverflowF == 0 {
		t.Fatal("4-entry ST did not overflow on ts.air")
	}
	if small.Makespan <= big.Makespan {
		t.Fatalf("overflowing ST (%v) not slower than 64-entry (%v)", small.Makespan, big.Makespan)
	}
}

// TestShapeTable1 checks the NUMA penalty reproduces.
func TestShapeTable1(t *testing.T) {
	base := Spec{Backend: "ttas", Units: 2, Cores: 14}
	same := RunLockPinned(base, []int{0, 1}, 40, 60)
	diff := RunLockPinned(base, []int{0, 14}, 40, 60)
	if diff.MopsPerSec() >= same.MopsPerSec() {
		t.Fatalf("cross-socket throughput %.2f not below same-socket %.2f",
			diff.MopsPerSec(), same.MopsPerSec())
	}
}

// TestShapeFig21b checks SynCron beats flat under high contention with slow
// links.
func TestShapeFig21b(t *testing.T) {
	link := 500 * sim.Nanosecond
	sc := RunDS(Spec{Backend: "syncron", Link: link}, "queue", 128, 10)
	fl := RunDS(Spec{Backend: "flat", Link: link}, "queue", 128, 10)
	if sc.Makespan >= fl.Makespan {
		t.Fatalf("syncron (%v) not faster than flat (%v) on contended queue with %v links",
			sc.Makespan, fl.Makespan, link)
	}
}
