// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) as printable tables. Each experiment
// is registered under the paper's table/figure id and accepts a scale factor
// that shrinks workloads proportionally (1.0 = the repository's default
// size; the paper's absolute sizes are larger but shape-equivalent).
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string // e.g. "fig12"
	Paper string // e.g. "Figure 12"
	Brief string
	Run   func(scale float64) []*Table
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs returns all experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns all experiments in id order.
func All() []*Experiment {
	var out []*Experiment
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
