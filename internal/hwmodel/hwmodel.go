// Package hwmodel provides the analytic area/power model behind Table 8: the
// paper estimated the SPU with Aladdin and the SRAM structures with CACTI at
// 40nm; we reproduce the same arithmetic with per-byte SRAM constants
// calibrated to published 40nm CACTI outputs, so the component composition
// (and hence the conclusion — an SE is ~10x smaller and ~37x lower-power
// than even a Cortex-A7) regenerates from structure sizes.
package hwmodel

// SEConfig describes a Synchronization Engine's hardware structures.
type SEConfig struct {
	STEntries    int // Synchronization Table entries
	STEntryBits  int // bits per entry (Figure 7: 64+4+16+1+64 = 149)
	Counters     int // indexing counters
	CounterBits  int // bits per counter (address tag + count)
	BufferBytes  int // SPU message buffer
	RegisterBits int // SPU registers (8 x 64)
}

// DefaultSE is the paper's configuration (§4.2, Table 5).
func DefaultSE() SEConfig {
	return SEConfig{STEntries: 64, STEntryBits: 149, Counters: 256, CounterBits: 72,
		BufferBytes: 280, RegisterBits: 8 * 64}
}

// STBytes returns the ST capacity in bytes (paper: 1192 B).
func (c SEConfig) STBytes() int { return c.STEntries * c.STEntryBits / 8 }

// CounterBytes returns the indexing-counter capacity in bytes (paper: 2304 B).
func (c SEConfig) CounterBytes() int { return c.Counters * c.CounterBits / 8 }

// Estimate is the area/power breakdown.
type Estimate struct {
	SPUAreaMM2      float64
	STAreaMM2       float64
	CountersAreaMM2 float64
	SPUPowerMW      float64
	STPowerMW       float64
	CountersPowerMW float64
}

// TotalAreaMM2 returns the summed area.
func (e Estimate) TotalAreaMM2() float64 { return e.SPUAreaMM2 + e.STAreaMM2 + e.CountersAreaMM2 }

// TotalPowerMW returns the summed power.
func (e Estimate) TotalPowerMW() float64 { return e.SPUPowerMW + e.STPowerMW + e.CountersPowerMW }

// 40nm SRAM constants calibrated against CACTI 6.5 small-array outputs: area
// ~9.2e-6 mm^2/byte including peripherals for KB-scale arrays; leakage +
// access power ~0.55 uW/byte at 1 GHz low activity.
const (
	sramAreaPerByte  = 9.2e-6
	sramPowerPerByte = 0.55e-3
	// SPU: control FSM + bitwise ALU + buffer, dominated by the buffer and
	// registers; Aladdin reported 0.0141 mm^2 / ~1.5 mW for the paper's SPU.
	spuLogicArea  = 0.0105
	spuLogicPower = 0.9
)

// Estimate computes the breakdown from structure sizes.
func (c SEConfig) Estimate() Estimate {
	bufBytes := float64(c.BufferBytes) + float64(c.RegisterBits)/8
	return Estimate{
		SPUAreaMM2:      spuLogicArea + bufBytes*sramAreaPerByte,
		STAreaMM2:       float64(c.STBytes()) * sramAreaPerByte,
		CountersAreaMM2: float64(c.CounterBytes()) * sramAreaPerByte,
		SPUPowerMW:      spuLogicPower + bufBytes*sramPowerPerByte,
		STPowerMW:       float64(c.STBytes()) * sramPowerPerByte,
		CountersPowerMW: float64(c.CounterBytes()) * sramPowerPerByte,
	}
}
