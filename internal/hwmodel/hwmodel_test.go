package hwmodel

import "testing"

func TestStructureSizesMatchPaper(t *testing.T) {
	se := DefaultSE()
	if got := se.STBytes(); got != 1192 {
		t.Fatalf("ST bytes = %d, want 1192 (Table 5)", got)
	}
	if got := se.CounterBytes(); got != 2304 {
		t.Fatalf("counter bytes = %d, want 2304 (Table 5)", got)
	}
}

func TestAreaWithinPaperBallpark(t *testing.T) {
	est := DefaultSE().Estimate()
	// Paper (Table 8): SPU 0.0141, ST 0.0112, counters 0.0208, total 0.0461 mm^2.
	within := func(got, want, tol float64) bool {
		return got > want*(1-tol) && got < want*(1+tol)
	}
	if !within(est.STAreaMM2, 0.0112, 0.25) {
		t.Errorf("ST area %.4f vs paper 0.0112", est.STAreaMM2)
	}
	if !within(est.CountersAreaMM2, 0.0208, 0.25) {
		t.Errorf("counter area %.4f vs paper 0.0208", est.CountersAreaMM2)
	}
	if !within(est.TotalAreaMM2(), 0.0461, 0.25) {
		t.Errorf("total area %.4f vs paper 0.0461", est.TotalAreaMM2())
	}
	// ~10x smaller than a Cortex-A7 (0.45 mm^2).
	if est.TotalAreaMM2() > 0.45/5 {
		t.Errorf("SE area %.4f not far below Cortex-A7", est.TotalAreaMM2())
	}
}

func TestPowerWithinPaperBallpark(t *testing.T) {
	est := DefaultSE().Estimate()
	// Paper: 2.7 mW total vs 100 mW for a Cortex-A7.
	if est.TotalPowerMW() < 1 || est.TotalPowerMW() > 8 {
		t.Errorf("SE power %.2f mW outside the paper's few-mW ballpark", est.TotalPowerMW())
	}
	if est.TotalPowerMW() > 100/10 {
		t.Errorf("SE power %.2f mW not far below Cortex-A7's 100 mW", est.TotalPowerMW())
	}
}

func TestEstimateScalesWithEntries(t *testing.T) {
	small := SEConfig{STEntries: 16, STEntryBits: 149, Counters: 256, CounterBits: 72,
		BufferBytes: 280, RegisterBits: 512}
	big := SEConfig{STEntries: 256, STEntryBits: 149, Counters: 256, CounterBits: 72,
		BufferBytes: 280, RegisterBits: 512}
	if small.Estimate().STAreaMM2 >= big.Estimate().STAreaMM2 {
		t.Fatal("ST area did not scale with entry count")
	}
}
