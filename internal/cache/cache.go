// Package cache models the private L1 data cache of an NDP core: 16 KB,
// 2-way set-associative, 64 B lines, LRU replacement, 4-cycle hits (Table 5).
//
// Coherence is software-assisted (paper §2.1): only thread-private and
// shared read-only data may be cached; shared read-write data bypasses the
// cache entirely. The cacheability decision is made by the caller (the
// machine model knows the sharing class of each allocation).
package cache

import "syncron/internal/sim"

// LineSize is the cache line size in bytes.
const LineSize = 64

// Config describes an L1 cache geometry.
type Config struct {
	SizeBytes int
	Ways      int
	HitCycles int64 // latency of a hit in core cycles

	// Energy per access (Table 5: 23 pJ hit, 47 pJ miss).
	HitEnergyPJ  float64
	MissEnergyPJ float64
}

// DefaultConfig is the paper's L1D: 16 KB, 2-way, 4-cycle hit.
func DefaultConfig() Config {
	return Config{SizeBytes: 16 * 1024, Ways: 2, HitCycles: 4,
		HitEnergyPJ: 23, MissEnergyPJ: 47}
}

// Stats counts cache activity.
type Stats struct {
	Hits       sim.Counter
	Misses     sim.Counter
	Writebacks sim.Counter
	Bypasses   sim.Counter // uncacheable accesses
}

// EnergyPJ returns total cache energy under cfg.
func (s *Stats) EnergyPJ(cfg Config) float64 {
	return float64(s.Hits.Value())*cfg.HitEnergyPJ + float64(s.Misses.Value())*cfg.MissEnergyPJ
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a single L1 cache instance.
type Cache struct {
	cfg   Config
	sets  [][]way
	nsets uint64
	ticks uint64
	Stats Stats
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	nsets := cfg.SizeBytes / (LineSize * cfg.Ways)
	if nsets <= 0 {
		nsets = 1
	}
	sets := make([][]way, nsets)
	backing := make([]way, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, nsets: uint64(nsets)}
}

// Result reports the outcome of a cache access.
type Result struct {
	Hit           bool
	Writeback     bool   // a dirty victim must be written back
	VictimAddr    uint64 // line address of the victim (valid if Writeback)
	LatencyCycles int64  // core cycles consumed inside the cache
}

// Access performs a load (write=false) or store (write=true) of the line
// containing addr, updating LRU and dirty state. On a miss the line is
// allocated (write-allocate) and the victim is reported.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.ticks++
	line := addr / LineSize
	set := line % c.nsets
	tag := line / c.nsets
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].lru = c.ticks
			if write {
				ws[i].dirty = true
			}
			c.Stats.Hits.Inc()
			return Result{Hit: true, LatencyCycles: c.cfg.HitCycles}
		}
	}
	// Miss: pick the LRU way (or an invalid one).
	victim := 0
	for i := 1; i < len(ws); i++ {
		if !ws[i].valid {
			victim = i
			break
		}
		if ws[victim].valid && ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	res := Result{LatencyCycles: c.cfg.HitCycles}
	if ws[victim].valid && ws[victim].dirty {
		res.Writeback = true
		res.VictimAddr = (ws[victim].tag*c.nsets + set) * LineSize
		c.Stats.Writebacks.Inc()
	}
	ws[victim] = way{tag: tag, valid: true, dirty: write, lru: c.ticks}
	c.Stats.Misses.Inc()
	return res
}

// Probe predicts what Access(addr, write) would do — hit or miss, and on a
// miss whether a dirty victim would be written back and from which line
// address — without touching LRU, dirty bits, or statistics. As long as no
// other access intervenes, a subsequent Access returns exactly the predicted
// outcome; the program layer uses this to decide which simulation unit owns
// the rest of the access before performing it.
func (c *Cache) Probe(addr uint64, write bool) Result {
	line := addr / LineSize
	set := line % c.nsets
	tag := line / c.nsets
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return Result{Hit: true, LatencyCycles: c.cfg.HitCycles}
		}
	}
	victim := 0
	for i := 1; i < len(ws); i++ {
		if !ws[i].valid {
			victim = i
			break
		}
		if ws[victim].valid && ws[i].lru < ws[victim].lru {
			victim = i
		}
	}
	res := Result{LatencyCycles: c.cfg.HitCycles}
	if ws[victim].valid && ws[victim].dirty {
		res.Writeback = true
		res.VictimAddr = (ws[victim].tag*c.nsets + set) * LineSize
	}
	return res
}

// Bypass records an uncacheable access for statistics.
func (c *Cache) Bypass() { c.Stats.Bypasses.Inc() }

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool {
	line := addr / LineSize
	set := line % c.nsets
	tag := line / c.nsets
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache, returning the number of dirty lines
// dropped (the model does not simulate flush traffic; used between phases).
func (c *Cache) Flush() int {
	dirty := 0
	for _, ws := range c.sets {
		for i := range ws {
			if ws[i].valid && ws[i].dirty {
				dirty++
			}
			ws[i] = way{}
		}
	}
	return dirty
}
