package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterMiss(t *testing.T) {
	c := New(DefaultConfig())
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if r := c.Access(0x103F, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	// Next line.
	if r := c.Access(0x1040, false); r.Hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := DefaultConfig() // 2-way, 128 sets
	c := New(cfg)
	nsets := uint64(cfg.SizeBytes / (LineSize * cfg.Ways))
	a := uint64(0)
	b := a + nsets*LineSize   // same set, different tag
	d := a + 2*nsets*LineSize // same set, third tag
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("MRU or new line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	nsets := uint64(cfg.SizeBytes / (LineSize * cfg.Ways))
	a := uint64(0x40)
	c.Access(a, true) // dirty
	c.Access(a+nsets*LineSize, false)
	r := c.Access(a+2*nsets*LineSize, false) // evicts a (LRU, dirty)
	if !r.Writeback {
		t.Fatal("dirty eviction did not report writeback")
	}
	if r.VictimAddr/LineSize != a/LineSize {
		t.Fatalf("victim %#x, want line of %#x", r.VictimAddr, a)
	}
	if c.Stats.Writebacks.Value() != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks.Value())
	}
}

func TestFlush(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(0x80, true)
	c.Access(0x100, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush dropped %d dirty lines, want 1", dirty)
	}
	if c.Contains(0x80) || c.Contains(0x100) {
		t.Fatal("lines survived flush")
	}
}

// Property: Contains(addr) is true immediately after any access, and stats
// counters match accesses.
func TestAccessContainsProperty(t *testing.T) {
	c := New(DefaultConfig())
	n := 0
	if err := quick.Check(func(addr uint64, write bool) bool {
		addr %= 1 << 30
		c.Access(addr, write)
		n++
		ok := c.Contains(addr)
		total := c.Stats.Hits.Value() + c.Stats.Misses.Value()
		return ok && total == uint64(n)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache never holds more lines than its capacity.
func TestCapacityProperty(t *testing.T) {
	cfg := Config{SizeBytes: 1024, Ways: 2, HitCycles: 1}
	c := New(cfg)
	capacity := cfg.SizeBytes / LineSize
	if err := quick.Check(func(addrs []uint64) bool {
		resident := map[uint64]bool{}
		for _, a := range addrs {
			a %= 1 << 20
			c.Access(a, false)
		}
		// Count resident lines by probing all touched lines.
		for _, a := range addrs {
			a %= 1 << 20
			if c.Contains(a) {
				resident[a/LineSize] = true
			}
		}
		return len(resident) <= capacity
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	c.Access(0, false) // miss: 47 pJ
	c.Access(0, false) // hit: 23 pJ
	want := cfg.MissEnergyPJ + cfg.HitEnergyPJ
	if got := c.Stats.EnergyPJ(cfg); got != want {
		t.Fatalf("energy = %f, want %f", got, want)
	}
}
