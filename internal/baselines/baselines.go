// Package baselines provides the synchronization schemes SynCron is
// evaluated against (paper §5, "Comparison Points"):
//
//   - Central: one NDP core in the entire system acts as a synchronization
//     server (an all-primitives extension of Tesseract's message-passing
//     barrier). All other cores exchange hardware messages with it, and it
//     accesses synchronization variables through its memory hierarchy.
//   - Hier: one server NDP core per NDP unit (like Gao et al.'s hierarchical
//     tree barrier and pLock): local servers aggregate their unit's requests
//     and coordinate with the master server of each variable.
//   - Ideal: a scheme with zero performance overhead for synchronization,
//     used as the upper bound.
package baselines

import (
	"syncron/internal/arch"
	"syncron/internal/core"
	"syncron/internal/sim"
)

// NewCentral returns the Central baseline.
func NewCentral() arch.Backend {
	return core.NewCoordinator(core.Options{Topology: core.TopoCentral, HardwareSE: false, Name: "central"})
}

// NewHier returns the Hier baseline.
func NewHier() arch.Backend {
	return core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: false, Name: "hier"})
}

// Ideal is the zero-overhead synchronization scheme: requests are granted
// with no latency, traffic, or occupancy — but with full semantics, so
// mutual exclusion, barrier counts, semaphore counts and condition queues
// still behave correctly.
type Ideal struct {
	m *arch.Machine

	locks map[uint64]*idealLock
	bars  map[uint64]*idealBarrier
	sems  map[uint64]*idealSem
	conds map[uint64][]idealCondWaiter
}

type idealLock struct {
	held  bool
	queue []func(sim.Time)
}

type idealBarrier struct {
	arrived int
	waiters []func(sim.Time)
}

type idealSem struct {
	init  bool
	count int
	queue []func(sim.Time)
}

type idealCondWaiter struct {
	lock uint64
	done func(sim.Time)
}

// NewIdeal returns the Ideal scheme.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements arch.Backend.
func (b *Ideal) Name() string { return "ideal" }

// Attach implements arch.Backend.
func (b *Ideal) Attach(m *arch.Machine) {
	b.m = m
	b.locks = make(map[uint64]*idealLock)
	b.bars = make(map[uint64]*idealBarrier)
	b.sems = make(map[uint64]*idealSem)
	b.conds = make(map[uint64][]idealCondWaiter)
}

// ExtraCacheEnergyPJ implements arch.Backend.
func (b *Ideal) ExtraCacheEnergyPJ() float64 { return 0 }

// Request implements arch.Backend.
func (b *Ideal) Request(t sim.Time, coreID int, req arch.SyncReq, done func(sim.Time)) {
	at := func(f func(sim.Time)) {
		// Defer through the event queue so grants interleave with other
		// events at the same timestamp deterministically. The engine invokes f
		// with t, so no adapter closure is needed.
		b.m.Engine.Schedule(t, f)
	}
	switch req.Op {
	case arch.OpLockAcquire:
		l := b.lock(req.Addr)
		if !l.held {
			l.held = true
			at(done)
			return
		}
		l.queue = append(l.queue, done)
	case arch.OpLockRelease:
		at(done)
		b.unlock(t, req.Addr)
	case arch.OpBarrierWithinUnit, arch.OpBarrierAcrossUnits:
		bar, ok := b.bars[req.Addr]
		if !ok {
			bar = &idealBarrier{}
			b.bars[req.Addr] = bar
		}
		bar.arrived++
		bar.waiters = append(bar.waiters, done)
		if bar.arrived >= int(req.Info) {
			ws := bar.waiters
			delete(b.bars, req.Addr)
			for _, w := range ws {
				at(w)
			}
		}
	case arch.OpSemWait:
		s, ok := b.sems[req.Addr]
		if !ok {
			s = &idealSem{init: true, count: int(req.Info)}
			b.sems[req.Addr] = s
		}
		if s.count > 0 {
			s.count--
			at(done)
			return
		}
		s.queue = append(s.queue, done)
	case arch.OpSemPost:
		at(done)
		s, ok := b.sems[req.Addr]
		if !ok {
			s = &idealSem{init: true}
			b.sems[req.Addr] = s
		}
		if len(s.queue) > 0 {
			w := s.queue[0]
			s.queue = s.queue[1:]
			at(w)
			return
		}
		s.count++
	case arch.OpCondWait:
		b.unlock(t, req.Lock)
		b.conds[req.Addr] = append(b.conds[req.Addr], idealCondWaiter{lock: req.Lock, done: done})
	case arch.OpCondSignal:
		at(done)
		q := b.conds[req.Addr]
		if len(q) == 0 {
			return
		}
		w := q[0]
		b.conds[req.Addr] = q[1:]
		b.relock(t, w)
	case arch.OpCondBroadcast:
		at(done)
		q := b.conds[req.Addr]
		b.conds[req.Addr] = nil
		for _, w := range q {
			b.relock(t, w)
		}
	case arch.OpFetchAdd:
		at(done)
	default:
		at(done)
	}
}

func (b *Ideal) lock(addr uint64) *idealLock {
	l, ok := b.locks[addr]
	if !ok {
		l = &idealLock{}
		b.locks[addr] = l
	}
	return l
}

func (b *Ideal) unlock(t sim.Time, addr uint64) {
	l := b.lock(addr)
	if len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		b.m.Engine.Schedule(t, next)
		return
	}
	l.held = false
}

func (b *Ideal) relock(t sim.Time, w idealCondWaiter) {
	l := b.lock(w.lock)
	if !l.held {
		l.held = true
		b.m.Engine.Schedule(t, w.done)
		return
	}
	l.queue = append(l.queue, w.done)
}
