// Package coherlock implements the coherence-based lock algorithms the
// paper measures for motivation: the MESI test&set lock used in Figure 2
// (mesi-lock), and the TTAS and Hierarchical Ticket Lock algorithms of
// Table 1. They run as arch.Backend implementations on top of the MESI
// directory model, so any workload can be re-run under coherence-based
// synchronization.
package coherlock

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/coherence"
	"syncron/internal/sim"
)

// Algorithm selects the lock algorithm.
type Algorithm int

// Supported algorithms.
const (
	// MESILock is a test&set spin lock: every attempt is an RMW on the lock
	// line (the mesi-lock of Figure 2).
	MESILock Algorithm = iota
	// TTAS is test-and-test&set: spin on a shared read, RMW only when the
	// lock looks free.
	TTAS
	// HTL is the Hierarchical Ticket Lock: release prefers waiters in the
	// releasing core's socket/unit, bounding cross-socket transfers.
	HTL
)

func (a Algorithm) String() string {
	switch a {
	case MESILock:
		return "mesi-lock"
	case TTAS:
		return "ttas"
	case HTL:
		return "htl"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Backend is a coherence-based lock scheme. Only lock semantics are
// supported (like SSB/LCU, these schemes have no barrier/semaphore/condvar
// primitives); barrier requests fall back to an ideal barrier so mixed
// workloads can still run.
type Backend struct {
	Alg Algorithm

	// LocalBatch bounds consecutive same-unit handoffs for HTL (default 8).
	LocalBatch int

	m     *arch.Machine
	space *coherence.Space
	locks map[uint64]*lockState
	bars  map[uint64]*barState

	// syncTr is non-nil when the machine has a tracer attached; it wraps each
	// request's done continuation with span emission (see arch.SyncTracer).
	syncTr *arch.SyncTracer
}

type waiter struct {
	core int
	done func(sim.Time)
}

type lockState struct {
	held     bool
	holder   int
	spinners []waiter
	batch    int
}

type barState struct {
	arrived int
	done    []func(sim.Time)
}

// New returns a coherence-lock backend using the given algorithm.
func New(alg Algorithm) *Backend { return &Backend{Alg: alg} }

// Name implements arch.Backend.
func (b *Backend) Name() string { return b.Alg.String() }

// Attach implements arch.Backend.
func (b *Backend) Attach(m *arch.Machine) {
	b.m = m
	b.space = coherence.NewSpace(m)
	b.locks = make(map[uint64]*lockState)
	b.bars = make(map[uint64]*barState)
	if b.LocalBatch == 0 {
		b.LocalBatch = 8
	}
	b.syncTr = nil
	if m.Tracer != nil {
		b.syncTr = arch.NewSyncTracer(m.Tracer)
	}
}

// ExtraCacheEnergyPJ implements arch.Backend.
func (b *Backend) ExtraCacheEnergyPJ() float64 { return 0 }

// Space exposes the coherence model for stats (tests, experiments).
func (b *Backend) Space() *coherence.Space { return b.space }

// Request implements arch.Backend.
func (b *Backend) Request(t sim.Time, core int, req arch.SyncReq, done func(sim.Time)) {
	if b.syncTr != nil {
		done = b.syncTr.Request(t, core, req, done)
	}
	switch req.Op {
	case arch.OpLockAcquire:
		b.acquire(t, core, req.Addr, done)
	case arch.OpLockRelease:
		done(t + b.m.CoreClock.Cycles(1))
		b.release(t, core, req.Addr)
	case arch.OpBarrierWithinUnit, arch.OpBarrierAcrossUnits:
		// Ideal barrier fallback (coherence lock schemes provide only locks).
		bs, ok := b.bars[req.Addr]
		if !ok {
			bs = &barState{}
			b.bars[req.Addr] = bs
		}
		bs.arrived++
		bs.done = append(bs.done, done)
		if bs.arrived >= int(req.Info) {
			ds := bs.done
			delete(b.bars, req.Addr)
			for _, d := range ds {
				b.m.Engine.Schedule(t, d)
			}
		}
	default:
		done(t)
	}
}

// socketLine is the HTL per-socket now-serving cache line for a lock,
// placed in a shadow region of the lock's home unit so it cannot collide
// with other allocations.
func (b *Backend) socketLine(addr uint64, core int) uint64 {
	return addr + (1 << 30) + uint64(1+b.m.UnitOf(core))*64
}

func (b *Backend) lock(addr uint64) *lockState {
	l, ok := b.locks[addr]
	if !ok {
		l = &lockState{holder: -1}
		b.locks[addr] = l
	}
	return l
}

// acquire models one lock acquisition attempt.
func (b *Backend) acquire(t sim.Time, core int, addr uint64, done func(sim.Time)) {
	l := b.lock(addr)
	switch b.Alg {
	case MESILock:
		// Unconditional RMW.
		at := b.space.Access(t, core, addr, coherence.RMW)
		b.m.Engine.Schedule(at, func(at sim.Time) { b.tryWin(at, core, addr, done, true) })
	case TTAS:
		// Read first; RMW follows if it looks free.
		at := b.space.Access(t, core, addr, coherence.Load)
		b.m.Engine.Schedule(at, func(at sim.Time) {
			if !l.held {
				at2 := b.space.Access(at, core, addr, coherence.RMW)
				b.m.Engine.Schedule(at2, func(at2 sim.Time) { b.tryWin(at2, core, addr, done, false) })
				return
			}
			l.spinners = append(l.spinners, waiter{core, done})
		})
	case HTL:
		// Two-level ticket lock: fetch a ticket from the global line, then
		// check the per-socket now-serving line — one extra line access than
		// TTAS when uncontended, but waiters spin on their socket's line.
		at := b.space.Access(t, core, addr, coherence.RMW) // ticket fetch
		at = b.space.Access(at, core, b.socketLine(addr, core), coherence.Load)
		b.m.Engine.Schedule(at, func(at sim.Time) { b.tryWin(at, core, addr, done, false) })
	}
}

// tryWin takes the lock if free, otherwise registers the core as a spinner
// (its subsequent spin reads are local L1 hits until invalidated).
func (b *Backend) tryWin(t sim.Time, core int, addr uint64, done func(sim.Time), retryRMW bool) {
	l := b.lock(addr)
	if !l.held {
		l.held = true
		l.holder = core
		done(t)
		return
	}
	l.spinners = append(l.spinners, waiter{core, done})
}

// release hands the lock to a spinner: the releasing store invalidates all
// spinners' cached copies; every spinner re-reads the line (coherence
// traffic), and one wins the subsequent RMW race.
func (b *Backend) release(t sim.Time, core int, addr uint64) {
	l := b.lock(addr)
	wt := b.space.Access(t, core, addr, coherence.Store)
	b.m.Engine.Schedule(wt, func(wt sim.Time) {
		l.held = false
		l.holder = -1
		if len(l.spinners) == 0 {
			l.batch = 0
			return
		}
		// Pick the winner.
		idx := 0
		if b.Alg == HTL && l.batch < b.LocalBatch {
			relUnit := b.m.UnitOf(core)
			for i, w := range l.spinners {
				if b.m.UnitOf(w.core) == relUnit {
					idx = i
					break
				}
			}
		}
		win := l.spinners[idx]
		l.spinners = append(l.spinners[:idx], l.spinners[idx+1:]...)
		if b.Alg == HTL && b.m.UnitOf(win.core) == b.m.UnitOf(core) {
			l.batch++
		} else {
			l.batch = 0
		}
		var winAt sim.Time
		if b.Alg == HTL {
			// Ticket handoff: the releaser bumps the winner's socket
			// now-serving line; only same-socket spinners re-read it.
			grantLine := b.socketLine(addr, win.core)
			gw := b.space.Access(wt, core, grantLine, coherence.Store)
			for _, sp := range l.spinners {
				if b.m.UnitOf(sp.core) == b.m.UnitOf(win.core) {
					b.space.Access(gw, sp.core, grantLine, coherence.Load)
				}
			}
			winAt = b.space.Access(gw, win.core, grantLine, coherence.Load)
		} else {
			// TAS-style release: the store invalidates every spinner's copy;
			// all re-read the line and the winner additionally RMWs it.
			for _, sp := range l.spinners {
				b.space.Access(wt, sp.core, addr, coherence.Load)
			}
			winAt = b.space.Access(wt, win.core, addr, coherence.Load)
			winAt = b.space.Access(winAt, win.core, addr, coherence.RMW)
		}
		l.held = true
		l.holder = win.core
		b.m.Engine.Schedule(winAt, win.done)
	})
}
