package coherlock_test

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/coherlock"
	"syncron/internal/program"
	"syncron/internal/sim"
)

func runLock(t *testing.T, alg coherlock.Algorithm, pinned []int, rounds int) (sim.Time, *coherlock.Backend) {
	t.Helper()
	b := coherlock.New(alg)
	m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 14})
	m.Backend = b
	r := program.NewRunner(m)
	lock := m.Alloc(0, 64)
	for _, c := range pinned {
		r.AddAt(c, func(ctx *program.Ctx) {
			for k := 0; k < rounds; k++ {
				ctx.Lock(lock)
				ctx.Unlock(lock)
				ctx.Compute(60)
			}
		})
	}
	return r.Run(), b
}

func TestMutualExclusionAllAlgorithms(t *testing.T) {
	for _, alg := range []coherlock.Algorithm{coherlock.MESILock, coherlock.TTAS, coherlock.HTL} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			// The runner's checker panics on any violation.
			end, _ := runLock(t, alg, []int{0, 1, 2, 14, 15}, 30)
			if end <= 0 {
				t.Fatal("no progress")
			}
		})
	}
}

func TestContentionCollapses(t *testing.T) {
	// Table 1's single-socket story: 14 threads must be far less efficient
	// per-thread than 1 thread.
	one, _ := runLock(t, coherlock.TTAS, []int{0}, 50)
	all, _ := runLock(t, coherlock.TTAS, seq(0, 14), 50)
	perOpOne := float64(one) / 50
	perOpAll := float64(all) / (50 * 14)
	if perOpAll < 1.5*perOpOne {
		t.Fatalf("contended per-op time %.0f not much worse than solo %.0f", perOpAll, perOpOne)
	}
}

func TestCrossSocketPenalty(t *testing.T) {
	// Table 1's NUMA story: 2 threads on different sockets are slower than
	// 2 threads on the same socket.
	same, _ := runLock(t, coherlock.TTAS, []int{0, 1}, 50)
	diff, _ := runLock(t, coherlock.TTAS, []int{0, 14}, 50)
	if diff <= same {
		t.Fatalf("cross-socket (%v) not slower than same-socket (%v)", diff, same)
	}
}

func TestHTLBeatsTTASCrossSocket(t *testing.T) {
	// HTL's local batching must reduce cross-socket handoffs when both
	// sockets contend.
	ttas, _ := runLock(t, coherlock.TTAS, append(seq(0, 7), seq(14, 7)...), 30)
	htl, _ := runLock(t, coherlock.HTL, append(seq(0, 7), seq(14, 7)...), 30)
	if htl >= ttas {
		t.Fatalf("HTL (%v) not faster than TTAS (%v) under cross-socket contention", htl, ttas)
	}
}

func TestSpinTrafficGrowsWithWaiters(t *testing.T) {
	_, b2 := runLock(t, coherlock.MESILock, seq(0, 2), 20)
	_, b8 := runLock(t, coherlock.MESILock, seq(0, 8), 20)
	if b8.Space().Invalidations.Value() <= b2.Space().Invalidations.Value() {
		t.Fatalf("invalidations did not grow with waiters: %d vs %d",
			b8.Space().Invalidations.Value(), b2.Space().Invalidations.Value())
	}
}

func seq(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
