package coherlock_test

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/coherlock"
	"syncron/internal/program"
)

// benchLock drives a contended lock under one coherence-lock algorithm —
// the heaviest scheduler of cancel-free events among the backends (every
// release invalidates and reschedules every spinner).
func benchLock(b *testing.B, alg coherlock.Algorithm) {
	const cores, rounds = 8, 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		back := coherlock.New(alg)
		m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 4})
		m.Backend = back
		r := program.NewRunner(m)
		lock := m.Alloc(0, 64)
		for c := 0; c < cores; c++ {
			r.AddAt(c, func(ctx *program.Ctx) {
				for k := 0; k < rounds; k++ {
					ctx.Lock(lock)
					ctx.Unlock(lock)
					ctx.Compute(60)
				}
			})
		}
		r.Run()
	}
}

func BenchmarkLockMESI(b *testing.B) { benchLock(b, coherlock.MESILock) }
func BenchmarkLockTTAS(b *testing.B) { benchLock(b, coherlock.TTAS) }
func BenchmarkLockHTL(b *testing.B)  { benchLock(b, coherlock.HTL) }
