// Package network models the NDP interconnect: a buffered crossbar inside
// each NDP unit (1-cycle arbiter, 1-cycle hops, per-destination-port FIFO
// queueing — a deterministic stand-in for the paper's M/D/1 queueing model)
// and narrow serial links between NDP units (12.8 GB/s per direction, 40 ns
// per cache line, 20-cycle fixed latency, per Table 5).
//
// How the units are wired is a Topology (topology.go): AllToAll reproduces
// the paper's full point-to-point interconnect, while Mesh2D, Ring, and Star
// open the sensitivity axis the paper varies. Transfer walks the route link
// by link; every link keeps its own serialization horizon and traffic
// counter, and messages forwarded through an intermediate unit also cross
// that unit's crossbar.
//
// The package also owns the traffic accounting used for Figures 14 and 15:
// bits moved inside NDP units vs across them, and the corresponding energy
// (0.4 pJ/bit/hop intra-unit; 4 pJ/bit per inter-unit link traversed, so
// multi-hop topologies pay energy per actual route length).
package network

import (
	"fmt"

	"syncron/internal/sim"
	"syncron/internal/trace"
)

// Config holds the interconnect parameters.
type Config struct {
	CoreClock sim.Clock // clock used for cycle-denominated latencies

	// Intra-unit crossbar.
	HopCycles        int64 // per-hop latency
	Hops             int64 // hops for a core<->SE/memory traversal
	ArbiterCycles    int64 // arbitration
	FlitBytes        int   // crossbar port width per cycle
	IntraPJPerBitHop float64

	// Inter-unit serial links.
	LinkLatency     sim.Time // fixed transfer latency per cache line (default 40ns)
	LinkFixedCycles int64    // additional fixed cycles (default 20)
	LinkBytesPerSec int64    // per-direction bandwidth (default 12.8 GB/s)
	InterPJPerBit   float64
}

// DefaultConfig returns the Table-5 interconnect.
func DefaultConfig(coreClock sim.Clock) Config {
	return Config{
		CoreClock:        coreClock,
		HopCycles:        1,
		Hops:             2,
		ArbiterCycles:    1,
		FlitBytes:        16,
		IntraPJPerBitHop: 0.4,
		LinkLatency:      40 * sim.Nanosecond,
		LinkFixedCycles:  20,
		LinkBytesPerSec:  12_800_000_000,
		InterPJPerBit:    4.0,
	}
}

// Stats aggregates cross-unit traffic for energy and data-movement
// reporting. Intra-unit traffic is deliberately NOT here: it is accumulated
// in per-unit shards inside Network (see Network.IntraBits), because
// IntraDelay runs on unit-tagged events that may execute concurrently under
// the parallel dispatcher and must only touch their own unit's state. The
// counters below are only touched on cross-unit paths, which are serial
// barriers by construction.
type Stats struct {
	InterBits sim.Counter // bits moved across inter-unit links (per link traversed)
	InterMsgs sim.Counter // cross-unit messages (once per transfer)
	LinkHops  sim.Counter // inter-unit link traversals (route length x messages)
}

// AvgRouteLinks reports the mean number of inter-unit links a cross-unit
// message traversed (exactly 1 on AllToAll; 0 when nothing crossed units).
func (s *Stats) AvgRouteLinks() float64 {
	if s.InterMsgs.Value() == 0 {
		return 0
	}
	return float64(s.LinkHops.Value()) / float64(s.InterMsgs.Value())
}

// Network models the whole system's interconnect: one crossbar per unit plus
// the serial links of the configured Topology.
type Network struct {
	cfg   Config
	topo  Topology
	units int
	nodes int // units plus topology switch nodes (Star hub)

	// Crossbar output-port occupancy, densely indexed [unit][portIndex];
	// portIndex remaps the sparse port-id space (cores >= 0, PortSE,
	// PortMemory, link egress ports) into a contiguous range — see portIndex.
	// Rows grow on demand as higher core ports appear.
	xbarBusy [][]sim.Time

	// linkBusy[src*nodes+dst] is the per-direction serialization horizon of
	// the (src, dst) link; linkBits is its lifetime traffic.
	linkBusy []sim.Time
	linkBits []uint64

	// routes caches topo.Route for every ordered unit pair (routes are
	// deterministic), keeping Transfer allocation-free on the hot path.
	routes [][]Link

	// intraBits/intraMsgs shard the intra-unit traffic counters by unit, so
	// an IntraDelay on a unit-tagged event touches only its own unit's shard
	// (the counters are commutative sums, read only at report time).
	intraBits []uint64
	intraMsgs []uint64

	// tr, when non-nil, receives one WhatLinkXfer record per inter-unit link
	// traversal (the link's busy window plus the message size). Only the
	// cross-unit path emits — it is a serial barrier by construction, so
	// tracing needs no synchronization; the unit-tagged IntraDelay path is
	// deliberately untraced (it may run concurrently on workers, and its
	// volume would dominate the trace). linkNames interns the per-direction
	// "link.S-D" labels so the enabled hot path does not format strings.
	tr        trace.Tracer
	linkNames []string

	Stats Stats
}

// New builds the interconnect for the units of topo.
func New(cfg Config, topo Topology) *Network {
	units, nodes := topo.Units(), topo.Nodes()
	routes := make([][]Link, units*units)
	for src := 0; src < units; src++ {
		for dst := 0; dst < units; dst++ {
			if src != dst {
				routes[src*units+dst] = topo.Route(src, dst)
			}
		}
	}
	return &Network{
		cfg:       cfg,
		topo:      topo,
		units:     units,
		nodes:     nodes,
		xbarBusy:  make([][]sim.Time, units),
		linkBusy:  make([]sim.Time, nodes*nodes),
		linkBits:  make([]uint64, nodes*nodes),
		routes:    routes,
		intraBits: make([]uint64, units),
		intraMsgs: make([]uint64, units),
	}
}

// NewAllToAll builds the default full point-to-point interconnect for n
// units — the pre-topology behavior, preserved bit for bit.
func NewAllToAll(cfg Config, n int) *Network {
	return New(cfg, MustBuild(KindAllToAll, n))
}

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// SetTracer installs tr (nil disables tracing) and pre-interns the per-link
// labels, so the traced path never formats strings per message.
func (n *Network) SetTracer(tr trace.Tracer) {
	n.tr = tr
	if tr != nil && n.linkNames == nil {
		n.linkNames = make([]string, n.nodes*n.nodes)
		for src := 0; src < n.nodes; src++ {
			for dst := 0; dst < n.nodes; dst++ {
				n.linkNames[src*n.nodes+dst] = fmt.Sprintf("link.%d-%d", src, dst)
			}
		}
	}
}

// Topology returns the interconnect topology.
func (n *Network) Topology() Topology { return n.topo }

// Units returns the number of NDP units connected.
func (n *Network) Units() int { return n.units }

// portIndex maps a sparse crossbar port id to a dense slice index:
// PortSE -> 0, PortMemory -> 1, link egress port towards node u -> 2+u,
// core c -> 2+nodes+c.
func (n *Network) portIndex(port int) int {
	switch {
	case port >= 0: // core
		return 2 + n.nodes + port
	case port >= PortMemory: // PortSE (-1) or PortMemory (-2)
		return -1 - port
	default: // link egress port, linkPort(u) = -100-u
		u := -100 - port
		if u < 0 || u >= n.nodes {
			panic(fmt.Sprintf("network: bad port id %d", port))
		}
		return 2 + u
	}
}

// busySlot returns a pointer to the occupancy horizon of (unit, port),
// growing the unit's dense row if this core port is the highest seen yet.
func (n *Network) busySlot(unit, port int) *sim.Time {
	idx := n.portIndex(port)
	row := n.xbarBusy[unit]
	if idx >= len(row) {
		grown := make([]sim.Time, idx+1)
		copy(grown, row)
		n.xbarBusy[unit] = grown
		row = grown
	}
	return &row[idx]
}

// IntraDelay computes the arrival time of a message of size bytes injected at
// time t inside unit, destined for local endpoint dstPort (an arbitrary id
// used for queueing separation: core index, -1 for SE, -2 for memory).
func (n *Network) IntraDelay(t sim.Time, unit, dstPort, bytes int) sim.Time {
	cfg := n.cfg
	flits := int64((bytes + cfg.FlitBytes - 1) / cfg.FlitBytes)
	if flits < 1 {
		flits = 1
	}
	ser := cfg.CoreClock.Cycles(flits)
	start := t
	slot := n.busySlot(unit, dstPort)
	if *slot > start {
		start = *slot
	}
	*slot = start + ser
	n.intraBits[unit] += uint64(bytes * 8)
	n.intraMsgs[unit]++
	return start + ser + cfg.CoreClock.Cycles(cfg.ArbiterCycles+cfg.HopCycles*cfg.Hops)
}

// IntraBits returns the total bits moved inside NDP units (summed over the
// per-unit shards; report-time only).
func (n *Network) IntraBits() uint64 {
	var total uint64
	for _, b := range n.intraBits {
		total += b
	}
	return total
}

// IntraMsgs returns the total number of intra-unit messages.
func (n *Network) IntraMsgs() uint64 {
	var total uint64
	for _, m := range n.intraMsgs {
		total += m
	}
	return total
}

// EnergyPJ returns total network energy. Inter-unit energy is per link
// traversed: InterBits already accumulates once per link on the route, so
// multi-hop topologies pay proportionally more without any constant here.
func (n *Network) EnergyPJ() float64 {
	intra := float64(n.IntraBits()) * n.cfg.IntraPJPerBitHop * float64(n.cfg.Hops)
	inter := float64(n.Stats.InterBits.Value()) * n.cfg.InterPJPerBit
	return intra + inter
}

// linkSerialization is the time bytes occupy a serial link. It is computed
// in integer picoseconds (truncating, matching the historical float64 math
// on the default power-of-two-friendly bandwidth) so results are
// byte-identical across platforms and compilers.
func linkSerialization(bytes int, bytesPerSec int64) sim.Time {
	return sim.Time(int64(bytes) * int64(sim.Second) / bytesPerSec)
}

// linkDelay computes the arrival time at l.Dst of a message of size bytes
// entering link l at time t, and accounts the link's traffic.
func (n *Network) linkDelay(t sim.Time, l Link, bytes int) sim.Time {
	cfg := n.cfg
	ser := linkSerialization(bytes, cfg.LinkBytesPerSec)
	slot := &n.linkBusy[l.Src*n.nodes+l.Dst]
	start := t
	if *slot > start {
		start = *slot
	}
	*slot = start + ser
	n.linkBits[l.Src*n.nodes+l.Dst] += uint64(bytes * 8)
	n.Stats.InterBits.Add(uint64(bytes * 8))
	n.Stats.LinkHops.Inc()
	if n.tr != nil {
		// [start, start+ser) is the window the message occupies the link —
		// queueing behind the serialization horizon included — which is what
		// the LinkUtilizationSeries view integrates.
		n.tr.Emit(trace.Record{Start: start, End: start + ser,
			Where: n.linkNames[l.Src*n.nodes+l.Dst], What: trace.WhatLinkXfer,
			Value: float64(bytes), Unit: "bytes"})
	}
	return start + ser + cfg.LinkLatency + cfg.CoreClock.Cycles(cfg.LinkFixedCycles)
}

// InterDelay computes the arrival time at unit dst of a message of size bytes
// sent from unit src at time t over the direct (src, dst) link. src must
// differ from dst. Most callers want Transfer, which also routes and crosses
// the endpoint crossbars; InterDelay is the single-link building block.
func (n *Network) InterDelay(t sim.Time, src, dst, bytes int) sim.Time {
	if src == dst {
		panic(fmt.Sprintf("network: InterDelay within unit %d", src))
	}
	return n.linkDelay(t, Link{src, dst}, bytes)
}

// Transfer computes the arrival time of a message from (srcUnit) to
// (dstUnit,dstPort): the source crossbar, every link on the topology's
// route (crossing the crossbar of each intermediate NDP unit; switch nodes
// like Star's hub contend only on their links), then the destination
// crossbar. This is the common path for all simulated messages.
func (n *Network) Transfer(t sim.Time, srcUnit, dstUnit, dstPort, bytes int) sim.Time {
	if srcUnit == dstUnit {
		return n.IntraDelay(t, srcUnit, dstPort, bytes)
	}
	route := n.routes[srcUnit*n.units+dstUnit]
	n.Stats.InterMsgs.Inc()
	// source crossbar -> egress towards the first hop
	cur := n.IntraDelay(t, srcUnit, linkPort(route[0].Dst), bytes)
	for i, l := range route {
		if i > 0 && l.Src < n.units {
			// forwarded through an intermediate unit: cross its crossbar to
			// the egress port of the next link
			cur = n.IntraDelay(cur, l.Src, linkPort(l.Dst), bytes)
		}
		cur = n.linkDelay(cur, l, bytes)
	}
	// destination crossbar -> endpoint
	return n.IntraDelay(cur, dstUnit, dstPort, bytes)
}

// LinkLoad describes one directed link's lifetime traffic.
type LinkLoad struct {
	Link Link
	Bits uint64
}

// LinkLoads returns the traffic of every link that carried at least one bit,
// ordered by (Src, Dst).
func (n *Network) LinkLoads() []LinkLoad {
	var loads []LinkLoad
	for src := 0; src < n.nodes; src++ {
		for dst := 0; dst < n.nodes; dst++ {
			if bits := n.linkBits[src*n.nodes+dst]; bits > 0 {
				loads = append(loads, LinkLoad{Link{src, dst}, bits})
			}
		}
	}
	return loads
}

// linkPort is the crossbar port id for the egress link towards node u.
func linkPort(u int) int { return -100 - u }

// Well-known destination port ids inside a unit.
const (
	PortSE     = -1
	PortMemory = -2
)

// PortCore returns the crossbar port id of core c (unit-local index).
func PortCore(c int) int { return c }
