// Package network models the NDP interconnect: a buffered crossbar inside
// each NDP unit (1-cycle arbiter, 1-cycle hops, per-destination-port FIFO
// queueing — a deterministic stand-in for the paper's M/D/1 queueing model)
// and narrow serial links between NDP units (12.8 GB/s per direction, 40 ns
// per cache line, 20-cycle fixed latency, per Table 5).
//
// The package also owns the traffic accounting used for Figures 14 and 15:
// bits moved inside NDP units vs across them, and the corresponding energy
// (0.4 pJ/bit/hop intra-unit; 4 pJ/bit on inter-unit links).
package network

import (
	"fmt"

	"syncron/internal/sim"
)

// Config holds the interconnect parameters.
type Config struct {
	CoreClock sim.Clock // clock used for cycle-denominated latencies

	// Intra-unit crossbar.
	HopCycles        int64 // per-hop latency
	Hops             int64 // hops for a core<->SE/memory traversal
	ArbiterCycles    int64 // arbitration
	FlitBytes        int   // crossbar port width per cycle
	IntraPJPerBitHop float64

	// Inter-unit serial links.
	LinkLatency     sim.Time // fixed transfer latency per cache line (default 40ns)
	LinkFixedCycles int64    // additional fixed cycles (default 20)
	LinkBytesPerSec float64  // per-direction bandwidth (default 12.8 GB/s)
	InterPJPerBit   float64
}

// DefaultConfig returns the Table-5 interconnect.
func DefaultConfig(coreClock sim.Clock) Config {
	return Config{
		CoreClock:        coreClock,
		HopCycles:        1,
		Hops:             2,
		ArbiterCycles:    1,
		FlitBytes:        16,
		IntraPJPerBitHop: 0.4,
		LinkLatency:      40 * sim.Nanosecond,
		LinkFixedCycles:  20,
		LinkBytesPerSec:  12.8e9,
		InterPJPerBit:    4.0,
	}
}

// Stats aggregates traffic for energy and data-movement reporting.
type Stats struct {
	IntraBits sim.Counter // bits moved inside NDP units (bit-hops / Hops)
	InterBits sim.Counter // bits moved across NDP units
	IntraMsgs sim.Counter
	InterMsgs sim.Counter
}

// EnergyPJ returns network energy under cfg.
func (s *Stats) EnergyPJ(cfg Config) float64 {
	intra := float64(s.IntraBits.Value()) * cfg.IntraPJPerBitHop * float64(cfg.Hops)
	inter := float64(s.InterBits.Value()) * cfg.InterPJPerBit
	return intra + inter
}

// Network models the whole system's interconnect: one crossbar per unit and
// one serial link pair per ordered unit pair (full point-to-point topology,
// as in Figure 1's interconnection links).
type Network struct {
	cfg   Config
	units int

	// crossbar output-port occupancy: [unit][port]; ports are destinations
	// inside the unit (cores + SE + memory controller), coarsened to a single
	// shared crossbar budget per destination endpoint id.
	xbarBusy []map[int]sim.Time

	// linkBusy[src][dst] is the per-direction serialization horizon.
	linkBusy [][]sim.Time

	Stats Stats
}

// New builds the interconnect for n units.
func New(cfg Config, n int) *Network {
	x := make([]map[int]sim.Time, n)
	for i := range x {
		x[i] = make(map[int]sim.Time)
	}
	lb := make([][]sim.Time, n)
	for i := range lb {
		lb[i] = make([]sim.Time, n)
	}
	return &Network{cfg: cfg, units: n, xbarBusy: x, linkBusy: lb}
}

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// Units returns the number of NDP units connected.
func (n *Network) Units() int { return n.units }

// IntraDelay computes the arrival time of a message of size bytes injected at
// time t inside unit, destined for local endpoint dstPort (an arbitrary id
// used for queueing separation: core index, -1 for SE, -2 for memory).
func (n *Network) IntraDelay(t sim.Time, unit, dstPort, bytes int) sim.Time {
	cfg := n.cfg
	flits := int64((bytes + cfg.FlitBytes - 1) / cfg.FlitBytes)
	if flits < 1 {
		flits = 1
	}
	ser := cfg.CoreClock.Cycles(flits)
	start := t
	if busy := n.xbarBusy[unit][dstPort]; busy > start {
		start = busy
	}
	n.xbarBusy[unit][dstPort] = start + ser
	n.Stats.IntraBits.Add(uint64(bytes * 8))
	n.Stats.IntraMsgs.Inc()
	return start + ser + cfg.CoreClock.Cycles(cfg.ArbiterCycles+cfg.HopCycles*cfg.Hops)
}

// InterDelay computes the arrival time at unit dst of a message of size bytes
// sent from unit src at time t. src must differ from dst.
func (n *Network) InterDelay(t sim.Time, src, dst, bytes int) sim.Time {
	if src == dst {
		panic(fmt.Sprintf("network: InterDelay within unit %d", src))
	}
	cfg := n.cfg
	ser := sim.Time(float64(bytes) / cfg.LinkBytesPerSec * float64(sim.Second))
	start := t
	if busy := n.linkBusy[src][dst]; busy > start {
		start = busy
	}
	n.linkBusy[src][dst] = start + ser
	n.Stats.InterBits.Add(uint64(bytes * 8))
	n.Stats.InterMsgs.Inc()
	return start + ser + cfg.LinkLatency + cfg.CoreClock.Cycles(cfg.LinkFixedCycles)
}

// Transfer computes the arrival time of a message from (srcUnit) to
// (dstUnit,dstPort): the intra-unit leg(s) plus the inter-unit link when the
// units differ. This is the common path for all simulated messages.
func (n *Network) Transfer(t sim.Time, srcUnit, dstUnit, dstPort, bytes int) sim.Time {
	if srcUnit == dstUnit {
		return n.IntraDelay(t, srcUnit, dstPort, bytes)
	}
	// source crossbar -> link endpoint
	out := n.IntraDelay(t, srcUnit, linkPort(dstUnit), bytes)
	// serial link
	arr := n.InterDelay(out, srcUnit, dstUnit, bytes)
	// destination crossbar -> endpoint
	return n.IntraDelay(arr, dstUnit, dstPort, bytes)
}

// linkPort is the crossbar port id for the egress link towards unit u.
func linkPort(u int) int { return -100 - u }

// Well-known destination port ids inside a unit.
const (
	PortSE     = -1
	PortMemory = -2
)

// PortCore returns the crossbar port id of core c (unit-local index).
func PortCore(c int) int { return c }
