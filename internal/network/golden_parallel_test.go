package network

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"syncron/internal/sim"
)

// goldenTraceEngine replays the exact transfer mix of goldenTrace, but as
// discrete events on a sim.Engine running with the given parallel worker
// count. Network transfers mutate shared Stats counters, so the events are
// plain serial events (the model-layer contract under parallel execution);
// the point is that the parallel dispatcher's round-based batching must run
// them in exactly the serial (at, seq) order.
func goldenTraceEngine(workers int) string {
	const units = 4
	net := newNet(units)
	eng := sim.NewEngine()
	eng.SetParallelism(workers)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	var b strings.Builder
	t := sim.Time(0)
	for i := 0; i < 600; i++ {
		src := next(units)
		dst := next(units)
		var port int
		switch next(3) {
		case 0:
			port = PortSE
		case 1:
			port = PortMemory
		default:
			port = PortCore(next(15))
		}
		bytes := []int{16, 18, 19, 64, 72}[next(5)]
		t += sim.Time(next(2000))
		eng.Schedule(t, func(at sim.Time) {
			arr := net.Transfer(at, src, dst, port, bytes)
			fmt.Fprintf(&b, "%d %d %d %d %d %d\n", src, dst, port, bytes, int64(at), int64(arr))
		})
	}
	eng.Run()
	fmt.Fprintf(&b, "intra %d inter %d\n", net.IntraBits(), net.Stats.InterBits.Value())
	return b.String()
}

// TestAllToAllGoldenTraceParallelEngine checks the engine-driven replay of
// the AllToAll golden trace against the same golden file for every parallel
// worker count: the parallel engine must reproduce the serial transfer
// timing bit for bit.
func TestAllToAllGoldenTraceParallelEngine(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			if got := goldenTraceEngine(workers); got != string(want) {
				t.Fatalf("parallel engine (workers=%d) transfer trace deviates from golden (len got %d, want %d)",
					workers, len(got), len(want))
			}
		})
	}
}
