package network

import (
	"fmt"
	"strings"
)

// Link is one directed inter-unit link of a topology. Endpoints are node
// ids: NDP units 0..Units()-1, plus any switch nodes a topology introduces
// (the Star hub). Each Link owns its own serialization horizon and traffic
// accounting inside Network.
type Link struct {
	Src, Dst int
}

// Topology describes how NDP units are wired and how messages are routed
// between them. Implementations must be deterministic: Route(src, dst) always
// returns the same link sequence for the same arguments.
type Topology interface {
	// Kind names the topology (one of the Kind constants).
	Kind() Kind
	// Units is the number of NDP units connected.
	Units() int
	// Nodes is Units plus any internal switch nodes (Star's hub); link
	// endpoints and link-port ids range over [0, Nodes).
	Nodes() int
	// Route returns the ordered inter-unit links a message from unit src to
	// unit dst traverses. src and dst must be distinct units; the first
	// link leaves src and the last link enters dst.
	Route(src, dst int) []Link
	// Degree is the maximum number of outgoing links at any node.
	Degree() int
	// Diameter is the maximum route length (in links) between any unit pair.
	Diameter() int
}

// Kind names a topology family.
type Kind string

// Supported topology kinds.
const (
	// KindAllToAll is one dedicated serial link per ordered unit pair — the
	// paper's Figure-1 full point-to-point interconnect and the default.
	KindAllToAll Kind = "alltoall"
	// KindMesh2D arranges units on the most-square 2D grid that factors the
	// unit count exactly, with dimension-ordered (X-then-Y) routing.
	KindMesh2D Kind = "mesh"
	// KindRing connects units in a bidirectional ring, routing the shorter
	// way around (ties go clockwise).
	KindRing Kind = "ring"
	// KindStar routes every unit pair through one shared off-chip switch
	// (host hub), modeling a system without direct unit-to-unit links.
	KindStar Kind = "star"
)

// Kinds returns every supported topology kind in documentation order.
func Kinds() []Kind { return []Kind{KindAllToAll, KindMesh2D, KindRing, KindStar} }

// ParseKind resolves a topology name; the empty string means the default
// AllToAll.
func ParseKind(name string) (Kind, error) {
	k := Kind(strings.ToLower(strings.TrimSpace(name)))
	if k == "" {
		return KindAllToAll, nil
	}
	for _, known := range Kinds() {
		if k == known {
			return k, nil
		}
	}
	return "", fmt.Errorf("network: unknown topology %q (want alltoall, mesh, ring, or star)", name)
}

// Build constructs the topology of the given kind over units NDP units.
func Build(kind Kind, units int) (Topology, error) {
	if units < 1 {
		return nil, fmt.Errorf("network: topology over %d units", units)
	}
	switch kind {
	case KindAllToAll, "":
		return allToAll{n: units}, nil
	case KindMesh2D:
		return newMesh2D(units), nil
	case KindRing:
		return ring{n: units}, nil
	case KindStar:
		return star{n: units}, nil
	}
	return nil, fmt.Errorf("network: unknown topology kind %q", kind)
}

// MustBuild is Build for statically valid arguments; it panics on error.
func MustBuild(kind Kind, units int) Topology {
	t, err := Build(kind, units)
	if err != nil {
		panic(err)
	}
	return t
}

// allToAll has a dedicated link for every ordered unit pair.
type allToAll struct{ n int }

func (t allToAll) Kind() Kind { return KindAllToAll }
func (t allToAll) Units() int { return t.n }
func (t allToAll) Nodes() int { return t.n }
func (t allToAll) Route(src, dst int) []Link {
	checkPair(t, src, dst)
	return []Link{{src, dst}}
}
func (t allToAll) Degree() int { return t.n - 1 }
func (t allToAll) Diameter() int {
	if t.n < 2 {
		return 0
	}
	return 1
}

// mesh2D is a W x H grid (W*H == n, the most-square factorization) with
// deterministic dimension-ordered routing: first along X to the destination
// column, then along Y. Unit u sits at (u % W, u / W).
type mesh2D struct{ n, w, h int }

// newMesh2D picks the most-square exact factorization of n (a prime count
// degenerates to a 1D line, which dimension-ordered routing handles fine).
func newMesh2D(n int) mesh2D {
	w := n
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			w = n / f // the larger factor of the most-square pair so far
		}
	}
	return mesh2D{n: n, w: w, h: n / w}
}

func (t mesh2D) Kind() Kind { return KindMesh2D }
func (t mesh2D) Units() int { return t.n }
func (t mesh2D) Nodes() int { return t.n }
func (t mesh2D) Route(src, dst int) []Link {
	checkPair(t, src, dst)
	var route []Link
	x, y := src%t.w, src/t.w
	dx, dy := dst%t.w, dst/t.w
	cur := src
	step := func(next int) {
		route = append(route, Link{cur, next})
		cur = next
	}
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		step(y*t.w + x)
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		step(y*t.w + x)
	}
	return route
}
func (t mesh2D) Degree() int {
	// A dimension of length 2 contributes one neighbor, longer ones two.
	deg := func(size int) int {
		if size > 2 {
			return 2
		}
		return size - 1
	}
	return deg(t.w) + deg(t.h)
}
func (t mesh2D) Diameter() int { return (t.w - 1) + (t.h - 1) }

// ring connects unit u to (u+1)%n and (u-1+n)%n; routes take the shorter
// direction, clockwise (+1) on ties.
type ring struct{ n int }

func (t ring) Kind() Kind { return KindRing }
func (t ring) Units() int { return t.n }
func (t ring) Nodes() int { return t.n }
func (t ring) Route(src, dst int) []Link {
	checkPair(t, src, dst)
	cw := ((dst - src) + t.n) % t.n // clockwise distance
	step := 1
	if cw > t.n-cw {
		step = -1
	}
	var route []Link
	for cur := src; cur != dst; {
		next := ((cur + step) + t.n) % t.n
		route = append(route, Link{cur, next})
		cur = next
	}
	return route
}
func (t ring) Degree() int {
	if t.n <= 2 {
		return t.n - 1
	}
	return 2
}
func (t ring) Diameter() int { return t.n / 2 }

// star routes everything through one shared switch node (id n): src -> hub,
// hub -> dst. The hub is not an NDP unit — it has no crossbar of its own;
// contention shows up on its per-destination links.
type star struct{ n int }

// Hub returns the switch's node id.
func (t star) Hub() int   { return t.n }
func (t star) Kind() Kind { return KindStar }
func (t star) Units() int { return t.n }
func (t star) Nodes() int { return t.n + 1 }
func (t star) Route(src, dst int) []Link {
	checkPair(t, src, dst)
	return []Link{{src, t.n}, {t.n, dst}}
}
func (t star) Degree() int { return t.n } // the hub fans out to every unit
func (t star) Diameter() int {
	if t.n < 2 {
		return 0
	}
	return 2
}

// checkPair validates a Route argument pair.
func checkPair(t Topology, src, dst int) {
	if src == dst || src < 0 || dst < 0 || src >= t.Units() || dst >= t.Units() {
		panic(fmt.Sprintf("network: bad route pair (%d, %d) on %s/%d units",
			src, dst, t.Kind(), t.Units()))
	}
}
