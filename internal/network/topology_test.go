package network

import (
	"testing"
	"testing/quick"
)

// routeOK checks the structural invariants every topology must satisfy for
// one (src, dst) pair: the route starts at src, ends at dst, chains
// contiguously, never revisits a node (loop-free), stays within the node-id
// space, and respects the advertised diameter.
func routeOK(t *testing.T, topo Topology, src, dst int) []Link {
	t.Helper()
	route := topo.Route(src, dst)
	if len(route) == 0 {
		t.Fatalf("%s: empty route %d->%d", topo.Kind(), src, dst)
	}
	if route[0].Src != src || route[len(route)-1].Dst != dst {
		t.Fatalf("%s: route %d->%d has endpoints %v", topo.Kind(), src, dst, route)
	}
	if len(route) > topo.Diameter() {
		t.Fatalf("%s: route %d->%d length %d exceeds diameter %d",
			topo.Kind(), src, dst, len(route), topo.Diameter())
	}
	visited := map[int]bool{src: true}
	cur := src
	for _, l := range route {
		if l.Src != cur {
			t.Fatalf("%s: route %d->%d breaks at %v (expected src %d)", topo.Kind(), src, dst, l, cur)
		}
		if l.Dst < 0 || l.Dst >= topo.Nodes() {
			t.Fatalf("%s: route %d->%d leaves node space: %v", topo.Kind(), src, dst, l)
		}
		if visited[l.Dst] {
			t.Fatalf("%s: route %d->%d revisits node %d", topo.Kind(), src, dst, l.Dst)
		}
		visited[l.Dst] = true
		cur = l.Dst
	}
	return route
}

// minDist computes the true shortest path length (in links) between units by
// breadth-first search over the topology's link graph, independently of the
// Route implementation.
func minDist(topo Topology, src, dst int) int {
	adj := map[int][]int{}
	for a := 0; a < topo.Units(); a++ {
		for b := 0; b < topo.Units(); b++ {
			if a == b {
				continue
			}
			r := topo.Route(a, b)
			for _, l := range r {
				adj[l.Src] = append(adj[l.Src], l.Dst)
			}
		}
	}
	dist := map[int]int{src: 0}
	frontier := []int{src}
	for len(frontier) > 0 {
		var next []int
		for _, n := range frontier {
			for _, m := range adj[n] {
				if _, seen := dist[m]; !seen {
					dist[m] = dist[n] + 1
					next = append(next, m)
				}
			}
		}
		frontier = next
	}
	return dist[dst]
}

// Property tests over every topology and a range of unit counts: routes are
// minimal over the topology's own link graph, loop-free, and symmetric in
// length (|route(a,b)| == |route(b,a)|).
func TestRouteProperties(t *testing.T) {
	for _, kind := range Kinds() {
		for _, units := range []int{2, 3, 4, 5, 6, 8, 9, 12, 16} {
			topo := MustBuild(kind, units)
			for src := 0; src < units; src++ {
				for dst := 0; dst < units; dst++ {
					if src == dst {
						continue
					}
					route := routeOK(t, topo, src, dst)
					if want := minDist(topo, src, dst); len(route) != want {
						t.Fatalf("%s/%d: route %d->%d length %d, want minimal %d",
							kind, units, src, dst, len(route), want)
					}
					if back := topo.Route(dst, src); len(back) != len(route) {
						t.Fatalf("%s/%d: asymmetric route lengths %d->%d: %d vs %d",
							kind, units, src, dst, len(route), len(back))
					}
				}
			}
		}
	}
}

// Routes are deterministic: the same pair always yields the same links.
func TestRouteDeterministic(t *testing.T) {
	if err := quick.Check(func(a, b uint8, pick uint8) bool {
		units := 2 + int(pick%15)
		src, dst := int(a)%units, int(b)%units
		if src == dst {
			return true
		}
		for _, kind := range Kinds() {
			topo := MustBuild(kind, units)
			r1, r2 := topo.Route(src, dst), topo.Route(src, dst)
			if len(r1) != len(r2) {
				return false
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllShape(t *testing.T) {
	topo := MustBuild(KindAllToAll, 4)
	if topo.Diameter() != 1 || topo.Degree() != 3 || topo.Nodes() != 4 {
		t.Fatalf("alltoall/4: diameter=%d degree=%d nodes=%d",
			topo.Diameter(), topo.Degree(), topo.Nodes())
	}
	if r := topo.Route(1, 3); len(r) != 1 || r[0] != (Link{1, 3}) {
		t.Fatalf("alltoall route = %v", r)
	}
}

func TestMeshShape(t *testing.T) {
	m := newMesh2D(4)
	if m.w != 2 || m.h != 2 {
		t.Fatalf("mesh of 4 units = %dx%d, want 2x2", m.w, m.h)
	}
	if m6 := newMesh2D(6); m6.w != 3 || m6.h != 2 {
		t.Fatalf("mesh of 6 units = %dx%d, want 3x2", m6.w, m6.h)
	}
	if m5 := newMesh2D(5); m5.w != 5 || m5.h != 1 { // prime: 1D line
		t.Fatalf("mesh of 5 units = %dx%d, want 5x1", m5.w, m5.h)
	}
	// Dimension-ordered: 0=(0,0) -> 3=(1,1) goes X first through 1=(1,0).
	if r := MustBuild(KindMesh2D, 4).Route(0, 3); len(r) != 2 || r[0] != (Link{0, 1}) || r[1] != (Link{1, 3}) {
		t.Fatalf("mesh XY route = %v", r)
	}
	// Degree counts actual neighbors: a length-2 dimension contributes 1.
	if d := MustBuild(KindMesh2D, 4).Degree(); d != 2 { // 2x2: one X + one Y neighbor
		t.Fatalf("2x2 mesh degree = %d, want 2", d)
	}
	if d := MustBuild(KindMesh2D, 6).Degree(); d != 3 { // 3x2: two X + one Y
		t.Fatalf("3x2 mesh degree = %d, want 3", d)
	}
	if d := MustBuild(KindMesh2D, 9).Degree(); d != 4 { // 3x3
		t.Fatalf("3x3 mesh degree = %d, want 4", d)
	}
}

func TestRingShape(t *testing.T) {
	topo := MustBuild(KindRing, 6)
	if topo.Diameter() != 3 || topo.Degree() != 2 {
		t.Fatalf("ring/6: diameter=%d degree=%d", topo.Diameter(), topo.Degree())
	}
	// Shortest way around: 0->5 goes counter-clockwise, one hop.
	if r := topo.Route(0, 5); len(r) != 1 || r[0] != (Link{0, 5}) {
		t.Fatalf("ring route 0->5 = %v", r)
	}
	// Ties (opposite side) break clockwise.
	if r := topo.Route(0, 3); len(r) != 3 || r[0] != (Link{0, 1}) {
		t.Fatalf("ring tie route 0->3 = %v", r)
	}
}

func TestStarShape(t *testing.T) {
	topo := MustBuild(KindStar, 4)
	if topo.Nodes() != 5 || topo.Diameter() != 2 {
		t.Fatalf("star/4: nodes=%d diameter=%d", topo.Nodes(), topo.Diameter())
	}
	if r := topo.Route(0, 3); len(r) != 2 || r[0] != (Link{0, 4}) || r[1] != (Link{4, 3}) {
		t.Fatalf("star route = %v", r)
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"", KindAllToAll}, {"alltoall", KindAllToAll}, {" Mesh ", KindMesh2D},
		{"ring", KindRing}, {"STAR", KindStar}} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("torus"); err == nil {
		t.Fatal("ParseKind accepted an unknown topology")
	}
	if _, err := Build(KindMesh2D, 0); err == nil {
		t.Fatal("Build accepted zero units")
	}
}
