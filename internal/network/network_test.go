package network

import (
	"testing"
	"testing/quick"

	"syncron/internal/sim"
)

func newNet(units int) *Network {
	return NewAllToAll(DefaultConfig(sim.NewClock(2500)), units)
}

func TestIntraLatencyComposition(t *testing.T) {
	n := newNet(2)
	cfg := n.Config()
	// 18-byte message: 2 flits + arbiter + 2 hops.
	got := n.IntraDelay(0, 0, PortSE, 18)
	want := cfg.CoreClock.Cycles(2 + cfg.ArbiterCycles + cfg.HopCycles*cfg.Hops)
	if got != want {
		t.Fatalf("intra delay = %v, want %v", got, want)
	}
}

func TestIntraPortQueueing(t *testing.T) {
	n := newNet(1)
	a := n.IntraDelay(0, 0, PortSE, 64)
	b := n.IntraDelay(0, 0, PortSE, 64) // same port: serializes
	if b <= a {
		t.Fatalf("same-port messages did not serialize: %v, %v", a, b)
	}
	c := n.IntraDelay(0, 0, PortMemory, 64) // different port: parallel
	if c != a {
		t.Fatalf("different-port message was delayed: %v vs %v", c, a)
	}
}

// The dense port remap must keep every distinct port id on a distinct
// occupancy slot: cores, SE, memory, and link egress ports never alias.
func TestPortIndexInjective(t *testing.T) {
	n := newNet(4)
	ports := []int{PortSE, PortMemory}
	for c := 0; c < 32; c++ {
		ports = append(ports, PortCore(c))
	}
	for u := 0; u < 4; u++ {
		ports = append(ports, linkPort(u))
	}
	seen := map[int]int{}
	for _, p := range ports {
		idx := n.portIndex(p)
		if prev, dup := seen[idx]; dup {
			t.Fatalf("ports %d and %d map to the same dense index %d", prev, p, idx)
		}
		seen[idx] = p
	}
}

func TestInterLinkLatency(t *testing.T) {
	n := newNet(2)
	cfg := n.Config()
	got := n.InterDelay(0, 0, 1, 64)
	ser := linkSerialization(64, cfg.LinkBytesPerSec)
	want := ser + cfg.LinkLatency + cfg.CoreClock.Cycles(cfg.LinkFixedCycles)
	if got != want {
		t.Fatalf("inter delay = %v, want %v", got, want)
	}
	// The 40ns fixed latency must dominate a 64B serialization (5ns).
	if cfg.LinkLatency != 40*sim.Nanosecond {
		t.Fatalf("default link latency %v, want 40ns (Table 5)", cfg.LinkLatency)
	}
}

// Link serialization is integer picoseconds: on the default 12.8 GB/s it
// matches the historical float64 math exactly, and on bandwidths that are
// not powers of two it stays platform-independent (pure int64 arithmetic)
// and within one picosecond of the real-valued result.
func TestLinkSerializationInteger(t *testing.T) {
	if got := linkSerialization(64, 12_800_000_000); got != 5000 {
		t.Fatalf("64B at 12.8GB/s = %dps, want 5000", got)
	}
	if got := linkSerialization(18, 12_800_000_000); got != 1406 { // 1406.25 truncates
		t.Fatalf("18B at 12.8GB/s = %dps, want 1406", got)
	}
	// Non-power-of-two bandwidth: 12.3 GB/s.
	const bps = 12_300_000_000
	if got := linkSerialization(64, bps); got != 5203 { // 5203.25... truncates
		t.Fatalf("64B at 12.3GB/s = %dps, want 5203", got)
	}
	// The whole byte range used by the simulator stays exact int64 math.
	for bytes := 1; bytes <= 4096; bytes++ {
		got := linkSerialization(bytes, bps)
		want := int64(bytes) * 1_000_000_000_000 / bps
		if int64(got) != want {
			t.Fatalf("linkSerialization(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestInterSameUnitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InterDelay within one unit must panic")
		}
	}()
	newNet(2).InterDelay(0, 1, 1, 64)
}

func TestTransferCountsTraffic(t *testing.T) {
	n := newNet(2)
	n.Transfer(0, 0, 0, PortSE, 18)
	intra0 := n.IntraBits()
	if intra0 != 18*8 {
		t.Fatalf("intra bits = %d, want %d", intra0, 18*8)
	}
	n.Transfer(0, 0, 1, PortSE, 18)
	if n.Stats.InterBits.Value() != 18*8 {
		t.Fatalf("inter bits = %d, want %d", n.Stats.InterBits.Value(), 18*8)
	}
	// A cross-unit transfer also crosses both endpoint crossbars.
	if n.IntraBits() != intra0+2*18*8 {
		t.Fatalf("cross-unit transfer should add 2 intra legs: %d", n.IntraBits())
	}
	if n.Stats.InterMsgs.Value() != 1 || n.Stats.LinkHops.Value() != 1 {
		t.Fatalf("alltoall cross-unit transfer: msgs=%d hops=%d, want 1/1",
			n.Stats.InterMsgs.Value(), n.Stats.LinkHops.Value())
	}
}

// Property: transfers never complete before they start, cross-unit transfers
// are never faster than local ones, and bigger messages never arrive earlier
// (on a fresh network).
func TestTransferMonotonicity(t *testing.T) {
	if err := quick.Check(func(bytes uint16, start uint32) bool {
		b := int(bytes%4096) + 1
		at := sim.Time(start)
		n1 := newNet(2)
		local := n1.Transfer(at, 0, 0, PortSE, b)
		n2 := newNet(2)
		remote := n2.Transfer(at, 0, 1, PortSE, b)
		if local < at || remote < at || remote <= local {
			return false
		}
		n3 := newNet(2)
		bigger := n3.Transfer(at, 0, 1, PortSE, b+64)
		return bigger >= remote
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyModel(t *testing.T) {
	n := newNet(2)
	n.Transfer(0, 0, 1, PortSE, 10) // 80 bits inter + 160 bits intra (2 legs)
	cfg := n.Config()
	want := 80*cfg.InterPJPerBit + 160*cfg.IntraPJPerBitHop*float64(cfg.Hops)
	if got := n.EnergyPJ(); got != want {
		t.Fatalf("energy = %f, want %f", got, want)
	}
}

// Multi-hop topologies pay inter-unit energy once per link traversed.
func TestEnergyScalesWithRouteLength(t *testing.T) {
	cfg := DefaultConfig(sim.NewClock(2500))
	ringNet := New(cfg, MustBuild(KindRing, 8))
	ringNet.Transfer(0, 0, 4, PortSE, 10) // 4 links around the ring
	if hops := ringNet.Stats.LinkHops.Value(); hops != 4 {
		t.Fatalf("ring 0->4 link hops = %d, want 4", hops)
	}
	if bits := ringNet.Stats.InterBits.Value(); bits != 4*80 {
		t.Fatalf("ring inter bits = %d, want %d", bits, 4*80)
	}
	if avg := ringNet.Stats.AvgRouteLinks(); avg != 4 {
		t.Fatalf("avg route links = %f, want 4", avg)
	}
	// Intermediate units' crossbars are crossed too: 0 egress, 1..3 forward,
	// 4 delivery = 5 intra legs.
	if msgs := ringNet.IntraMsgs(); msgs != 5 {
		t.Fatalf("ring intra legs = %d, want 5", msgs)
	}
}

// Star's hub is a switch, not a unit: no crossbar legs at the hub, and hub
// links serialize contending transfers.
func TestStarHubContention(t *testing.T) {
	cfg := DefaultConfig(sim.NewClock(2500))
	n := New(cfg, MustBuild(KindStar, 4))
	a := n.Transfer(0, 0, 1, PortSE, 64)
	if msgs := n.IntraMsgs(); msgs != 2 {
		t.Fatalf("star transfer crossed %d crossbars, want 2 (src+dst only)", msgs)
	}
	// A second transfer into the same destination contends on the hub->1 link.
	b := n.Transfer(0, 2, 1, PortMemory, 64)
	if b <= a {
		t.Fatalf("hub link contention not modeled: %v then %v", a, b)
	}
	loads := n.LinkLoads()
	if len(loads) != 3 { // 0->hub, 2->hub, hub->1
		t.Fatalf("link loads = %v, want 3 active links", loads)
	}
}
