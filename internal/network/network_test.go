package network

import (
	"testing"
	"testing/quick"

	"syncron/internal/sim"
)

func newNet(units int) *Network {
	return New(DefaultConfig(sim.NewClock(2500)), units)
}

func TestIntraLatencyComposition(t *testing.T) {
	n := newNet(2)
	cfg := n.Config()
	// 18-byte message: 2 flits + arbiter + 2 hops.
	got := n.IntraDelay(0, 0, PortSE, 18)
	want := cfg.CoreClock.Cycles(2 + cfg.ArbiterCycles + cfg.HopCycles*cfg.Hops)
	if got != want {
		t.Fatalf("intra delay = %v, want %v", got, want)
	}
}

func TestIntraPortQueueing(t *testing.T) {
	n := newNet(1)
	a := n.IntraDelay(0, 0, PortSE, 64)
	b := n.IntraDelay(0, 0, PortSE, 64) // same port: serializes
	if b <= a {
		t.Fatalf("same-port messages did not serialize: %v, %v", a, b)
	}
	c := n.IntraDelay(0, 0, PortMemory, 64) // different port: parallel
	if c != a {
		t.Fatalf("different-port message was delayed: %v vs %v", c, a)
	}
}

func TestInterLinkLatency(t *testing.T) {
	n := newNet(2)
	cfg := n.Config()
	got := n.InterDelay(0, 0, 1, 64)
	ser := sim.Time(float64(64) / cfg.LinkBytesPerSec * float64(sim.Second))
	want := ser + cfg.LinkLatency + cfg.CoreClock.Cycles(cfg.LinkFixedCycles)
	if got != want {
		t.Fatalf("inter delay = %v, want %v", got, want)
	}
	// The 40ns fixed latency must dominate a 64B serialization (5ns).
	if cfg.LinkLatency != 40*sim.Nanosecond {
		t.Fatalf("default link latency %v, want 40ns (Table 5)", cfg.LinkLatency)
	}
}

func TestInterSameUnitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InterDelay within one unit must panic")
		}
	}()
	newNet(2).InterDelay(0, 1, 1, 64)
}

func TestTransferCountsTraffic(t *testing.T) {
	n := newNet(2)
	n.Transfer(0, 0, 0, PortSE, 18)
	intra0 := n.Stats.IntraBits.Value()
	if intra0 != 18*8 {
		t.Fatalf("intra bits = %d, want %d", intra0, 18*8)
	}
	n.Transfer(0, 0, 1, PortSE, 18)
	if n.Stats.InterBits.Value() != 18*8 {
		t.Fatalf("inter bits = %d, want %d", n.Stats.InterBits.Value(), 18*8)
	}
	// A cross-unit transfer also crosses both endpoint crossbars.
	if n.Stats.IntraBits.Value() != intra0+2*18*8 {
		t.Fatalf("cross-unit transfer should add 2 intra legs: %d", n.Stats.IntraBits.Value())
	}
}

// Property: transfers never complete before they start, cross-unit transfers
// are never faster than local ones, and bigger messages never arrive earlier
// (on a fresh network).
func TestTransferMonotonicity(t *testing.T) {
	if err := quick.Check(func(bytes uint16, start uint32) bool {
		b := int(bytes%4096) + 1
		at := sim.Time(start)
		n1 := newNet(2)
		local := n1.Transfer(at, 0, 0, PortSE, b)
		n2 := newNet(2)
		remote := n2.Transfer(at, 0, 1, PortSE, b)
		if local < at || remote < at || remote <= local {
			return false
		}
		n3 := newNet(2)
		bigger := n3.Transfer(at, 0, 1, PortSE, b+64)
		return bigger >= remote
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyModel(t *testing.T) {
	n := newNet(2)
	n.Transfer(0, 0, 1, PortSE, 10) // 80 bits inter + 160 bits intra (2 legs)
	cfg := n.Config()
	want := 80*cfg.InterPJPerBit + 160*cfg.IntraPJPerBitHop*float64(cfg.Hops)
	if got := n.Stats.EnergyPJ(cfg); got != want {
		t.Fatalf("energy = %f, want %f", got, want)
	}
}
