package network

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"syncron/internal/sim"
)

// goldenTrace drives net through a deterministic pseudo-random mix of
// same-unit and cross-unit transfers on 4 units and returns one line per
// call: "src dst port bytes t arrival".
func goldenTrace(net *Network) string {
	const units = 4
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	var b strings.Builder
	t := sim.Time(0)
	for i := 0; i < 600; i++ {
		src := next(units)
		dst := next(units)
		var port int
		switch next(3) {
		case 0:
			port = PortSE
		case 1:
			port = PortMemory
		default:
			port = PortCore(next(15))
		}
		bytes := []int{16, 18, 19, 64, 72}[next(5)]
		t += sim.Time(next(2000))
		arr := net.Transfer(t, src, dst, port, bytes)
		fmt.Fprintf(&b, "%d %d %d %d %d %d\n", src, dst, port, bytes, int64(t), int64(arr))
	}
	fmt.Fprintf(&b, "intra %d inter %d\n", net.IntraBits(), net.Stats.InterBits.Value())
	return b.String()
}

const goldenPath = "testdata/transfer_alltoall.golden"

// TestAllToAllGoldenTrace locks the full-point-to-point timing model: the
// route-based AllToAll topology must reproduce the pre-refactor Transfer
// arrival times bit for bit. Regenerate with -run GoldenTrace -update only
// for a deliberate, documented timing-model change.
func TestAllToAllGoldenTrace(t *testing.T) {
	got := goldenTrace(newNet(4))
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden updated")
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("AllToAll transfer trace deviates from pre-refactor golden (len got %d, want %d)",
			len(got), len(want))
	}
}
