package network

import (
	"fmt"
	"testing"

	"syncron/internal/sim"
)

// BenchmarkTransfer exercises the hot path of every simulated message — the
// crossbar/link walk with its dense occupancy lookups — across topologies.
// This is the microbenchmark behind the xbarBusy map->slice change.
func BenchmarkTransfer(b *testing.B) {
	for _, kind := range Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			n := New(DefaultConfig(sim.NewClock(2500)), MustBuild(kind, 4))
			ports := []int{PortSE, PortMemory, PortCore(0), PortCore(7), PortCore(14)}
			b.ReportAllocs()
			b.ResetTimer()
			t := sim.Time(0)
			for i := 0; i < b.N; i++ {
				t += 100
				n.Transfer(t, i%4, (i+i/4)%4, ports[i%len(ports)], 16+i%64)
			}
		})
	}
}

// BenchmarkIntraDelay isolates the crossbar occupancy structure itself.
func BenchmarkIntraDelay(b *testing.B) {
	for _, cores := range []int{15, 64} {
		b.Run(fmt.Sprintf("cores%d", cores), func(b *testing.B) {
			n := newNet(4)
			b.ReportAllocs()
			b.ResetTimer()
			t := sim.Time(0)
			for i := 0; i < b.N; i++ {
				t += 50
				n.IntraDelay(t, i%4, PortCore(i%cores), 64)
			}
		})
	}
}
