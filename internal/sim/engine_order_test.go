package sim_test

import (
	"testing"

	"syncron/internal/sim"
	"syncron/internal/sim/simtest"
)

// These tests pin the engine's dispatch-order contract — global (at, seq)
// order — through the shared simtest.CheckOrder invariant checker, across the
// scenarios that historically threatened it: compaction shuffling the heap,
// and the same-timestamp FIFO fast path interleaving with heap events. The
// parallel-dispatcher tests (parallel_test.go, paralleltest/) reuse the same
// checker, so all dispatch paths are held to one definition of "in order".

// Compaction must preserve deterministic (at, seq) execution order across a
// mix of cancels and survivors.
func TestEngineCompactionPreservesOrder(t *testing.T) {
	e := sim.NewEngine()
	var rec simtest.Recorder
	var cancelled []sim.Handle
	for i := 0; i < 500; i++ {
		i := i
		ev := e.Schedule(sim.Time(1000-i%7), func(at sim.Time) { rec.Observe(at, uint64(i)) })
		if i%3 != 0 {
			cancelled = append(cancelled, ev)
		}
	}
	for _, ev := range cancelled {
		e.Cancel(ev)
	}
	e.Run()
	want := 0
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if len(rec.Events) != want {
		t.Fatalf("ran %d events, want %d", len(rec.Events), want)
	}
	// Survivors must run grouped by 1000-i%7 ascending and in schedule order
	// within one timestamp.
	rec.Check(t)
}

// Zero-delay events (the nowQ fast path) must interleave with heap events at
// the same timestamp in global (at, seq) order.
func TestZeroDelayFastPathOrdering(t *testing.T) {
	e := sim.NewEngine()
	var rec simtest.Recorder
	obs := func(seq uint64) func(sim.Time) {
		return func(at sim.Time) { rec.Observe(at, seq) }
	}
	e.Schedule(10, func(at sim.Time) {
		rec.Observe(at, 1)
		// Zero-delay self-schedules: must run after every event already
		// queued at t=10, in scheduling order.
		e.Schedule(10, obs(4))
		e.Schedule(10, func(at sim.Time) {
			rec.Observe(at, 5)
			e.Schedule(10, obs(6))
		})
	})
	e.Schedule(10, obs(2))
	e.Schedule(10, obs(3))
	e.Schedule(20, obs(7))
	e.Run()
	if len(rec.Events) != 7 {
		t.Fatalf("ran %d events, want 7: %v", len(rec.Events), rec.Events)
	}
	// The observer seqs are the schedule order, so CheckOrder proves the
	// exact serial interleaving 1..6 at t=10 then 7 at t=20.
	rec.Check(t)
}
