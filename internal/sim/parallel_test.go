package sim_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"syncron/internal/sim"
	"syncron/internal/sim/simtest"
)

// parallelWorkerCounts is the grid every serial-vs-parallel equivalence test
// runs over. 1 exercises the full batch/commit protocol without concurrency;
// the rest shuffle units across workers in different ways.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// TestParallelBasicEquivalence runs a small mixed serial/unit-tagged event
// program and requires the executed stream to be identical to serial under
// every worker count.
func TestParallelBasicEquivalence(t *testing.T) {
	build := func(e *sim.Engine) *simtest.Recorder {
		rec := &simtest.Recorder{}
		// Unit-tagged events observe through zero-delay serial barriers, so
		// every append to the recorder happens on the engine goroutine, and
		// the recorded sequence is the committed global order.
		for u := 0; u < 5; u++ {
			u := u
			var tick sim.UnitFunc
			tick = func(ctx *sim.UnitCtx, at sim.Time) {
				ctx.Schedule(at, -1, func(_ *sim.UnitCtx, at sim.Time) {
					rec.Observe(at, uint64(u)<<32|uint64(len(rec.Events)))
				})
				if at < 100 {
					ctx.After(sim.Time(7+u), u, tick)
				}
			}
			e.ScheduleUnit(sim.Time(u+1), u, tick)
		}
		e.Schedule(55, func(at sim.Time) { rec.Observe(at, 1<<40) })
		return rec
	}

	serial := sim.NewEngine()
	sref := build(serial)
	end := serial.Run()

	for _, w := range parallelWorkerCounts {
		e := sim.NewEngine()
		e.SetParallelism(w)
		rec := build(e)
		if got := e.Run(); got != end {
			t.Fatalf("workers=%d: final time %v, want %v", w, got, end)
		}
		if e.Executed != serial.Executed {
			t.Fatalf("workers=%d: executed %d events, serial executed %d", w, e.Executed, serial.Executed)
		}
		if !reflect.DeepEqual(rec.Events, sref.Events) {
			t.Fatalf("workers=%d: event stream diverged from serial\nparallel: %v\nserial:   %v",
				w, rec.Events, sref.Events)
		}
	}
}

// scriptState is a deterministic randomized event program that runs
// identically under any dispatcher: every decision comes from per-unit RNGs
// consumed in per-unit execution order, every mutation is confined to its
// unit (or to barrier events on the engine goroutine), and cross-unit cancels
// only target strictly-future events, as the parallel contract requires.
type scriptState struct {
	units     []scriptUnit
	serialLog []simtest.Event
}

type scriptUnit struct {
	id      int
	rng     *sim.RNG
	nextID  uint64
	log     []simtest.Event
	handles []scriptHandle
}

type scriptHandle struct {
	h    sim.Handle
	at   sim.Time
	unit int
}

// buildScript schedules roots for n units; each event may schedule future
// same-unit/cross-unit/zero-delay events, spawn serial barriers, and cancel
// previously created events, down to the given depth.
func buildScript(e *sim.Engine, n int, depth int, seed uint64) *scriptState {
	st := &scriptState{units: make([]scriptUnit, n)}
	var step func(u *scriptUnit, d int) sim.UnitFunc
	step = func(u *scriptUnit, d int) sim.UnitFunc {
		return func(ctx *sim.UnitCtx, at sim.Time) {
			u.nextID++
			u.log = append(u.log, simtest.Event{At: at, Seq: u.nextID})
			if d <= 0 {
				return
			}
			r := u.rng.Intn(100)
			// Future same-unit event (always; keeps the script alive).
			dd := sim.Time(1 + u.rng.Intn(5))
			h := ctx.After(dd, u.id, step(u, d-1))
			u.handles = append(u.handles, scriptHandle{h: h, at: at + dd, unit: u.id})
			if r < 40 {
				// Zero-delay same-unit event: lands in the next round of the
				// same timestamp.
				h := ctx.Schedule(at, u.id, step(u, d-1))
				u.handles = append(u.handles, scriptHandle{h: h, at: at, unit: u.id})
			}
			if r < 30 {
				// Future cross-unit event.
				v := (u.id + 1 + u.rng.Intn(len(st.units)-1)) % len(st.units)
				dd := sim.Time(2 + u.rng.Intn(4))
				h := ctx.After(dd, v, step(&st.units[v], d-1))
				u.handles = append(u.handles, scriptHandle{h: h, at: at + dd, unit: v})
			}
			if r < 20 {
				// Serial barrier observing global order.
				id := uint64(u.id)<<32 | u.nextID
				ctx.After(sim.Time(u.rng.Intn(3)), -1, func(_ *sim.UnitCtx, at sim.Time) {
					st.serialLog = append(st.serialLog, simtest.Event{At: at, Seq: id})
				})
			}
			if r < 50 && len(u.handles) > 0 {
				// Cancel something this unit created: same-unit targets are
				// always legal (including same-timestamp); cross-unit targets
				// only while they are strictly in the future.
				k := u.rng.Intn(len(u.handles))
				rec := u.handles[k]
				if rec.unit == u.id || rec.at > at {
					ctx.Cancel(rec.h)
				}
			}
		}
	}
	for i := range st.units {
		u := &st.units[i]
		u.id = i
		u.rng = sim.NewRNG(seed + uint64(i)*0x9e3779b97f4a7c15)
		e.ScheduleUnit(sim.Time(1+i%7), i, step(u, depth))
	}
	return st
}

func (st *scriptState) fingerprint() string {
	var b strings.Builder
	for i := range st.units {
		fmt.Fprintf(&b, "unit %d:", i)
		for _, ev := range st.units[i].log {
			fmt.Fprintf(&b, " %d@%d", ev.Seq, int64(ev.At))
		}
		b.WriteByte('\n')
	}
	b.WriteString("serial:")
	for _, ev := range st.serialLog {
		fmt.Fprintf(&b, " %d@%d", ev.Seq, int64(ev.At))
	}
	return b.String()
}

// TestParallelScriptEquivalence is the randomized metamorphic check: the same
// scripted program must produce identical per-unit logs, barrier log,
// Executed count, and final time under serial and parallel dispatch at every
// worker count.
func TestParallelScriptEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234567} {
		serial := sim.NewEngine()
		sref := buildScript(serial, 8, 6, seed)
		end := serial.Run()
		want := sref.fingerprint()
		for _, w := range parallelWorkerCounts {
			e := sim.NewEngine()
			e.SetParallelism(w)
			st := buildScript(e, 8, 6, seed)
			if got := e.Run(); got != end {
				t.Fatalf("seed=%d workers=%d: final time %v, want %v", seed, w, got, end)
			}
			if e.Executed != serial.Executed {
				t.Fatalf("seed=%d workers=%d: executed %d, serial executed %d",
					seed, w, e.Executed, serial.Executed)
			}
			if got := st.fingerprint(); got != want {
				t.Fatalf("seed=%d workers=%d: execution diverged from serial\ngot:\n%s\nwant:\n%s",
					seed, w, got, want)
			}
		}
	}
}

// TestParallelChurnStress is the high cancel/reschedule churn stress test the
// CI race job runs: many units, deep recursion, heavy cancels — enough
// traffic through the buffered Schedule/Cancel commit path to surface any
// data race or ordering bug across workers.
func TestParallelChurnStress(t *testing.T) {
	units, depth, floor := 32, 13, uint64(10_000)
	if testing.Short() {
		units, depth, floor = 16, 9, 1_000
	}
	serial := sim.NewEngine()
	sref := buildScript(serial, units, depth, 99)
	end := serial.Run()
	want := sref.fingerprint()
	if serial.Executed < floor {
		t.Fatalf("stress script too small: %d events", serial.Executed)
	}
	for _, w := range parallelWorkerCounts {
		e := sim.NewEngine()
		e.SetParallelism(w)
		st := buildScript(e, units, depth, 99)
		if got := e.Run(); got != end {
			t.Fatalf("workers=%d: final time %v, want %v", w, got, end)
		}
		if e.Executed != serial.Executed {
			t.Fatalf("workers=%d: executed %d, serial executed %d", w, e.Executed, serial.Executed)
		}
		if got := st.fingerprint(); got != want {
			t.Fatalf("workers=%d: execution diverged from serial under churn", w)
		}
	}
}

// TestParallelSameUnitSameTimestampCancel pins the worker-local cancel path:
// an event cancelling a later same-unit event at the same timestamp must
// prevent it from running, exactly as serially.
func TestParallelSameUnitSameTimestampCancel(t *testing.T) {
	for _, w := range parallelWorkerCounts {
		e := sim.NewEngine()
		e.SetParallelism(w)
		ran := 0
		var victim sim.Handle
		// The canceller is scheduled first (smaller seq), so serially the
		// victim would never run; the parallel dispatcher must agree.
		e.ScheduleUnit(10, 3, func(ctx *sim.UnitCtx, _ sim.Time) { ctx.Cancel(victim) })
		victim = e.ScheduleUnit(10, 3, func(*sim.UnitCtx, sim.Time) {
			t.Errorf("workers=%d: cancelled same-unit event ran", w)
		})
		e.ScheduleUnit(10, 3, func(*sim.UnitCtx, sim.Time) { ran++ })
		e.Run()
		if ran != 1 {
			t.Fatalf("workers=%d: survivor ran %d times, want 1", w, ran)
		}
		if e.Executed != 2 {
			t.Fatalf("workers=%d: executed %d events, want 2", w, e.Executed)
		}
	}
}

// TestParallelCrossUnitSameTimestampCancelPanics pins the divergence
// detector: a cancel that would require un-running another unit's
// same-timestamp event must panic instead of silently diverging.
func TestParallelCrossUnitSameTimestampCancelPanics(t *testing.T) {
	e := sim.NewEngine()
	e.SetParallelism(2)
	var victim sim.Handle
	e.ScheduleUnit(10, 0, func(ctx *sim.UnitCtx, _ sim.Time) { ctx.Cancel(victim) })
	victim = e.ScheduleUnit(10, 1, func(*sim.UnitCtx, sim.Time) {})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("cross-unit same-timestamp cancel must panic under parallel dispatch")
		}
	}()
	e.Run()
}

// TestParallelStopRequeuesBatch: Stop from a serial barrier mid-batch leaves
// the unexecuted tail queued, and a later Run picks it up in serial order.
func TestParallelStopRequeuesBatch(t *testing.T) {
	e := sim.NewEngine()
	e.SetParallelism(4)
	var rec simtest.Recorder
	// Unit events observe through zero-delay barriers: the recorder is only
	// ever touched on the engine goroutine, and barrier commit order is the
	// deterministic (parentSeq, opIdx) order.
	observe := func(seq uint64) sim.UnitFunc {
		return func(ctx *sim.UnitCtx, at sim.Time) {
			ctx.Schedule(at, -1, func(_ *sim.UnitCtx, at sim.Time) { rec.Observe(at, seq) })
		}
	}
	e.Schedule(10, func(at sim.Time) { rec.Observe(at, 1) })
	e.Schedule(10, func(at sim.Time) { rec.Observe(at, 2); e.Stop() })
	e.ScheduleUnit(10, 0, observe(3))
	e.ScheduleUnit(10, 1, observe(4))
	e.Schedule(20, func(at sim.Time) { rec.Observe(at, 5) })
	e.Run()
	if len(rec.Events) != 2 {
		t.Fatalf("ran %d events before Stop, want 2: %v", len(rec.Events), rec.Events)
	}
	if e.Pending() != 3 {
		t.Fatalf("%d events pending after Stop, want 3", e.Pending())
	}
	e.Run()
	// 5 observations land (the two unit events' barriers run zero-delay), in
	// global (at, seq) order.
	if len(rec.Events) != 5 {
		t.Fatalf("resume ran %d observations total, want 5: %v", len(rec.Events), rec.Events)
	}
	rec.Check(t)
}

// TestParallelRunUntil pins deadline semantics under the parallel dispatcher:
// events at the deadline (including zero-delay ones) run, later events stay.
func TestParallelRunUntil(t *testing.T) {
	e := sim.NewEngine()
	e.SetParallelism(2)
	ran := 0
	e.ScheduleUnit(100, 0, func(ctx *sim.UnitCtx, at sim.Time) {
		ran++
		ctx.Schedule(at, 0, func(*sim.UnitCtx, sim.Time) { ran++ })
	})
	e.Schedule(101, func(sim.Time) { t.Error("post-deadline event ran") })
	if got := e.RunUntil(100); got != 100 {
		t.Fatalf("RunUntil(100) = %v, want 100", got)
	}
	if ran != 2 {
		t.Fatalf("ran %d events at the deadline, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want the post-deadline one", e.Pending())
	}
}

// TestParallelMaxEventsGuard: the runaway guard still fires under parallel
// dispatch (at batch granularity).
func TestParallelMaxEventsGuard(t *testing.T) {
	e := sim.NewEngine()
	e.SetParallelism(2)
	e.MaxEvents = 100
	var loop sim.UnitFunc
	loop = func(ctx *sim.UnitCtx, _ sim.Time) { ctx.After(1, 0, loop) }
	e.ScheduleUnit(1, 0, loop)
	defer func() {
		if recover() == nil {
			t.Error("parallel Run must panic when MaxEvents is exceeded")
		}
	}()
	e.Run()
}

// TestParallelWorkerPanicPropagates: a panic inside a unit-tagged callback
// resurfaces as a panic of Run on the engine goroutine.
func TestParallelWorkerPanicPropagates(t *testing.T) {
	e := sim.NewEngine()
	e.SetParallelism(4)
	e.ScheduleUnit(5, 2, func(*sim.UnitCtx, sim.Time) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to Run")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("propagated panic = %v, want \"boom\"", r)
		}
	}()
	e.Run()
}

// TestParallelHandleLifecycle: cancels through worker-buffered ops observe
// the same stale-handle guarantees as Engine.Cancel.
func TestParallelHandleLifecycle(t *testing.T) {
	e := sim.NewEngine()
	e.SetParallelism(2)
	ran := 0
	var h sim.Handle
	h = e.ScheduleUnit(10, 0, func(ctx *sim.UnitCtx, _ sim.Time) {
		ran++
		ctx.Cancel(h) // own event, already running: must be a no-op
	})
	e.ScheduleUnit(20, 1, func(ctx *sim.UnitCtx, _ sim.Time) {
		ran++
		ctx.Cancel(h) // stale: slot recycled after the t=10 batch
		ctx.Cancel(sim.Handle{})
	})
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
}

// TestSerialDispatchRunsUnitEvents: without SetParallelism, unit-tagged
// events run on the plain serial path in the same global order.
func TestSerialDispatchRunsUnitEvents(t *testing.T) {
	e := sim.NewEngine()
	var rec simtest.Recorder
	e.ScheduleUnit(10, 4, func(ctx *sim.UnitCtx, at sim.Time) {
		rec.Observe(at, 1)
		ctx.Schedule(at, 4, func(_ *sim.UnitCtx, at sim.Time) { rec.Observe(at, 3) })
	})
	e.Schedule(10, func(at sim.Time) { rec.Observe(at, 2) })
	e.Run()
	if len(rec.Events) != 3 {
		t.Fatalf("ran %d events, want 3", len(rec.Events))
	}
	rec.Check(t)
}
