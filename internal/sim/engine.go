package sim

import "fmt"

// Handle names one scheduled event. Handles are small values: copying them is
// free and the zero Handle refers to no event (Cancel on it is a no-op).
//
// A Handle stays valid until its event runs or is cancelled; after that the
// engine recycles the event's storage for future Schedule calls. Handles are
// generation-counted, so a stale Handle held across recycling can never alias
// the slot's new occupant: Cancel on it is a no-op.
type Handle struct {
	slot int32  // slot index + 1; 0 means "no event"
	gen  uint32 // slot generation at schedule time
}

// Valid reports whether h refers to an event (it says nothing about whether
// that event already ran; Cancel is always safe).
func (h Handle) Valid() bool { return h.slot != 0 }

// slot lifecycle states.
const (
	slotFree     uint8 = iota // on the freelist
	slotHeap                  // queued in the time-ordered heap
	slotNow                   // queued in the same-timestamp FIFO
	slotDead                  // cancelled; its queue entry is lazily removed
	slotBatch                 // drained into the current parallel batch (see parallel.go)
	slotBuffered              // created by a worker mid-phase; not yet committed
)

// serialUnit marks an event with no owning unit: it is a barrier that the
// parallel dispatcher executes alone on the engine goroutine.
const serialUnit int32 = -1

// eventSlot is the engine-owned storage for one scheduled event. Slots live
// in a single arena and are recycled through a freelist, so steady-state
// Schedule/run cycles perform no heap allocations.
type eventSlot struct {
	fn    func(Time)
	ufn   UnitFunc // set instead of fn for unit-tagged events
	at    Time
	seq   uint64
	gen   uint32
	unit  int32 // owning unit, or serialUnit
	state uint8
}

// heapEntry is one priority-queue element. The queue stores these by value —
// the ordering keys (at, seq) are embedded, so heapify never chases a pointer
// into the slot arena.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// entryLess orders entries by (at, seq): timestamp first, schedule order
// within one timestamp.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; all model code runs on the engine's goroutine.
//
// The hot path is allocation-free in steady state: event storage is recycled
// through a freelist, the priority queue stores index entries by value, and
// events scheduled at the current timestamp (the zero-delay handoff pattern
// of the program layer) bypass the heap through a FIFO fast path.
type Engine struct {
	now Time
	seq uint64

	heap    []heapEntry // time-ordered binary heap of future events
	nowQ    []int32     // FIFO of events scheduled at exactly e.now
	nowHead int         // first live index into nowQ

	slots []eventSlot // arena of event storage
	free  []int32     // recycled slot indices

	stopped bool
	dead    int // cancelled events still sitting in the heap

	par  *parRuntime // non-nil selects the parallel dispatcher (SetParallelism)
	sctx *UnitCtx    // lazily built direct-mode context for serial UnitFunc calls
	ictx *UnitCtx    // lazily built inline-phase context (see runPhaseInline)

	hook     Hook // nil by default; see SetHook
	hookedAt Time // last timestamp OnAdvance fired for (dedup guard)

	// Executed counts events run since construction; useful in tests, as a
	// runaway guard, and as the events/sec numerator of macro-benchmarks.
	Executed uint64

	// ExecutedBarriers counts executed events that had no owning unit (plain
	// Schedule, or ScheduleUnit with a negative unit). Under the parallel
	// dispatcher these are serial barriers; the counter is the test hook that
	// lets model layers assert their steady-state hot path stays unit-tagged.
	// It is maintained by both dispatchers, so assertions hold in serial runs.
	ExecutedBarriers uint64

	// CrossUnitCancels counts worker-buffered Cancels whose committed target
	// belonged to a different unit than the cancelling event. Cross-unit
	// cancels of future events are legal (and counted); cross-unit cancels of
	// same-timestamp events panic by contract. Model-layer audits pin this
	// counter at zero over full workload grids.
	CrossUnitCancels uint64

	// MaxEvents aborts the run (with a panic) when exceeded; 0 means no limit.
	MaxEvents uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// alloc pops a recycled slot or grows the arena.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		return i
	}
	e.slots = append(e.slots, eventSlot{})
	return int32(len(e.slots) - 1)
}

// freeSlot recycles slot i. Bumping the generation invalidates every
// outstanding Handle to the slot's previous occupant.
func (e *Engine) freeSlot(i int32) {
	s := &e.slots[i]
	s.fn = nil
	s.ufn = nil
	s.gen++
	s.state = slotFree
	e.free = append(e.free, i)
}

// Schedule runs fn at time at; fn receives that timestamp. Scheduling in the
// past panics: the model has a causality bug that must not be masked.
//
// Events scheduled at exactly the current time skip the priority queue: they
// are appended to a same-timestamp FIFO, which preserves the global (at, seq)
// order because every event already in the heap at this timestamp was
// scheduled earlier (smaller seq) and later heap arrivals are strictly in the
// future.
func (e *Engine) Schedule(at Time, fn func(Time)) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	i := e.alloc()
	s := &e.slots[i]
	s.fn = fn
	s.at = at
	s.seq = e.seq
	s.unit = serialUnit
	if at == e.now {
		s.state = slotNow
		e.nowQ = append(e.nowQ, i)
	} else {
		s.state = slotHeap
		e.heapPush(heapEntry{at: at, seq: e.seq, slot: i})
	}
	return Handle{slot: i + 1, gen: s.gen}
}

// ScheduleUnit runs fn at time at on behalf of unit. Events of the same unit
// never execute concurrently with each other and always execute in (at, seq)
// order; events of different units sharing a timestamp may execute
// concurrently under the parallel dispatcher (SetParallelism). A negative
// unit makes the event a serial barrier, exactly like Schedule.
//
// fn receives a UnitCtx whose Schedule/Cancel are the only engine calls a
// unit-tagged callback may make: under the parallel dispatcher they buffer
// side effects per worker and commit them in deterministic order. Calling
// methods on the Engine itself from a unit-tagged callback is a data race.
func (e *Engine) ScheduleUnit(at Time, unit int, fn UnitFunc) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if unit < 0 {
		unit = int(serialUnit)
	}
	e.seq++
	i := e.alloc()
	s := &e.slots[i]
	s.ufn = fn
	s.at = at
	s.seq = e.seq
	s.unit = int32(unit)
	if at == e.now {
		s.state = slotNow
		e.nowQ = append(e.nowQ, i)
	} else {
		s.state = slotHeap
		e.heapPush(heapEntry{at: at, seq: e.seq, slot: i})
	}
	return Handle{slot: i + 1, gen: s.gen}
}

// After runs fn d after the current time.
func (e *Engine) After(d Time, fn func(Time)) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel marks the event named by h so it will not run. Cancelling the zero
// Handle, an already-run event, an already-cancelled event, or a stale Handle
// whose slot was recycled is a no-op (the generation check catches the last).
// When dead events pile up past half the heap, the heap is compacted in
// place, so heavy cancel/reschedule churn cannot grow it unboundedly.
func (e *Engine) Cancel(h Handle) {
	if h.slot <= 0 || int(h.slot) > len(e.slots) {
		return
	}
	i := h.slot - 1
	s := &e.slots[i]
	if s.gen != h.gen {
		return // stale handle: the slot was recycled since h was issued
	}
	switch s.state {
	case slotHeap:
		s.state = slotDead
		e.dead++
		if e.dead > len(e.heap)/2 && len(e.heap) >= minCompactLen {
			e.compact()
		}
	case slotNow:
		// Same-timestamp events drain within the current timestep; lazy
		// removal on pop is enough.
		s.state = slotDead
	case slotBatch, slotBuffered:
		// The event sits in the parallel dispatcher's current batch (or was
		// buffered by a worker this phase). Only the engine goroutine reaches
		// here — a serial barrier cancelling a later same-timestamp event —
		// and the dispatcher honors slotDead before running or committing it.
		s.state = slotDead
	}
}

// minCompactLen keeps compaction from thrashing on tiny queues.
const minCompactLen = 64

// compact removes dead events from the heap, recycles their slots, and
// restores the heap invariant. Event ordering is unaffected: live events keep
// their (at, seq) keys.
func (e *Engine) compact() {
	live := e.heap[:0]
	for _, en := range e.heap {
		if e.slots[en.slot].state == slotDead {
			e.freeSlot(en.slot)
		} else {
			live = append(live, en)
		}
	}
	e.heap = live
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
	e.dead = 0
}

// heapPush appends en and sifts it up.
func (e *Engine) heapPush(en heapEntry) {
	e.heap = append(e.heap, en)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// heapPop removes and returns the minimum entry.
func (e *Engine) heapPop() heapEntry {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

// siftDown restores the heap invariant below index i.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && entryLess(e.heap[r], e.heap[l]) {
			m = r
		}
		if !entryLess(e.heap[m], e.heap[i]) {
			return
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) + len(e.nowQ) - e.nowHead }

// Run executes events in timestamp order until the queue drains or Stop is
// called. It returns the final simulation time.
func (e *Engine) Run() Time {
	return e.dispatch(0, false)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.dispatch(deadline, true)
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// dispatch is the single event loop behind Run and RunUntil, so engine
// invariants — deterministic (at, seq) ordering, the Executed count, and the
// MaxEvents runaway guard — hold on every dispatch path. Each iteration pops
// the global minimum of the heap and the same-timestamp FIFO by (at, seq).
func (e *Engine) dispatch(deadline Time, bounded bool) Time {
	if e.par != nil {
		return e.dispatchParallel(deadline, bounded)
	}
	e.stopped = false
	for !e.stopped {
		useNow := e.nowHead < len(e.nowQ)
		if useNow && len(e.heap) > 0 {
			ns := &e.slots[e.nowQ[e.nowHead]]
			if entryLess(e.heap[0], heapEntry{at: ns.at, seq: ns.seq}) {
				useNow = false
			}
		}
		var slot int32
		var at Time
		switch {
		case useNow:
			slot = e.nowQ[e.nowHead]
			at = e.slots[slot].at
			if bounded && at > deadline {
				return e.now
			}
			if e.hook != nil && at != e.now {
				e.fireAdvance(at, e.Pending())
			}
			e.nowHead++
			if e.nowHead == len(e.nowQ) {
				e.nowQ = e.nowQ[:0]
				e.nowHead = 0
			}
		case len(e.heap) > 0:
			at = e.heap[0].at
			if bounded && at > deadline {
				return e.now
			}
			// Fire the advance hook before the pop, so the reported queue
			// depth covers the full timestamp batch — the exact point the
			// parallel dispatcher fires at (see dispatchParallel).
			if e.hook != nil && at != e.now {
				e.fireAdvance(at, e.Pending())
			}
			slot = e.heapPop().slot
		default:
			return e.now
		}
		s := &e.slots[slot]
		if s.state == slotDead {
			if !useNow {
				e.dead--
			}
			e.freeSlot(slot)
			continue
		}
		fn, ufn := s.fn, s.ufn
		if s.unit < 0 {
			e.ExecutedBarriers++
		}
		// Recycle before running: a callback that immediately reschedules (the
		// common zero-delay handoff) reuses the slot it just vacated.
		e.freeSlot(slot)
		e.now = at
		e.Executed++
		if e.MaxEvents > 0 && e.Executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		if ufn != nil {
			ufn(e.serialCtx(), at)
		} else {
			fn(at)
		}
	}
	return e.now
}

// serialCtx returns the engine's direct-mode UnitCtx, under which unit-tagged
// callbacks executing serially forward Schedule/Cancel straight to the engine.
func (e *Engine) serialCtx() *UnitCtx {
	if e.sctx == nil {
		e.sctx = &UnitCtx{e: e}
	}
	return e.sctx
}
