package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a point in simulated time.
type Event struct {
	At   Time
	Run  func()
	seq  uint64 // tie-breaker for deterministic ordering
	pos  int    // heap index
	dead bool
}

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.pos = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; all model code runs on the engine's goroutine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	dead    int // cancelled events still sitting in the queue

	// Executed counts events run since construction; useful in tests and as a
	// runaway guard.
	Executed uint64

	// MaxEvents aborts the run (with a panic) when exceeded; 0 means no limit.
	MaxEvents uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn at time at. Scheduling in the past panics: the model has a
// causality bug that must not be masked.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{At: at, Run: fn, seq: e.seq}
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel marks ev so it will not run. Cancelling an already-run (or
// already-cancelled) event is a no-op. When dead events pile up past half the
// queue, the queue is compacted in place, so heavy cancel/reschedule churn
// cannot grow it unboundedly.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.pos >= 0 { // still queued, not yet popped
		e.dead++
		if e.dead > len(e.queue)/2 && len(e.queue) >= minCompactLen {
			e.compact()
		}
	}
}

// minCompactLen keeps compaction from thrashing on tiny queues.
const minCompactLen = 64

// compact removes dead events from the queue and restores the heap
// invariant. Event ordering is unaffected: live events keep their (At, seq)
// keys.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if !ev.dead {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	for i, ev := range e.queue {
		ev.pos = i
	}
	heap.Init(&e.queue)
	e.dead = 0
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Run executes events in timestamp order until the queue drains or Stop is
// called. It returns the final simulation time.
func (e *Engine) Run() Time {
	return e.dispatch(0, false)
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.dispatch(deadline, true)
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// dispatch is the single event loop behind Run and RunUntil, so engine
// invariants — deterministic (At, seq) ordering, the Executed count, and the
// MaxEvents runaway guard — hold on every dispatch path.
func (e *Engine) dispatch(deadline Time, bounded bool) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if bounded && e.queue[0].At > deadline {
			break
		}
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			e.dead--
			continue
		}
		e.now = ev.At
		e.Executed++
		if e.MaxEvents > 0 && e.Executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		ev.Run()
	}
	return e.now
}
