package sim

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64
// seeding a xorshift128+ core). The simulator avoids math/rand so that seeds
// reproduce across Go releases.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent stream; useful to give each simulated core its
// own generator without cross-coupling.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
