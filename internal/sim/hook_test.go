package sim

import (
	"runtime"
	"testing"
)

// recordingHook captures every OnAdvance call.
type recordingHook struct {
	advances []advanceSample
}

type advanceSample struct {
	prev, now Time
	pending   int
	executed  uint64
}

func (h *recordingHook) OnAdvance(prev, now Time, pending int, executed uint64) {
	h.advances = append(h.advances, advanceSample{prev, now, pending, executed})
}

// The hook must fire exactly once per distinct timestamp, before anything at
// that timestamp is dequeued, so the reported queue depth covers the full
// same-timestamp batch.
func TestHookFiresOncePerTimestamp(t *testing.T) {
	e := NewEngine()
	h := &recordingHook{}
	e.SetHook(h)

	// Three events at t=10 (one scheduling a same-timestamp follow-up during
	// dispatch), one at t=20.
	e.Schedule(10, func(at Time) { e.Schedule(at, func(Time) {}) })
	e.Schedule(10, func(Time) {})
	e.Schedule(10, func(Time) {})
	e.Schedule(20, func(Time) {})
	e.Run()

	want := []advanceSample{
		{prev: 0, now: 10, pending: 4, executed: 0},
		{prev: 10, now: 20, pending: 1, executed: 4},
	}
	if len(h.advances) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %+v", len(h.advances), len(want), h.advances)
	}
	for i, g := range h.advances {
		if g != want[i] {
			t.Errorf("advance %d: got %+v, want %+v", i, g, want[i])
		}
	}
}

// hookWorkload schedules a cross-unit event mesh with same-timestamp batches,
// rescheduling chains, and a follow-up discovered mid-batch.
func hookWorkload(e *Engine) {
	const units = 4
	for u := 0; u < units; u++ {
		u := u
		var chain UnitFunc
		rounds := 50
		chain = func(ctx *UnitCtx, at Time) {
			if rounds--; rounds > 0 {
				ctx.Schedule(at+Time(1+u%3), u, chain)
			}
		}
		e.ScheduleUnit(1, u, chain)
	}
	e.Schedule(25, func(at Time) {
		e.Schedule(at, func(Time) {}) // same-timestamp follow-up
		e.Schedule(at+7, func(Time) {})
	})
}

// The hook observes the identical advance sequence — timestamps, queue
// depths, executed counts — under the serial and parallel dispatchers. This
// is the determinism foundation of the tracing layer's engine records.
func TestHookSerialParallelEquality(t *testing.T) {
	run := func(par int) []advanceSample {
		e := NewEngine()
		if par > 0 {
			e.SetParallelism(par)
		}
		h := &recordingHook{}
		e.SetHook(h)
		hookWorkload(e)
		e.Run()
		return h.advances
	}
	serial := run(0)
	parallel := run(4)
	if len(serial) == 0 {
		t.Fatal("serial run fired no advances")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial fired %d advances, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("advance %d: serial %+v, parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// With no hook attached (the tracing layer's nil-tracer default), steady-state
// dispatch must stay allocation-free: the disabled path is one nil check in
// the dispatch loop. This pins the tracing layer's zero-overhead contract at
// the engine level; CI runs it alongside the trace-determinism job.
func TestEngineSteadyStateAllocFreeTracerNil(t *testing.T) {
	e := NewEngine()
	const rounds = 5000
	left := 0
	var chain func(Time)
	chain = func(at Time) {
		if left--; left > 0 {
			e.Schedule(at+1, chain)
		}
	}
	run := func(n int) {
		left = n
		e.Schedule(e.Now()+1, chain)
		e.Run()
	}

	run(64) // warm up the slot arena and heap

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run(rounds)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	// Zero allocations expected; a tiny budget absorbs runtime noise
	// (finalizers, background sweeps) without letting a real per-event
	// allocation through (rounds events would dwarf it).
	const budget = 10
	if allocs > budget {
		t.Errorf("tracer-nil steady state: %d allocs over %d events (%.4f/event), want 0 (budget %d total)",
			allocs, rounds, float64(allocs)/float64(rounds), budget)
	}
}
