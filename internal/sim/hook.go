package sim

// Hook observes the engine's dispatch loop at timestamp granularity. It is
// the engine-level attachment point of the tracing layer (internal/trace):
// nil by default, and every call site is branch-guarded so the disabled path
// adds one predictable nil check per event and no allocations
// (TestEngineSteadyStateAllocFreeTracerNil pins this).
//
// OnAdvance fires at most once per distinct timestamp, from the engine
// goroutine, at the moment the dispatcher selects the first event of a new
// timestamp — before anything at that timestamp is dequeued or executed.
// Both dispatchers fire it at the same logical point with the same
// arguments, so hook output is byte-identical at any parallelism setting:
//
//   - prev is the clock before the advance (the previous timestamp, or the
//     time the last Run returned at);
//   - now is the timestamp about to be dispatched;
//   - pending is the queue depth at the firing point: every scheduled event,
//     including the entire now batch and lazily-removed cancelled events;
//   - executed is Engine.Executed at the firing point (events completed
//     strictly before now), letting adapters compute per-interval dispatch
//     rates by differencing.
//
// Implementations must not call back into the engine.
type Hook interface {
	OnAdvance(prev, now Time, pending int, executed uint64)
}

// SetHook installs h as the engine's dispatch observer; nil (the default)
// removes it and restores the zero-overhead path. Must not be called while
// Run is executing events.
func (e *Engine) SetHook(h Hook) { e.hook = h }

// fireAdvance runs the hook for a selected next-event timestamp `at`,
// suppressing duplicate fires for one timestamp (cancelled events at the head
// of a timestamp are popped without advancing the clock, so the dispatch
// loops re-select `at` more than once). Callers guarantee h != nil and
// at != e.now; pending is Engine.Pending() measured before anything at `at`
// was dequeued.
func (e *Engine) fireAdvance(at Time, pending int) {
	if at == e.hookedAt {
		return
	}
	e.hookedAt = at
	e.hook.OnAdvance(e.now, at, pending, e.Executed)
}
