package sim

import "testing"

// TestGaugeNonAdvancingTime checks that re-setting a gauge at the same
// timestamp replaces the value without accumulating any weighted span: the
// time-weighted mean must only see the value that was actually held.
func TestGaugeNonAdvancingTime(t *testing.T) {
	var g Gauge
	g.Set(0, 10)
	g.Set(0, 50) // same instant: replaces, holds no time
	g.Set(10, 0) // value 50 held for 10
	if m := g.Mean(); m != 50 {
		t.Fatalf("mean = %f, want 50 (the value actually held)", m)
	}
	if g.Max() != 50 {
		t.Fatalf("max = %f, want 50", g.Max())
	}
}

// TestGaugeMeanBeforeAnySpan checks Mean before any time has elapsed: it
// must report the current value, not divide by zero.
func TestGaugeMeanBeforeAnySpan(t *testing.T) {
	var g Gauge
	if m := g.Mean(); m != 0 {
		t.Fatalf("zero-value gauge mean = %f, want 0", m)
	}
	g.Set(0, 7)
	if m := g.Mean(); m != 7 {
		t.Fatalf("mean before any span = %f, want the current value 7", m)
	}
	if g.Value() != 7 {
		t.Fatalf("value = %f, want 7", g.Value())
	}
}

// TestGaugeAddAccumulates checks Add is Set relative to the current value.
func TestGaugeAddAccumulates(t *testing.T) {
	var g Gauge
	g.Add(0, 3)
	g.Add(10, 2) // value 3 held for 10
	g.Add(20, -5)
	// mean = (3*10 + 5*10) / 20 = 4
	if m := g.Mean(); m != 4 {
		t.Fatalf("mean = %f, want 4", m)
	}
	if g.Value() != 0 {
		t.Fatalf("value = %f, want 0", g.Value())
	}
}

// TestHistogramEmpty checks every summary accessor of an empty histogram
// returns 0 instead of dividing by zero or indexing an empty sample set.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("count = %d", h.Count())
	}
	for name, got := range map[string]float64{
		"mean": h.Mean(), "min": h.Min(), "max": h.Max(), "stddev": h.StdDev(),
		"q0": h.Quantile(0), "q50": h.Quantile(0.5), "q100": h.Quantile(1),
	} {
		if got != 0 {
			t.Errorf("empty histogram %s = %f, want 0", name, got)
		}
	}
}

// TestHistogramQuantiles checks nearest-rank quantiles, out-of-range q
// clamping, and correctness after interleaved Observe calls.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := 100; v >= 1; v-- { // descending insertion exercises the sort
		h.Observe(float64(v))
	}
	cases := map[float64]float64{-1: 1, 0: 1, 0.01: 1, 0.5: 50, 0.99: 99, 1: 100, 2: 100}
	for q, want := range cases {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %f, want %f", q, got, want)
		}
	}
	h.Observe(1000) // after a quantile call: must re-sort lazily
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) after late Observe = %f, want 1000", got)
	}
	if h.Count() != 101 {
		t.Errorf("count = %d, want 101", h.Count())
	}
}

// TestHistogramSingleSample checks the degenerate one-sample summaries.
func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(-3)
	if h.Min() != -3 || h.Max() != -3 || h.Mean() != -3 || h.StdDev() != 0 {
		t.Fatalf("single-sample stats wrong: min=%f max=%f mean=%f sd=%f",
			h.Min(), h.Max(), h.Mean(), h.StdDev())
	}
	if h.Quantile(0.5) != -3 {
		t.Fatalf("median = %f, want -3", h.Quantile(0.5))
	}
}
