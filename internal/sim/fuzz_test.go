package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"syncron/internal/sim"
	"syncron/internal/sim/simtest"
)

// fuzzUnit is the per-unit state of the fuzz interpreter. Every field is
// touched only by events tagged with this unit (same unit -> same worker
// under parallel dispatch), so the program is race-free by the engine's
// partitioning contract.
type fuzzUnit struct {
	id      int
	stream  []byte // this unit's private slice of the fuzz input
	pos     int
	ran     uint64 // per-unit execution counter, folded into the log
	log     strings.Builder
	handles []fuzzHandle
}

type fuzzHandle struct {
	h    sim.Handle
	at   sim.Time
	unit int
}

// runFuzzProgram interprets data as a deterministic schedule/cancel program:
// byte 0 picks the unit count, the rest is split round-robin into private
// per-unit instruction streams. Each unit runs a chain of events, one
// instruction per event — scheduling same-unit leaves (future and
// zero-delay), cross-unit leaves, committed serial barriers, and cancels of
// previously recorded handles (restricted to same-unit targets or
// strictly-future cross-unit targets, the combinations the parallel engine
// defines). It returns a fingerprint of every observable — per-unit
// execution logs, the barrier log, the end time — plus the executed-event
// count. rec, when non-nil, additionally records global execution order for
// simtest.CheckOrder; pass it only for serial runs (ids are assigned through
// shared state).
func runFuzzProgram(data []byte, parallelism int, rec *simtest.Recorder) (string, uint64) {
	e := sim.NewEngine()
	e.SetParallelism(parallelism)
	e.MaxEvents = 1 << 20 // diagnose a runaway interpreter instead of hanging
	nUnits := 1 + int(data[0])%6
	units := make([]*fuzzUnit, nUnits)
	for i := range units {
		units[i] = &fuzzUnit{id: i}
	}
	for i, b := range data[1:] {
		u := units[i%nUnits]
		u.stream = append(u.stream, b)
	}

	var serialLog strings.Builder
	var schedID uint64
	// nextSched assigns schedule-order ids for the CheckOrder pass. Worker
	// goroutines must not share a counter, so parallel runs (rec == nil)
	// skip the assignment entirely.
	nextSched := func() uint64 {
		if rec == nil {
			return 0
		}
		schedID++
		return schedID
	}
	observe := func(u *fuzzUnit, at sim.Time, id uint64) {
		u.ran++
		fmt.Fprintf(&u.log, "%d@%d ", u.ran, int64(at))
		if rec != nil {
			rec.Observe(at, id)
		}
	}
	leaf := func(u *fuzzUnit) sim.UnitFunc {
		id := nextSched()
		return func(_ *sim.UnitCtx, at sim.Time) { observe(u, at, id) }
	}
	var step func(u *fuzzUnit) sim.UnitFunc
	step = func(u *fuzzUnit) sim.UnitFunc {
		id := nextSched()
		return func(ctx *sim.UnitCtx, at sim.Time) {
			observe(u, at, id)
			if u.pos >= len(u.stream) {
				return // stream dry: this unit's chain ends
			}
			c := u.stream[u.pos]
			u.pos++
			arg := int(c >> 3)
			switch c % 8 {
			case 0, 1: // same-unit future leaf
				d := sim.Time(1 + arg%5)
				h := ctx.Schedule(at+d, u.id, leaf(u))
				u.handles = append(u.handles, fuzzHandle{h, at + d, u.id})
			case 2: // same-unit zero-delay leaf (same batch, later segment)
				h := ctx.Schedule(at, u.id, leaf(u))
				u.handles = append(u.handles, fuzzHandle{h, at, u.id})
			case 3: // cross-unit leaf, delay 0..3
				v := units[(u.id+1+arg)%nUnits]
				d := sim.Time(arg % 4)
				h := ctx.Schedule(at+d, v.id, leaf(v))
				u.handles = append(u.handles, fuzzHandle{h, at + d, v.id})
			case 4: // committed serial barrier
				ctx.Schedule(at+sim.Time(1+arg%3), -1, func(_ *sim.UnitCtx, bat sim.Time) {
					fmt.Fprintf(&serialLog, "b@%d ", int64(bat))
				})
			case 5: // cancel the oldest handle that is safe to cancel
				for k, hh := range u.handles {
					if hh.unit == u.id || hh.at > at {
						ctx.Cancel(hh.h)
						u.handles = append(u.handles[:k], u.handles[k+1:]...)
						break
					}
				}
			case 6: // schedule-then-cancel, resolved worker-locally
				h := ctx.Schedule(at+1, u.id, leaf(u))
				ctx.Cancel(h)
			default: // 7: nop
			}
			ctx.Schedule(at+1, u.id, step(u))
		}
	}

	for i, u := range units {
		e.ScheduleUnit(sim.Time(1+i), u.id, step(u))
	}
	end := e.Run()

	var fp strings.Builder
	for _, u := range units {
		fmt.Fprintf(&fp, "[u%d %s] ", u.id, u.log.String())
	}
	fmt.Fprintf(&fp, "| %s | end=%d", serialLog.String(), int64(end))
	return fp.String(), e.Executed
}

// FuzzEngineScheduleCancel feeds random schedule/cancel programs through the
// serial and parallel dispatchers and requires identical fingerprints and
// executed-event counts, plus global (at, seq) execution order in serial
// mode. It is the fuzz-shaped version of TestParallelScriptEquivalence:
// instead of an RNG script, the adversary is the fuzzer.
func FuzzEngineScheduleCancel(f *testing.F) {
	f.Add([]byte{3, 0, 8, 16, 24, 32, 40, 48, 5, 13, 21, 29, 37, 45, 53, 61})
	f.Add([]byte{1, 2, 2, 2, 5, 5, 6, 4})
	f.Add([]byte{5, 3, 11, 19, 27, 35, 43, 51, 59, 4, 12, 20, 5, 5, 5})
	f.Add([]byte{0})
	f.Add([]byte{2, 6, 6, 6, 2, 2, 5, 5, 4, 4, 3, 3, 3, 7, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 2048 {
			t.Skip()
		}
		rec := &simtest.Recorder{}
		serialFP, serialExec := runFuzzProgram(data, 0, rec)
		rec.Check(t)
		for _, w := range []int{1, 2, 4} {
			fp, exec := runFuzzProgram(data, w, nil)
			if fp != serialFP {
				t.Fatalf("workers=%d fingerprint diverges from serial\nserial:   %s\nparallel: %s",
					w, serialFP, fp)
			}
			if exec != serialExec {
				t.Fatalf("workers=%d executed %d events, serial executed %d", w, exec, serialExec)
			}
		}
	})
}
