// Package paralleltest is the serial-vs-parallel equivalence harness for the
// event engine's parallel dispatcher (sim.Engine.SetParallelism).
//
// The synthetic protocol tests in package sim prove the dispatcher correct on
// adversarial schedule/cancel scripts; this package proves it equivalent on
// the real model. FiguresQuick replays the full `figures --quick` grid — the
// exact specs `syncron-sim sweep -grid figures-quick` runs — under one engine
// configuration and snapshots every observable output: the canonical sweep
// JSON (seed-resolved, SpecKey-stamped, byte-identical to the CLI's), the
// rendered figure Markdown, and the per-run engine event counts. The test in
// this package is metamorphic: the engine parallelism knob is the varied
// input, and byte-identical snapshots across serial and workers {1,2,4,8}
// are the invariant.
package paralleltest

import (
	"bytes"
	"fmt"
	"sync"

	"syncron"
)

// WorkerCounts are the parallel worker counts every equivalence check runs,
// each compared against serial execution (ParallelismSerial). 1 exercises the
// full partition/commit protocol without concurrency; 8 oversubscribes any
// CI host so worker scheduling order is maximally perturbed.
var WorkerCounts = []int{1, 2, 4, 8}

// Snapshot captures everything the figures-quick pipeline produces under one
// engine configuration.
type Snapshot struct {
	Parallelism int
	// SweepJSON is the grid's result serialization — what
	// `sweep -grid figures-quick -parallel N -json -` emits.
	SweepJSON string
	// Markdown is the rendered figure set — what `figures --quick` emits
	// (minus the CLI's header line, which carries no run data).
	Markdown string
	// Events is the engine event count of each grid run, in grid order. It
	// is also embedded in SweepJSON; kept separate for a crisper failure
	// message when only event counts diverge.
	Events []uint64
}

// memCache is an in-memory ResultCache: it lets FiguresQuick simulate each
// grid spec exactly once (via SpecRunner) and then render the figures from
// the same results with zero extra simulation, the way `figures -from DIR`
// renders from merged shard caches.
type memCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (c *memCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	return p, ok
}

func (c *memCache) Put(key string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = payload
	return nil
}

// FiguresQuick runs the full figures-quick grid with the given engine
// parallelism (Config.Parallelism semantics: syncron.ParallelismSerial
// forces serial) and returns the snapshot of its outputs. Any failed run is
// an error.
func FiguresQuick(parallelism int) (*Snapshot, error) {
	opt := syncron.FigureOptions{Quick: true, Parallelism: parallelism}
	var specs []syncron.RunSpec
	for _, sw := range syncron.FigureSweeps(opt) {
		specs = append(specs, syncron.ResolveSeeds(sw.Expand(), sw.BaseSeed)...)
	}
	cache := &memCache{m: make(map[string][]byte)}
	results := syncron.SpecRunner{Cache: cache}.Run(specs)

	events := make([]uint64, len(results))
	for i, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("%s under %s (parallelism %d): %s",
				r.Spec.Workload, r.Spec.Config.Scheme, parallelism, r.Err)
		}
		events[i] = r.Events
	}
	var js bytes.Buffer
	if err := syncron.WriteJSON(&js, results); err != nil {
		return nil, err
	}

	opt.Cache = cache
	opt.CacheOnly = true // every figure run must come from the sweep above
	figs, err := syncron.Figures(opt)
	if err != nil {
		return nil, fmt.Errorf("rendering figures from grid cache (parallelism %d): %w",
			parallelism, err)
	}
	var md bytes.Buffer
	for _, f := range figs {
		if err := f.WriteMarkdown(&md); err != nil {
			return nil, err
		}
	}
	return &Snapshot{
		Parallelism: parallelism,
		SweepJSON:   js.String(),
		Markdown:    md.String(),
		Events:      events,
	}, nil
}

// FirstDiff locates the first differing byte between two strings and returns
// a short context window around it, for failure messages that point at the
// divergence instead of dumping megabytes of JSON.
func FirstDiff(a, b string) (offset int, context string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i == n && len(a) == len(b) {
		return -1, ""
	}
	window := func(s string) string {
		lo, hi := i-30, i+30
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return s[lo:hi]
	}
	return i, fmt.Sprintf("a: %q\nb: %q", window(a), window(b))
}
