package paralleltest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"syncron"
)

// TestFiguresQuickSerialVsParallel is the headline equivalence proof: the
// full figures-quick grid — every workload family, every scheme, the
// scalability and ST-ablation axes — must produce byte-identical sweep JSON,
// byte-identical figure Markdown, and identical per-run engine event counts
// whether the engine dispatches serially or with any parallel worker count.
func TestFiguresQuickSerialVsParallel(t *testing.T) {
	serial, err := FiguresQuick(syncron.ParallelismSerial)
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	// Guard against a vacuous pass: the grid must have actually simulated.
	if len(serial.Events) == 0 {
		t.Fatal("serial baseline produced no runs")
	}
	for i, ev := range serial.Events {
		if ev == 0 {
			t.Fatalf("serial run %d executed zero engine events", i)
		}
	}
	if !strings.Contains(serial.Markdown, "## speedup") {
		t.Fatalf("serial Markdown is missing the speedup figure:\n%.400s", serial.Markdown)
	}

	counts := WorkerCounts
	if testing.Short() {
		counts = []int{2}
	}
	for _, w := range counts {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			par, err := FiguresQuick(w)
			if err != nil {
				t.Fatal(err)
			}
			if off, ctx := FirstDiff(serial.SweepJSON, par.SweepJSON); off >= 0 {
				t.Errorf("sweep JSON diverges from serial at byte %d:\n%s", off, ctx)
			}
			if off, ctx := FirstDiff(serial.Markdown, par.Markdown); off >= 0 {
				t.Errorf("figure Markdown diverges from serial at byte %d:\n%s", off, ctx)
			}
			if !reflect.DeepEqual(serial.Events, par.Events) {
				for i := range serial.Events {
					if i < len(par.Events) && serial.Events[i] != par.Events[i] {
						t.Errorf("run %d executed %d events under workers=%d, want %d (serial)",
							i, par.Events[i], w, serial.Events[i])
						break
					}
				}
				if len(serial.Events) != len(par.Events) {
					t.Errorf("run count %d under workers=%d, want %d", len(par.Events), w, len(serial.Events))
				}
			}
		})
	}
}

// TestFirstDiff pins the failure-reporting helper itself.
func TestFirstDiff(t *testing.T) {
	if off, _ := FirstDiff("same", "same"); off != -1 {
		t.Fatalf("equal strings reported diff at %d", off)
	}
	if off, _ := FirstDiff("abcd", "abXd"); off != 2 {
		t.Fatalf("diff offset = %d, want 2", off)
	}
	if off, _ := FirstDiff("abc", "abcd"); off != 3 {
		t.Fatalf("prefix diff offset = %d, want 3", off)
	}
}
