package sim

import (
	"fmt"
	"sync"
)

// Parallel dispatch.
//
// The parallel dispatcher executes one simulated timestamp per round: it
// drains every event sharing the next timestamp into a batch (in global
// (at, seq) order), splits the batch into serial barriers (unit < 0 — every
// event produced by plain Schedule) and runs of unit-tagged events, and
// executes each unit-tagged run on a pool of worker goroutines, partitioned
// by unit. Determinism is preserved by construction:
//
//   - Events of one unit always land on the same worker (unit % workers) and
//     appear in its task slice in seq order, so per-unit execution order is
//     the serial order.
//   - Workers never touch engine state directly. A worker-side UnitCtx
//     buffers Schedule/Cancel calls, tagging each with (parentSeq, opIdx) —
//     the seq of the event that made the call and the call's position within
//     that event. After the phase, the engine commits all buffered ops sorted
//     by that key, which is exactly the order the serial dispatcher would
//     have observed the calls in, so every new event receives the same seq
//     number it would have received serially.
//   - Serial barriers run alone on the engine goroutine between phases, with
//     full access to the engine, in seq order relative to both neighbors.
//
// The one serial behavior that cannot be reproduced is an event cancelling a
// same-timestamp event of a *different* unit: serially the target (larger
// seq) would never run, in parallel it may already have run on another
// worker. The commit path detects exactly this case — a committed Cancel
// whose target is still in the current batch with a seq greater than the
// cancelling event's — and panics, so the contract violation can never
// silently diverge. Same-unit same-timestamp cancels are legal and resolved
// worker-locally.

// UnitFunc is the callback type of unit-tagged events (ScheduleUnit). It
// receives the context through which it must make all engine calls, and its
// own timestamp.
type UnitFunc func(ctx *UnitCtx, at Time)

// UnitCtx is a unit-tagged callback's window onto the engine. In direct mode
// (serial dispatcher, or a serial barrier under the parallel dispatcher) the
// calls forward to the engine immediately; on a worker they are buffered and
// committed in deterministic (parentSeq, opIdx) order after the phase.
type UnitCtx struct {
	e *Engine
	w *parWorker // nil in direct mode

	// inline marks the direct-mode context used by runPhaseInline: Schedules
	// forward to the engine immediately, but Cancels go through the committed
	// cancel path so the cross-unit same-timestamp contract is enforced
	// identically whether a segment ran inline or on workers.
	inline     bool
	parentUnit int32 // inline mode: unit of the currently running event

	parentSeq uint64 // seq of the currently running event
	opIdx     int32  // calls made so far by the currently running event
	task      []batchEntry
	taskPos   int
}

// Now returns the current simulation time (the running event's timestamp
// batch). Safe on workers: the engine goroutine does not advance the clock
// during a phase.
func (c *UnitCtx) Now() Time { return c.e.now }

// Schedule queues fn at time at on behalf of unit (negative unit = serial
// barrier), exactly like Engine.ScheduleUnit. On a worker the event is
// buffered and becomes visible (and its seq assigned) at commit; the returned
// Handle is valid immediately.
func (c *UnitCtx) Schedule(at Time, unit int, fn UnitFunc) Handle {
	if c.w == nil {
		return c.e.ScheduleUnit(at, unit, fn)
	}
	e := c.e
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if unit < 0 {
		unit = int(serialUnit)
	}
	p := e.par
	p.mu.Lock()
	i := e.alloc()
	s := &e.slots[i]
	s.ufn = fn
	s.at = at
	s.unit = int32(unit)
	s.state = slotBuffered
	h := Handle{slot: i + 1, gen: s.gen}
	p.mu.Unlock()
	c.w.ops = append(c.w.ops, bufOp{parentSeq: c.parentSeq, opIdx: c.opIdx, slot: i, gen: h.gen})
	c.opIdx++
	return h
}

// After queues fn d after the current time; see Schedule.
func (c *UnitCtx) After(d Time, unit int, fn UnitFunc) Handle {
	if d < 0 {
		d = 0
	}
	return c.Schedule(c.e.now+d, unit, fn)
}

// Cancel marks the event named by h so it will not run. All of Engine.Cancel's
// no-op guarantees hold. A same-unit target in the current batch is skipped
// immediately (it runs on this worker, later in this task); any other target
// is buffered and resolved at commit — where cancelling a same-timestamp
// event of a different unit is rejected, see the package comment above.
func (c *UnitCtx) Cancel(h Handle) {
	if c.w == nil {
		if c.inline {
			c.e.cancelCommitted(h, c.parentSeq, c.parentUnit)
		} else {
			c.e.Cancel(h)
		}
		return
	}
	if h.slot == 0 {
		return
	}
	cur := &c.task[c.taskPos]
	for k := range c.task {
		en := &c.task[k]
		if en.slot != h.slot-1 || en.gen != h.gen {
			continue
		}
		if en.unit != cur.unit {
			break // cross-unit same-batch target: defer to commit, which rejects true divergence
		}
		if k > c.taskPos {
			en.skip = true
		}
		return // earlier same-unit target already ran — serially it would have too
	}
	c.w.ops = append(c.w.ops, bufOp{
		parentSeq: c.parentSeq, opIdx: c.opIdx, cancel: true, h: h, parentUnit: cur.unit,
	})
	c.opIdx++
}

// batchEntry is one drained event of the current timestamp. It copies
// everything a worker needs, so workers never read the slot arena.
type batchEntry struct {
	fn   func(Time)
	ufn  UnitFunc
	at   Time
	seq  uint64
	unit int32
	slot int32
	gen  uint32
	skip bool // cancelled; do not run
}

// bufOp is one buffered worker-side Schedule or Cancel, keyed for the
// deterministic commit order.
type bufOp struct {
	parentSeq  uint64
	opIdx      int32
	cancel     bool
	slot       int32  // Schedule: the pre-allocated slot to enqueue
	gen        uint32 // Schedule: its generation at buffering time
	h          Handle // Cancel: the target
	parentUnit int32  // Cancel: unit of the cancelling event
}

// bufOpLess orders buffered ops by (parentSeq, opIdx) — serial call order.
func bufOpLess(a, b *bufOp) bool {
	if a.parentSeq != b.parentSeq {
		return a.parentSeq < b.parentSeq
	}
	return a.opIdx < b.opIdx
}

// parRuntime is the engine's parallel-mode state. Workers are started on
// entry to a Run/RunUntil and stopped when it returns, persisting across all
// rounds of the run.
type parRuntime struct {
	workers int
	ws      []*parWorker
	wg      sync.WaitGroup
	mu      sync.Mutex // guards the slot arena while workers buffer Schedules

	batch  []batchEntry // reused round-to-round
	commit []bufOp      // reused merge buffer for ordered commits
	heads  []int        // reused per-worker merge cursors (commitOps)

	pmu      sync.Mutex
	panicVal any // first worker panic, re-raised on the engine goroutine
}

type parWorker struct {
	e    *Engine
	in   chan []batchEntry
	task []batchEntry // partition buffer, reused
	ops  []bufOp      // buffered side effects of the current phase
	ran  uint64       // events executed (not skipped) this phase
	ctx  UnitCtx
}

// SetParallelism selects the dispatcher: n >= 1 executes unit-tagged
// same-timestamp events on n worker goroutines (n == 1 still exercises the
// full batch/commit protocol on one worker); n <= 0 restores the serial
// dispatcher, today's exact behavior. For any n, the executed event stream is
// byte-identical to serial execution. Must not be called while Run or
// RunUntil is executing.
func (e *Engine) SetParallelism(n int) {
	if n <= 0 {
		e.par = nil
		return
	}
	e.par = &parRuntime{workers: n}
}

// Parallelism returns the worker count set by SetParallelism, or 0 when the
// serial dispatcher is active.
func (e *Engine) Parallelism() int {
	if e.par == nil {
		return 0
	}
	return e.par.workers
}

// dispatchParallel is the round-based event loop: one timestamp per
// iteration, batched, split into serial barriers and worker phases.
func (e *Engine) dispatchParallel(deadline Time, bounded bool) Time {
	e.stopped = false
	p := e.par
	p.startWorkers(e)
	defer p.stopWorkers()
	for !e.stopped {
		// Fast path: when the global-minimum event is a serial barrier (or a
		// cancelled slot), run it exactly like the serial dispatcher — no batch
		// collection, no worker round-trip. Barrier-heavy streams (the
		// protocol layers) thus execute at serial cost; only a unit-tagged
		// minimum pays for a parallel round.
		useNow := e.nowHead < len(e.nowQ)
		if useNow && len(e.heap) > 0 {
			ns := &e.slots[e.nowQ[e.nowHead]]
			if entryLess(e.heap[0], heapEntry{at: ns.at, seq: ns.seq}) {
				useNow = false
			}
		}
		var slot int32
		var at Time
		switch {
		case useNow:
			slot = e.nowQ[e.nowHead]
			at = e.slots[slot].at
		case len(e.heap) > 0:
			slot = e.heap[0].slot
			at = e.heap[0].at
		default:
			return e.now
		}
		if bounded && at > deadline {
			return e.now
		}
		// Fire the advance hook before the barrier fast path pops or
		// collectBatch drains: nothing at `at` has been dequeued yet, so the
		// reported queue depth matches the serial dispatcher's byte for byte.
		if e.hook != nil && at != e.now {
			e.fireAdvance(at, e.Pending())
		}
		if s := &e.slots[slot]; s.state == slotDead || s.unit < 0 {
			if useNow {
				e.nowHead++
				if e.nowHead == len(e.nowQ) {
					e.nowQ = e.nowQ[:0]
					e.nowHead = 0
				}
			} else {
				e.heapPop()
			}
			if s.state == slotDead {
				if !useNow {
					e.dead--
				}
				e.freeSlot(slot)
				continue
			}
			fn, ufn := s.fn, s.ufn
			e.ExecutedBarriers++
			e.freeSlot(slot)
			e.now = at
			e.Executed++
			if e.MaxEvents > 0 && e.Executed > e.MaxEvents {
				panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
			}
			if ufn != nil {
				ufn(e.serialCtx(), at)
			} else {
				fn(at)
			}
			continue
		}
		batch := e.collectBatch(at)
		if len(batch) == 0 {
			continue // every event at tNext was cancelled
		}
		e.now = at
		if !e.runBatch(batch) {
			return e.now // Stop() during the batch; remainder re-queued
		}
	}
	return e.now
}

// collectBatch drains every live event with timestamp t from the FIFO and the
// heap, in global (at, seq) order, marking their slots slotBatch.
func (e *Engine) collectBatch(t Time) []batchEntry {
	batch := e.par.batch[:0]
	for {
		useNow := e.nowHead < len(e.nowQ)
		heapOK := len(e.heap) > 0 && e.heap[0].at == t
		if useNow && heapOK {
			ns := &e.slots[e.nowQ[e.nowHead]]
			if entryLess(e.heap[0], heapEntry{at: ns.at, seq: ns.seq}) {
				useNow = false
			}
		}
		var slot int32
		switch {
		case useNow:
			slot = e.nowQ[e.nowHead]
			e.nowHead++
			if e.nowHead == len(e.nowQ) {
				e.nowQ = e.nowQ[:0]
				e.nowHead = 0
			}
		case heapOK:
			slot = e.heapPop().slot
			if e.slots[slot].state == slotDead {
				e.dead--
				e.freeSlot(slot)
				continue
			}
		default:
			e.par.batch = batch
			return batch
		}
		s := &e.slots[slot]
		if s.state == slotDead {
			e.freeSlot(slot)
			continue
		}
		s.state = slotBatch
		batch = append(batch, batchEntry{
			fn: s.fn, ufn: s.ufn, at: s.at, seq: s.seq,
			unit: s.unit, slot: slot, gen: s.gen,
		})
	}
}

// runBatch executes one timestamp's batch: serial barriers alone on this
// goroutine, maximal runs of unit-tagged events as worker phases. Returns
// false if a barrier called Stop (the unexecuted remainder is re-queued).
func (e *Engine) runBatch(batch []batchEntry) bool {
	i := 0
	for i < len(batch) {
		if batch[i].unit < 0 {
			e.runBarrier(&batch[i])
			i++
			if e.stopped {
				e.requeueBatch(batch[i:])
				return false
			}
			continue
		}
		j := i + 1
		for j < len(batch) && batch[j].unit >= 0 {
			j++
		}
		e.runPhase(batch[i:j])
		i = j
	}
	return true
}

// runBarrier executes one serial batch entry with full engine access,
// mirroring the serial dispatcher's free-then-run recycling.
func (e *Engine) runBarrier(en *batchEntry) {
	if e.slots[en.slot].state == slotDead {
		e.freeSlot(en.slot)
		return
	}
	e.freeSlot(en.slot)
	e.Executed++
	e.ExecutedBarriers++
	if e.MaxEvents > 0 && e.Executed > e.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
	}
	if en.ufn != nil {
		en.ufn(e.serialCtx(), en.at)
	} else {
		en.fn(en.at)
	}
}

// inlinePhaseMax is the segment size below which a worker round-trip (channel
// send + WaitGroup wake per worker) costs more than just running the events;
// such segments execute inline on the engine goroutine instead.
const inlinePhaseMax = 3

// phaseInlinable reports whether seg would gain nothing from the worker pool:
// it is tiny, or every entry maps to the same worker anyway (at most one
// worker would run, serially, with buffering overhead on top).
func (e *Engine) phaseInlinable(seg []batchEntry) bool {
	if len(seg) < inlinePhaseMax {
		return true
	}
	w0 := int(seg[0].unit) % e.par.workers
	for k := 1; k < len(seg); k++ {
		if int(seg[k].unit)%e.par.workers != w0 {
			return false
		}
	}
	return true
}

// runPhaseInline executes a segment of unit-tagged entries directly on the
// engine goroutine, in seq order with immediate (direct-mode) Schedule/Cancel
// — exactly the serial dispatcher's semantics, which the worker protocol
// reproduces anyway, minus the cross-goroutine round-trip.
func (e *Engine) runPhaseInline(seg []batchEntry) {
	ctx := e.inlineCtx()
	for k := range seg {
		en := &seg[k]
		if en.skip || e.slots[en.slot].state == slotDead {
			e.freeSlot(en.slot)
			continue
		}
		e.freeSlot(en.slot)
		e.Executed++
		if e.MaxEvents > 0 && e.Executed > e.MaxEvents {
			panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
		}
		ctx.parentSeq = en.seq
		ctx.parentUnit = en.unit
		en.ufn(ctx, en.at)
	}
}

// inlineCtx returns the engine's persistent inline-mode UnitCtx (see
// UnitCtx.inline); like serialCtx it is lazily built once so inline phases
// allocate nothing.
func (e *Engine) inlineCtx() *UnitCtx {
	if e.ictx == nil {
		e.ictx = &UnitCtx{e: e, inline: true}
	}
	return e.ictx
}

// runPhase executes one maximal run of unit-tagged entries on the worker
// pool, then commits their buffered side effects in deterministic order.
func (e *Engine) runPhase(seg []batchEntry) {
	p := e.par
	if e.phaseInlinable(seg) {
		e.runPhaseInline(seg)
		return
	}
	// Honor cancellations made by earlier barriers in this batch.
	for k := range seg {
		if e.slots[seg[k].slot].state == slotDead {
			seg[k].skip = true
		}
	}
	for _, w := range p.ws {
		w.task = w.task[:0]
		w.ops = w.ops[:0]
		w.ran = 0
	}
	for k := range seg {
		w := p.ws[int(seg[k].unit)%len(p.ws)]
		w.task = append(w.task, seg[k])
	}
	p.panicVal = nil
	for _, w := range p.ws {
		if len(w.task) == 0 {
			continue
		}
		p.wg.Add(1)
		w.in <- w.task
	}
	p.wg.Wait()
	if p.panicVal != nil {
		panic(p.panicVal)
	}
	e.commitOps()
	var ran uint64
	for _, w := range p.ws {
		ran += w.ran
	}
	for k := range seg {
		e.freeSlot(seg[k].slot) // slotBatch (ran or skipped) or slotDead
	}
	e.Executed += ran
	if e.MaxEvents > 0 && e.Executed > e.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at t=%v", e.MaxEvents, e.now))
	}
}

// commitOps applies every worker-buffered Schedule/Cancel in (parentSeq,
// opIdx) order — the order the serial dispatcher would have executed the
// calls in — assigning seq numbers identical to serial execution. Each
// worker's ops are already sorted by that key (its task is in seq order and
// opIdx counts up within an event), so a k-way merge of the per-worker runs
// yields the global order without sort.Slice's reflection allocations —
// steady-state phases must stay allocation-free.
func (e *Engine) commitOps() {
	p := e.par
	buf := p.commit[:0]
	heads := p.heads[:0]
	for range p.ws {
		heads = append(heads, 0)
	}
	p.heads = heads
	for {
		best := -1
		for i, w := range p.ws {
			if heads[i] >= len(w.ops) {
				continue
			}
			if best < 0 || bufOpLess(&w.ops[heads[i]], &p.ws[best].ops[heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		buf = append(buf, p.ws[best].ops[heads[best]])
		heads[best]++
	}
	p.commit = buf
	for _, op := range buf {
		if op.cancel {
			e.cancelCommitted(op.h, op.parentSeq, op.parentUnit)
			continue
		}
		// Serial execution would have assigned this schedule the next seq at
		// this very point; consume it even if the event was cancelled while
		// buffered, so the numbering never drifts from serial.
		e.seq++
		s := &e.slots[op.slot]
		if s.gen != op.gen || s.state != slotBuffered {
			if s.gen == op.gen && s.state == slotDead {
				e.freeSlot(op.slot)
			}
			continue
		}
		s.seq = e.seq
		if s.at == e.now {
			s.state = slotNow
			e.nowQ = append(e.nowQ, op.slot)
		} else {
			s.state = slotHeap
			e.heapPush(heapEntry{at: s.at, seq: s.seq, slot: op.slot})
		}
	}
}

// cancelCommitted is Engine.Cancel for worker-buffered cancels, applied at
// commit time. The slotBatch case is the divergence detector: a cross-unit
// target still in the current batch with a larger seq than the cancelling
// event would not have run serially, but may already have run here — that is
// the cross-unit same-timestamp cancel the parallel contract forbids. A
// same-unit target in the batch can only be here if it sits in a later phase
// of the batch (same-phase targets resolve worker-locally), so it has not run
// yet and is safely marked dead.
func (e *Engine) cancelCommitted(h Handle, parentSeq uint64, parentUnit int32) {
	if h.slot <= 0 || int(h.slot) > len(e.slots) {
		return
	}
	i := h.slot - 1
	s := &e.slots[i]
	if s.gen != h.gen {
		return
	}
	if s.unit != parentUnit {
		e.CrossUnitCancels++
	}
	switch s.state {
	case slotHeap:
		s.state = slotDead
		e.dead++
		if e.dead > len(e.heap)/2 && len(e.heap) >= minCompactLen {
			e.compact()
		}
	case slotNow, slotBuffered:
		s.state = slotDead
	case slotBatch:
		if s.unit == parentUnit {
			s.state = slotDead // later phase of this batch; skip-refresh honors it
			return
		}
		if s.seq > parentSeq {
			panic(fmt.Sprintf(
				"sim: event seq=%d cancelled same-timestamp event seq=%d of another unit at t=%v; "+
					"cross-unit same-timestamp cancels are nondeterministic under parallel execution — "+
					"issue the cancel from a serial event or from the target's own unit", parentSeq, s.seq, e.now))
		}
		// Cross-unit target that ran before the canceller serially too: no-op.
	}
}

// requeueBatch pushes the unexecuted tail of a stopped batch back onto the
// heap (their (at, seq) keys are unchanged, so a later Run resumes exactly
// where serial execution would).
func (e *Engine) requeueBatch(rest []batchEntry) {
	for k := range rest {
		en := &rest[k]
		s := &e.slots[en.slot]
		if s.state == slotDead {
			e.freeSlot(en.slot)
			continue
		}
		s.state = slotHeap
		e.heapPush(heapEntry{at: en.at, seq: en.seq, slot: en.slot})
	}
}

func (p *parRuntime) startWorkers(e *Engine) {
	if p.ws != nil {
		return
	}
	p.ws = make([]*parWorker, p.workers)
	for i := range p.ws {
		w := &parWorker{e: e, in: make(chan []batchEntry)}
		w.ctx = UnitCtx{e: e, w: w}
		p.ws[i] = w
		go w.loop()
	}
}

func (p *parRuntime) stopWorkers() {
	for _, w := range p.ws {
		close(w.in)
	}
	p.ws = nil
}

func (w *parWorker) loop() {
	for task := range w.in {
		w.runTask(task)
		w.e.par.wg.Done()
	}
}

func (w *parWorker) runTask(task []batchEntry) {
	defer func() {
		if r := recover(); r != nil {
			p := w.e.par
			p.pmu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.pmu.Unlock()
		}
	}()
	ctx := &w.ctx
	ctx.task = task
	for k := range task {
		en := &task[k]
		if en.skip {
			continue
		}
		ctx.taskPos = k
		ctx.parentSeq = en.seq
		ctx.opIdx = 0
		w.ran++
		en.ufn(ctx, en.at)
	}
}
