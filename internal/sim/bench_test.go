package sim

import "testing"

// The engine benchmarks cover the three hot shapes model code produces:
// schedule-then-pop through the heap, zero-delay self-scheduling through the
// same-timestamp FIFO, and cancel/reschedule churn. All must report
// 0 allocs/op in steady state (TestEngineSteadyStateAllocFree pins that as a
// hard test); the CI perf gate compares their ns/op against the PR base.

// BenchmarkEngineScheduleRun is the canonical schedule+dispatch cycle: one
// future event through the heap per iteration.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	nop := func(Time) {}
	e.Schedule(1, nop)
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, nop)
		e.Run()
	}
}

// BenchmarkEngineZeroDelayChain measures the same-timestamp fast path: each
// event self-schedules at the current time, the pattern the program layer's
// launch and grant handoffs produce.
func BenchmarkEngineZeroDelayChain(b *testing.B) {
	e := NewEngine()
	left := 0
	var chain func(Time)
	chain = func(at Time) {
		if left--; left > 0 {
			e.Schedule(at, chain)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	left = b.N
	e.Schedule(e.Now()+1, chain)
	e.Run()
}

// BenchmarkEngineHeapChurn keeps a deep queue resident (1024 pending events)
// so every schedule and pop pays full-depth sift costs.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine()
	const depth = 1024
	count := 0
	var self func(Time)
	self = func(at Time) {
		if count++; count < b.N {
			e.Schedule(at+depth, self)
		}
	}
	for i := 0; i < depth && i < b.N; i++ {
		e.Schedule(Time(i+1), self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineCancelReschedule measures the timeout idiom: schedule a
// guard event, cancel it, schedule its replacement.
func BenchmarkEngineCancelReschedule(b *testing.B) {
	e := NewEngine()
	nop := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(e.Now()+100, nop)
		e.Cancel(h)
		e.Schedule(e.Now()+1, nop)
		e.Run()
	}
}
