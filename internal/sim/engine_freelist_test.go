package sim

import "testing"

// The freelist recycles event slots aggressively, so the dangerous patterns
// are all about handles outliving their slot's occupant. These tests pin the
// generation-check contract: a stale Handle is always a no-op, never an alias
// of the slot's new event.

func TestCancelThenReschedule(t *testing.T) {
	e := NewEngine()
	ran := 0
	h := e.Schedule(10, func(Time) { t.Error("cancelled event ran") })
	e.Cancel(h)
	e.Schedule(10, func(Time) { ran++ })
	e.Cancel(h) // double-cancel of a dead event: no-op
	e.Run()
	if ran != 1 {
		t.Fatalf("replacement event ran %d times, want 1", ran)
	}
}

func TestCancelRecycledHandleIsNoOp(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(10, func(Time) {})
	e.Run() // first runs; its slot is recycled with a bumped generation
	ran := false
	second := e.Schedule(20, func(Time) { ran = true })
	if second.slot != first.slot {
		t.Fatalf("expected slot reuse (first=%d second=%d); freelist broken?",
			first.slot, second.slot)
	}
	if second.gen == first.gen {
		t.Fatal("recycled slot kept its generation; stale handles would alias")
	}
	e.Cancel(first) // stale: must not touch the slot's new occupant
	e.Run()
	if !ran {
		t.Fatal("cancelling a stale handle killed the slot's new event")
	}
}

func TestCancelledSlotRecycledHandleIsNoOp(t *testing.T) {
	e := NewEngine()
	// Cancelled (never run) events must also invalidate their handles once
	// the slot is recycled off the heap.
	h := e.Schedule(10, func(Time) {})
	e.Cancel(h)
	e.Run() // pops the dead entry and recycles the slot
	ran := false
	h2 := e.Schedule(30, func(Time) { ran = true })
	if h2.slot != h.slot {
		t.Fatalf("expected slot reuse (got %d, want %d)", h2.slot, h.slot)
	}
	e.Cancel(h) // stale
	e.Run()
	if !ran {
		t.Fatal("stale handle cancelled the recycled slot's event")
	}
}

// Interleaved compaction: cancelling past the compaction threshold frees dead
// slots while their handles are still held; new events immediately reuse
// those slots, and the old handles must stay no-ops.
func TestCancelRecycledAcrossCompaction(t *testing.T) {
	e := NewEngine()
	var stale []Handle
	for i := 0; i < 4*minCompactLen; i++ {
		stale = append(stale, e.Schedule(Time(100+i), func(Time) { t.Error("cancelled event ran") }))
	}
	for _, h := range stale {
		e.Cancel(h) // crosses the dead > len/2 threshold: compacts, recycles slots
	}
	// Compaction keeps the all-dead heap below the compaction floor.
	if p := e.Pending(); p > minCompactLen {
		t.Fatalf("compaction left %d dead entries pending (want <= %d)", p, minCompactLen)
	}
	ran := 0
	for i := 0; i < 2*minCompactLen; i++ {
		e.Schedule(Time(200+i), func(Time) { ran++ })
	}
	for _, h := range stale {
		e.Cancel(h) // all stale now; must not kill the reused slots
	}
	e.Run()
	if ran != 2*minCompactLen {
		t.Fatalf("ran %d live events, want %d (stale cancels aliased recycled slots)",
			ran, 2*minCompactLen)
	}
}

func TestCancelZeroHandleAndForeignHandle(t *testing.T) {
	e := NewEngine()
	e.Cancel(Handle{})                   // zero handle: no-op
	e.Cancel(Handle{slot: 1000, gen: 3}) // out-of-range slot: no-op
	ran := false
	e.Schedule(5, func(Time) { ran = true })
	e.Cancel(Handle{slot: 1, gen: 99}) // right slot, wrong generation: no-op
	e.Run()
	if !ran {
		t.Fatal("bogus handles affected a live event")
	}
}

// TestZeroDelayFastPathOrdering lives in engine_order_test.go (package
// sim_test) so it can share the simtest.CheckOrder invariant checker.

func TestZeroDelayCancel(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func(at Time) {
		h := e.Schedule(at, func(Time) { t.Error("cancelled zero-delay event ran") })
		e.Schedule(at, func(Time) { ran++ })
		e.Cancel(h)
	})
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d zero-delay events, want 1", ran)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after drain", e.Pending())
	}
}

// RunUntil must execute zero-delay events scheduled exactly at the deadline.
func TestRunUntilZeroDelayAtDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(100, func(at Time) {
		ran++
		e.Schedule(at, func(Time) { ran++ })
	})
	e.Schedule(101, func(Time) { t.Error("post-deadline event ran") })
	e.RunUntil(100)
	if ran != 2 {
		t.Fatalf("ran %d events at the deadline, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want the post-deadline one", e.Pending())
	}
}

// Steady-state Schedule/run must be allocation-free: slots come off the
// freelist, the heap and FIFO reuse their capacity, and dispatch allocates
// nothing. This is the contract the macro-benchmarks (syncron-bench -perf)
// and the CI perf gate are built on.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	nop := func(Time) {}
	// Warm up arena, freelist, heap, and FIFO capacity.
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+Time(i+1), nop)
	}
	e.Run()

	if a := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, nop)
		e.Schedule(e.Now()+2, nop)
		e.Run()
	}); a != 0 {
		t.Errorf("steady-state Schedule/Run (heap path): %v allocs/op, want 0", a)
	}

	var chain func(Time)
	hops := 0
	chain = func(at Time) {
		if hops++; hops%8 != 0 {
			e.Schedule(at, chain) // zero-delay self-schedule (nowQ fast path)
		}
	}
	if a := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, chain)
		e.Run()
	}); a != 0 {
		t.Errorf("steady-state zero-delay chain: %v allocs/op, want 0", a)
	}

	h := e.Schedule(e.Now()+10, nop)
	e.Cancel(h)
	e.Run()
	if a := testing.AllocsPerRun(1000, func() {
		h := e.Schedule(e.Now()+10, nop)
		e.Cancel(h)
		e.Schedule(e.Now()+1, nop)
		e.Run()
	}); a != 0 {
		t.Errorf("steady-state cancel/reschedule: %v allocs/op, want 0", a)
	}
}
