// Package simtest provides shared invariant checkers for tests of the event
// engine and code layered on it. The central invariant of internal/sim is
// that events execute in global (at, seq) order — timestamps never go
// backwards, and events sharing a timestamp run in schedule order — and that
// invariant must hold identically under the serial and parallel dispatchers.
package simtest

import (
	"testing"

	"syncron/internal/sim"
)

// Event is one observed execution: the timestamp the callback ran at and the
// observer-assigned schedule order (any value that is strictly increasing in
// the order events were scheduled; engine-internal seq numbers are not
// exposed, and tests don't need them).
type Event struct {
	At  sim.Time
	Seq uint64
}

// CheckOrder fails tb unless events is in strict global (at, seq) order:
// At non-decreasing throughout, and Seq strictly increasing within each run
// of equal At. This is the engine's dispatch-order contract; recording the
// execution order of scheduled events and handing it to CheckOrder proves
// the run respected it.
func CheckOrder(tb testing.TB, events []Event) {
	tb.Helper()
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		if cur.At < prev.At {
			tb.Fatalf("event %d ran at t=%v after event %d at t=%v: time went backwards",
				i, cur.At, i-1, prev.At)
		}
		if cur.At == prev.At && cur.Seq <= prev.Seq {
			tb.Fatalf("events %d (seq %d) and %d (seq %d) share t=%v but ran out of schedule order",
				i-1, prev.Seq, i, cur.Seq, cur.At)
		}
	}
}

// Recorder accumulates executed events for a later CheckOrder. It is not
// safe for concurrent use; record from serial (barrier) events, or merge
// per-unit recordings before checking.
type Recorder struct {
	Events []Event
}

// Observe appends one execution.
func (r *Recorder) Observe(at sim.Time, seq uint64) {
	r.Events = append(r.Events, Event{At: at, Seq: seq})
}

// Check asserts the recorded order; see CheckOrder.
func (r *Recorder) Check(tb testing.TB) {
	tb.Helper()
	CheckOrder(tb, r.Events)
}
