// Package sim provides the discrete-event simulation engine that underlies
// the NDP system model: a picosecond-resolution clock, a binary-heap event
// queue, deterministic pseudo-random numbers, and small statistics helpers.
package sim

import "fmt"

// Time is a simulation timestamp in picoseconds. Using picoseconds lets the
// engine mix clock domains exactly (2.5 GHz cores, 1 GHz SEs, DRAM timing in
// nanoseconds) without rounding drift.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Clock describes a fixed-frequency clock domain.
type Clock struct {
	Period Time // duration of one cycle
}

// NewClock returns a clock with the given frequency in MHz.
func NewClock(mhz int64) Clock {
	if mhz <= 0 {
		panic(fmt.Sprintf("sim: invalid clock frequency %d MHz", mhz))
	}
	return Clock{Period: Time(1_000_000 / mhz * int64(Picosecond))}
}

// Cycles converts a cycle count into a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// ToCycles converts a duration into whole cycles, rounding up.
func (c Clock) ToCycles(d Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + c.Period - 1) / c.Period)
}

// Align rounds t up to the next edge of the clock.
func (c Clock) Align(t Time) Time {
	rem := t % c.Period
	if rem == 0 {
		return t
	}
	return t + c.Period - rem
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds reports t as floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}
