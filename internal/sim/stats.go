package sim

import (
	"math"
	"sort"
)

// Counter is a monotonically increasing event counter.
type Counter struct{ n uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge tracks a time-weighted running value, e.g. occupancy of a table. The
// average is weighted by how long each value was held.
type Gauge struct {
	value    float64
	max      float64
	lastAt   Time
	weighted float64
	spanned  Time
}

// Set records a new value at time t.
func (g *Gauge) Set(t Time, v float64) {
	if t > g.lastAt {
		g.weighted += g.value * float64(t-g.lastAt)
		g.spanned += t - g.lastAt
	}
	g.lastAt = t
	g.value = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the value by delta at time t.
func (g *Gauge) Add(t Time, delta float64) { g.Set(t, g.value+delta) }

// Max returns the maximum value observed.
func (g *Gauge) Max() float64 { return g.max }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.value }

// Mean returns the time-weighted mean up to the last Set. It returns 0 if no
// time has elapsed.
func (g *Gauge) Mean() float64 {
	if g.spanned == 0 {
		return g.value
	}
	return g.weighted / float64(g.spanned)
}

// Histogram accumulates scalar samples for latency-style summaries. Samples
// are retained individually so exact quantiles are available; callers
// observing unbounded streams should aggregate upstream.
type Histogram struct {
	n    uint64
	sum  float64
	sum2 float64
	min  float64
	max  float64

	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.sum2 += v * v
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile of the observed samples by nearest rank
// (q is clamped to [0, 1]); it returns 0 when the histogram is empty.
// Samples are sorted lazily, so alternating Observe and Quantile re-sorts on
// each transition.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// StdDev returns the population standard deviation (0 when empty).
func (h *Histogram) StdDev() float64 {
	if h.n == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sum2/float64(h.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
