package sim

import (
	"testing"
	"testing/quick"
)

func TestClockConversions(t *testing.T) {
	core := NewClock(2500) // 2.5 GHz
	if core.Period != 400*Picosecond {
		t.Fatalf("2.5GHz period = %v, want 400ps", core.Period)
	}
	se := NewClock(1000)
	if se.Period != 1000*Picosecond {
		t.Fatalf("1GHz period = %v, want 1ns", se.Period)
	}
	if got := core.Cycles(10); got != 4*Nanosecond {
		t.Fatalf("10 cycles @2.5GHz = %v, want 4ns", got)
	}
	if got := core.ToCycles(4 * Nanosecond); got != 10 {
		t.Fatalf("ToCycles(4ns) = %d, want 10", got)
	}
	if got := core.Align(401 * Picosecond); got != 800*Picosecond {
		t.Fatalf("Align(401ps) = %v, want 800ps", got)
	}
	if got := core.Align(800 * Picosecond); got != 800*Picosecond {
		t.Fatalf("Align(800ps) = %v (already aligned)", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func(Time) { order = append(order, 3) })
	e.Schedule(10, func(Time) { order = append(order, 1) })
	e.Schedule(20, func(Time) { order = append(order, 2) })
	// Same-timestamp events run in scheduling order.
	e.Schedule(20, func(Time) { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.Schedule(5, func(Time) {
		e.After(5, func(Time) {
			hits++
			if e.Now() != 10 {
				t.Errorf("nested event at %v, want 10", e.Now())
			}
		})
	})
	e.Run()
	if hits != 1 {
		t.Fatal("nested event did not run")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		e.Schedule(5, func(Time) {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(10, func(Time) { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineStopAndRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		e.Schedule(Time(i*10), func(Time) {
			count++
			if i == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("Stop at 5th event: ran %d", count)
	}
	e.RunUntil(80)
	if count != 8 {
		t.Fatalf("RunUntil(80): ran %d, want 8", count)
	}
}

// TestMaxEventsGuard checks the runaway guard fires on BOTH dispatch paths.
// RunUntil historically bypassed MaxEvents, so a self-rescheduling event
// could spin a deadline-driven run forever without tripping the guard.
func TestMaxEventsGuard(t *testing.T) {
	runaway := func(e *Engine) {
		var loop func(Time)
		loop = func(Time) { e.After(1, loop) }
		e.After(1, loop)
	}
	t.Run("Run", func(t *testing.T) {
		e := NewEngine()
		e.MaxEvents = 10
		runaway(e)
		defer func() {
			if recover() == nil {
				t.Error("Run must panic when MaxEvents is exceeded")
			}
			if e.Executed != e.MaxEvents+1 {
				t.Errorf("executed %d events, want MaxEvents+1 = %d", e.Executed, e.MaxEvents+1)
			}
		}()
		e.Run()
	})
	t.Run("RunUntil", func(t *testing.T) {
		e := NewEngine()
		e.MaxEvents = 10
		runaway(e)
		defer func() {
			if recover() == nil {
				t.Error("RunUntil must panic when MaxEvents is exceeded")
			}
			if e.Executed != e.MaxEvents+1 {
				t.Errorf("executed %d events, want MaxEvents+1 = %d", e.Executed, e.MaxEvents+1)
			}
		}()
		e.RunUntil(1000)
	})
}

// TestRunUntilAdvancesToDeadline checks the clock lands on the deadline even
// when the queue drains early (and that events past the deadline stay queued).
func TestRunUntilAdvancesToDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func(Time) { ran++ })
	e.Schedule(200, func(Time) { ran++ })
	if got := e.RunUntil(100); got != 100 {
		t.Fatalf("RunUntil(100) = %v, want 100", got)
	}
	if ran != 1 {
		t.Fatalf("ran %d events before the deadline, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("%d events pending, want the post-deadline one", e.Pending())
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if err := quick.Check(func(seed uint64, n uint16) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		v := r.Intn(int(n))
		return v >= 0 && v < int(n)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestGaugeTimeWeightedMean(t *testing.T) {
	var g Gauge
	g.Set(0, 10)
	g.Set(10, 20) // value 10 held for 10
	g.Set(30, 0)  // value 20 held for 20
	// mean = (10*10 + 20*20) / 30 = 16.67
	if m := g.Mean(); m < 16.6 || m > 16.7 {
		t.Fatalf("mean = %f, want ~16.67", m)
	}
	if g.Max() != 20 {
		t.Fatalf("max = %f, want 20", g.Max())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Mean() != 3 || h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("histogram stats wrong: n=%d mean=%f min=%f max=%f",
			h.Count(), h.Mean(), h.Min(), h.Max())
	}
	if sd := h.StdDev(); sd < 1.41 || sd > 1.42 {
		t.Fatalf("stddev = %f, want ~1.414", sd)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:  "500ps",
		3 * Nanosecond:    "3.000ns",
		2500 * Nanosecond: "2.500us",
		3 * Millisecond:   "3.000ms",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

// Heavy cancel/reschedule churn — the pattern of timeout-style model code —
// must not grow the event queue unboundedly: dead events are compacted away
// once they exceed half the queue.
func TestEngineCancelChurnBoundsQueue(t *testing.T) {
	e := NewEngine()
	const live = 10
	for i := 0; i < live; i++ {
		e.Schedule(Time(1_000_000+i), func(Time) {})
	}
	maxPending := 0
	for i := 0; i < 100_000; i++ {
		ev := e.Schedule(Time(i+1), func(Time) { t.Error("cancelled event ran") })
		e.Cancel(ev)
		e.Cancel(ev) // double-cancel must not skew the dead count
		if p := e.Pending(); p > maxPending {
			maxPending = p
		}
	}
	if maxPending > 4*minCompactLen {
		t.Fatalf("queue grew to %d events under cancel churn (want <= %d)",
			maxPending, 4*minCompactLen)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	if e.Executed != live {
		t.Fatalf("executed %d events, want the %d live ones", e.Executed, live)
	}
}

// TestEngineCompactionPreservesOrder lives in engine_order_test.go (package
// sim_test) so it can share the simtest.CheckOrder invariant checker.
