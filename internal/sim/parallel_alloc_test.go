package sim

import (
	"runtime"
	"testing"
)

// Steady-state dispatch must stay allocation-free under the parallel
// dispatcher too: batch collection, phase partitioning, worker hand-off, and
// the ordered op commit all reuse their buffers once warmed up. Workers are
// started and stopped per Run (they must not outlive it), so the contract is
// amortized within one Run rather than per Engine.Run call: a long run's
// allocations stay bounded by the fixed start-up cost, independent of how
// many events execute. This is the parallel twin of
// TestEngineSteadyStateAllocFree and the contract behind the multi-worker
// entries of syncron-bench -perf.
func TestEngineParallelSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	e.SetParallelism(4)
	const units = 8
	const rounds = 5000

	// Every round is one same-timestamp batch fanned across 8 units (more
	// units than workers, so the phase is not inlinable and every worker
	// gets a task), and each event reschedules itself through its worker
	// UnitCtx, exercising the buffered-op commit path each round.
	left := make([]int, units)
	chains := make([]UnitFunc, units)
	for u := 0; u < units; u++ {
		u := u
		chains[u] = func(ctx *UnitCtx, at Time) {
			if left[u]--; left[u] > 0 {
				ctx.Schedule(at+1, u, chains[u])
			}
		}
	}
	run := func(n int) {
		at := e.Now() + 1
		for u := 0; u < units; u++ {
			left[u] = n
			e.ScheduleUnit(at, u, chains[u])
		}
		e.Run()
	}

	run(64) // warm up slot arena, batch/phase/commit buffers, worker queues

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run(rounds)
	runtime.ReadMemStats(&after)

	events := uint64(units * rounds)
	allocs := after.Mallocs - before.Mallocs
	// The budget covers the one-time worker start-up of the measured Run
	// (goroutines + channels, ~20 allocations) and runtime noise; per-event
	// allocations would blow through it by orders of magnitude.
	const budget = 200
	if allocs > budget {
		t.Errorf("parallel steady state: %d allocs over %d events (%.4f/event), want amortized 0 (budget %d total)",
			allocs, events, float64(allocs)/float64(events), budget)
	}
}
