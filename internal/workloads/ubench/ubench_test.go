package ubench_test

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/core"
	"syncron/internal/sim"
	"syncron/internal/workloads/ubench"
)

func TestAllPrimitivesComplete(t *testing.T) {
	backends := map[string]func() arch.Backend{
		"syncron": func() arch.Backend { return core.NewSynCron() },
		"central": func() arch.Backend { return baselines.NewCentral() },
		"hier":    func() arch.Backend { return baselines.NewHier() },
		"ideal":   func() arch.Backend { return baselines.NewIdeal() },
	}
	for _, prim := range ubench.Primitives() {
		for bname, mk := range backends {
			prim, bname, mk := prim, bname, mk
			t.Run(string(prim)+"/"+bname, func(t *testing.T) {
				cfg := arch.Default()
				cfg.Units = 2
				cfg.CoresPerUnit = 4
				m := arch.NewMachine(cfg)
				m.Backend = mk()
				end := ubench.Run(m, ubench.Config{Primitive: prim, Interval: 100, Rounds: 10})
				if end <= 0 {
					t.Fatalf("%s on %s made no progress", prim, bname)
				}
			})
		}
	}
}

func TestIntervalScalesMakespan(t *testing.T) {
	run := func(interval int64) sim.Time {
		cfg := arch.Default()
		cfg.Units = 2
		cfg.CoresPerUnit = 4
		m := arch.NewMachine(cfg)
		m.Backend = baselines.NewIdeal()
		return ubench.Run(m, ubench.Config{Primitive: ubench.Lock, Interval: interval, Rounds: 20})
	}
	if run(2000) <= run(100) {
		t.Fatal("larger interval should produce larger makespan under Ideal")
	}
}

func TestSynCronBeatsCentralAtSmallInterval(t *testing.T) {
	run := func(b arch.Backend) sim.Time {
		cfg := arch.Default()
		m := arch.NewMachine(cfg)
		m.Backend = b
		return ubench.Run(m, ubench.Config{Primitive: ubench.Barrier, Interval: 50, Rounds: 10})
	}
	central := run(baselines.NewCentral())
	syncron := run(core.NewSynCron())
	if syncron >= central {
		t.Fatalf("syncron (%v) not faster than central (%v) on tight barriers", syncron, central)
	}
}
