// Package ubench implements the Figure-10 microbenchmarks: each of the four
// synchronization primitives exercised by 60 cores that repeatedly reach a
// single synchronization variable, with a configurable instruction interval
// between synchronization points.
package ubench

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// Primitive selects the microbenchmark.
type Primitive string

// The four Figure-10 primitives.
const (
	Lock      Primitive = "lock"
	Barrier   Primitive = "barrier"
	Semaphore Primitive = "semaphore"
	CondVar   Primitive = "condvar"
)

// Primitives lists all four in figure order.
func Primitives() []Primitive { return []Primitive{Lock, Barrier, Semaphore, CondVar} }

// Config parameterizes one run.
type Config struct {
	Primitive Primitive
	Interval  int64 // instructions between synchronization points
	Rounds    int   // synchronization points per core
}

// Run executes the microbenchmark on machine m and returns the makespan.
func Run(m *arch.Machine, cfg Config) sim.Time {
	r := program.NewRunner(m)
	Build(m, r, cfg)
	return r.Run()
}

// Build registers the benchmark's programs on runner r.
func Build(m *arch.Machine, r *program.Runner, cfg Config) {
	n := m.NumCores()
	if cfg.Rounds == 0 {
		cfg.Rounds = 50
	}
	v := m.Alloc(0, 64)
	switch cfg.Primitive {
	case Lock:
		// Empty critical section; interval of work between acquisitions.
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				for k := 0; k < cfg.Rounds; k++ {
					ctx.Lock(v)
					ctx.Unlock(v)
					ctx.Compute(cfg.Interval)
				}
			}
		})
	case Barrier:
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				for k := 0; k < cfg.Rounds; k++ {
					ctx.Compute(cfg.Interval)
					ctx.BarrierAcrossUnits(v, n)
				}
			}
		})
	case Semaphore:
		// Half the cores wait, half post (paper §6.1.1).
		half := n / 2
		r.AddN(n, func(i int) program.Program {
			if i < half {
				return func(ctx *program.Ctx) {
					for k := 0; k < cfg.Rounds; k++ {
						ctx.SemWait(v, 0)
						ctx.Compute(cfg.Interval)
					}
				}
			}
			return func(ctx *program.Ctx) {
				for k := 0; k < cfg.Rounds; k++ {
					ctx.SemPost(v)
					ctx.Compute(cfg.Interval)
				}
			}
		})
		// Posts must cover waits exactly: n-half posters x rounds >= half x
		// rounds requires half <= n-half, which holds; surplus posts are
		// absorbed by the count.
	case CondVar:
		// Half wait on the condition, half signal; a token counter gives
		// Mesa-safe semantics (no lost wakeups).
		lock := m.Alloc(0, 64)
		half := n / 2
		tokens := 0
		r.AddN(n, func(i int) program.Program {
			if i < half {
				return func(ctx *program.Ctx) {
					for k := 0; k < cfg.Rounds; k++ {
						ctx.Lock(lock)
						for tokens == 0 {
							ctx.CondWait(v, lock)
						}
						tokens--
						ctx.Unlock(lock)
						ctx.Compute(cfg.Interval)
					}
				}
			}
			return func(ctx *program.Ctx) {
				for k := 0; k < cfg.Rounds; k++ {
					ctx.Lock(lock)
					tokens++
					ctx.CondSignal(v, lock)
					ctx.Unlock(lock)
					ctx.Compute(cfg.Interval)
				}
			}
		})
	default:
		panic(fmt.Sprintf("ubench: unknown primitive %q", cfg.Primitive))
	}
}
