package tseries_test

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/core"
	"syncron/internal/program"
	"syncron/internal/workloads/tseries"
)

func TestMatrixProfileAllSchemes(t *testing.T) {
	backends := map[string]func() arch.Backend{
		"syncron": func() arch.Backend { return core.NewSynCron() },
		"ideal":   func() arch.Backend { return baselines.NewIdeal() },
		"hier":    func() arch.Backend { return baselines.NewHier() },
	}
	for _, input := range tseries.Inputs() {
		for bname, mk := range backends {
			input, bname, mk := input, bname, mk
			t.Run(input+"/"+bname, func(t *testing.T) {
				cfg := arch.Default()
				cfg.Units = 2
				cfg.CoresPerUnit = 4
				m := arch.NewMachine(cfg)
				m.Backend = mk()
				s := tseries.Load(input, 0.15)
				w := tseries.New(m, s)
				r := program.NewRunner(m)
				w.Build(m, r)
				r.Run()
				if err := w.Check(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestSeriesDeterminism(t *testing.T) {
	a := tseries.Load("air", 0.2)
	b := tseries.Load("air", 0.2)
	if len(a.Values) != len(b.Values) {
		t.Fatal("non-deterministic series length")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("non-deterministic value at %d", i)
		}
	}
}
