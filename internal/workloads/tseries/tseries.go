// Package tseries implements the paper's time-series analysis workload:
// matrix-profile computation with SCRIMP on the Matrix Profile datasets (air
// quality, power consumption). The input series is replicated in each NDP
// unit (shared read-only, cacheable); the output profile is a read-write
// array partitioned across units, protected by fine-grained locks; cores
// process anti-diagonals of the distance matrix and synchronize with
// barriers. The real datasets are replaced by deterministic synthetic
// random-walk series (see DESIGN.md §3): SCRIMP's synchronization pattern is
// independent of the data values.
package tseries

import (
	"fmt"
	"math"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// Inputs lists the two Table-6 datasets.
func Inputs() []string { return []string{"air", "pow"} }

// Series is one input dataset.
type Series struct {
	Name   string
	Values []float64
	Window int
}

// Load synthesizes the named dataset at the given scale.
func Load(name string, scale float64) *Series {
	var n, w int
	var seed uint64
	switch name {
	case "air":
		n, w, seed = 1200, 24, 7
	case "pow":
		n, w, seed = 1600, 32, 9
	default:
		panic(fmt.Sprintf("tseries: unknown dataset %q", name))
	}
	n = int(float64(n) * scale)
	if n < 8*w {
		n = 8 * w
	}
	rng := sim.NewRNG(seed)
	vals := make([]float64, n)
	v := 0.0
	for i := range vals {
		v += rng.Float64() - 0.5
		vals[i] = v
	}
	return &Series{Name: name, Values: vals, Window: w}
}

// Profiles returns the number of subsequences (profile length).
func (s *Series) Profiles() int { return len(s.Values) - s.Window + 1 }

// dist is the (un-normalized) squared Euclidean distance between the
// subsequences starting at i and j; SCRIMP-style incremental update is
// modelled by the per-step compute cost in the simulated kernel.
func (s *Series) dist(i, j int) float64 {
	var d float64
	for k := 0; k < s.Window; k++ {
		x := s.Values[i+k] - s.Values[j+k]
		d += x * x
	}
	return d
}

// Workload is a runnable matrix-profile computation.
type Workload struct {
	s       *Series
	profile []float64

	inBase   []uint64 // replicated input, per unit
	outData  []uint64 // profile lines (8 entries per line)
	outLock  []uint64
	barrier  uint64
	exclZone int
}

// New places the workload on machine m.
func New(m *arch.Machine, s *Series) *Workload {
	w := &Workload{s: s, exclZone: s.Window / 4}
	np := s.Profiles()
	w.profile = make([]float64, np)
	for i := range w.profile {
		w.profile[i] = math.Inf(1)
	}
	// Input replicated per unit (read-only).
	for u := 0; u < m.Cfg.Units; u++ {
		w.inBase = append(w.inBase, m.Alloc(u, uint64(len(s.Values)*8)))
	}
	// Output partitioned across units, one lock per line of 8 entries.
	lines := (np + 7) / 8
	per := (lines + m.Cfg.Units - 1) / m.Cfg.Units
	for l := 0; l < lines; l++ {
		u := l / per % m.Cfg.Units
		w.outData = append(w.outData, m.AllocShared(u, 64))
		w.outLock = append(w.outLock, m.Alloc(u, 64))
	}
	w.barrier = m.Alloc(0, 64)
	return w
}

// update folds distance d into profile[i]: an unlocked read checks whether d
// improves the current minimum; only improvements take the line lock (the
// standard SCRIMP update pattern — still lock-heavy early on, when the
// profile is all +Inf and most comparisons improve it).
func (w *Workload) update(ctx *program.Ctx, i int, d float64) {
	line := i / 8
	ctx.Read(w.outData[line])
	if d >= w.profile[i] {
		return
	}
	ctx.Lock(w.outLock[line])
	if d < w.profile[i] { // recheck under the lock
		w.profile[i] = d
		ctx.Write(w.outData[line])
	}
	ctx.Unlock(w.outLock[line])
}

// Build registers the SCRIMP programs: diagonals are distributed round-robin
// across cores; each diagonal element costs an incremental dot-product
// update (O(1) compute) plus two profile updates (row and column).
func (w *Workload) Build(m *arch.Machine, r *program.Runner) {
	n := m.NumCores()
	np := w.s.Profiles()
	r.AddN(n, func(core int) program.Program {
		return func(ctx *program.Ctx) {
			unit := m.UnitOf(ctx.ID)
			for d := w.exclZone + 1 + core; d < np; d += n {
				// First element of the diagonal: full dot product.
				ctx.Read(w.inBase[unit])
				ctx.Compute(int64(w.s.Window))
				for i := 0; i+d < np; i++ {
					// Incremental SCRIMP update: O(1) flops + input reads
					// from the local replica.
					ctx.Read(w.inBase[unit] + uint64((i%len(w.s.Values))*8/64*64))
					ctx.Compute(16)
					dist := w.s.dist(i, i+d)
					w.update(ctx, i, dist)
					w.update(ctx, i+d, dist)
				}
			}
			ctx.BarrierAcrossUnits(w.barrier, n)
		}
	})
}

// Check validates the computed profile against a host-side reference.
func (w *Workload) Check() error {
	np := w.s.Profiles()
	for i := 0; i < np; i++ {
		want := math.Inf(1)
		for j := 0; j < np; j++ {
			dd := j - i
			if dd < 0 {
				dd = -dd
			}
			if dd <= w.exclZone {
				continue
			}
			if d := w.s.dist(i, j); d < want {
				want = d
			}
		}
		if math.Abs(want-w.profile[i]) > 1e-9 {
			return fmt.Errorf("ts: profile[%d] = %g, want %g", i, w.profile[i], want)
		}
	}
	return nil
}
