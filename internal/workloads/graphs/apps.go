package graphs

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/program"
)

// Apps lists the six applications in Table-6 order.
func Apps() []string { return []string{"bfs", "cc", "sssp", "pr", "tf", "tc"} }

// UsesBarriers reports whether the app synchronizes with barriers (Table 6:
// tf uses only locks).
func UsesBarriers(app string) bool { return app != "tf" }

// RunConfig parameterizes one graph-application run.
type RunConfig struct {
	App   string
	Graph *Graph
	Part  Partition // vertex -> NDP unit placement
	Iters int       // safety cap on propagation rounds (default 64)
}

// Layout is the simulated-memory placement of a graph: per-vertex output
// data and lock lines in the vertex's unit (shared read-write), adjacency
// lists in the vertex's unit (shared read-only, cacheable).
type Layout struct {
	G    *Graph
	Part Partition
	data []uint64
	lock []uint64
	adj  []uint64
}

// NewLayout places g on machine m according to part.
func NewLayout(m *arch.Machine, g *Graph, part Partition) *Layout {
	ly := &Layout{G: g, Part: part,
		data: make([]uint64, g.N), lock: make([]uint64, g.N), adj: make([]uint64, g.N)}
	for v := 0; v < g.N; v++ {
		u := part[v]
		ly.data[v] = m.AllocShared(u, 64)
		// Lock lines are only touched through the sync backend, so they live
		// in the cacheable arena (servers cache them; SynCron uses only the
		// address for identity and home-unit selection).
		ly.lock[v] = m.Alloc(u, 64)
		sz := uint64(len(g.Adj[v]) * 8)
		if sz == 0 {
			sz = 8
		}
		ly.adj[v] = m.Alloc(u, sz)
	}
	return ly
}

// ReadAdj models reading v's adjacency list (8 neighbors per line).
func (ly *Layout) ReadAdj(ctx *program.Ctx, v int) {
	lines := (len(ly.G.Adj[v]) + 7) / 8
	if lines == 0 {
		lines = 1
	}
	for i := 0; i < lines; i++ {
		ctx.Read(ly.adj[v] + uint64(i*64))
	}
}

// Mine returns the vertices assigned to global core id: each unit's vertices
// are split evenly among that unit's cores (the paper distributes vertex
// data equally across cores).
func (ly *Layout) Mine(m *arch.Machine, core int) []int {
	unit := m.UnitOf(core)
	local := m.LocalOf(core)
	per := m.Cfg.CoresPerUnit
	var mine []int
	i := 0
	for v := 0; v < ly.G.N; v++ {
		if ly.Part[v] != unit {
			continue
		}
		if i%per == local {
			mine = append(mine, v)
		}
		i++
	}
	return mine
}

// App is a runnable graph application; Check validates its output against a
// host-side reference.
type App struct {
	Build func(m *arch.Machine, r *program.Runner)
	Check func() error
}

// NewApp constructs the named application over layout ly.
func NewApp(m *arch.Machine, ly *Layout, cfg RunConfig) *App {
	if cfg.Iters == 0 {
		cfg.Iters = 64
	}
	switch cfg.App {
	case "bfs":
		return newBFS(m, ly, cfg)
	case "cc":
		return newCC(m, ly, cfg)
	case "sssp":
		return newSSSP(m, ly, cfg)
	case "pr":
		return newPR(m, ly, cfg)
	case "tf":
		return newTF(m, ly)
	case "tc":
		return newTC(m, ly)
	default:
		panic(fmt.Sprintf("graphs: unknown app %q", cfg.App))
	}
}

// roundDriver wraps the shared barrier-synchronized round structure: every
// core runs work(round) over its vertices, all cores barrier, core 0 decides
// whether another round is needed, all cores barrier again.
type roundDriver struct {
	m        *arch.Machine
	barrier  uint64
	cont     bool
	maxIters int
	prep     func(round int) bool // returns true to continue; run by core 0
}

func (rd *roundDriver) run(ctx *program.Ctx, n int, work func(round int)) {
	for round := 0; ; round++ {
		work(round)
		ctx.BarrierAcrossUnits(rd.barrier, n)
		if ctx.ID == 0 {
			rd.cont = rd.prep(round) && round+1 < rd.maxIters
		}
		ctx.BarrierAcrossUnits(rd.barrier, n)
		if !rd.cont {
			return
		}
	}
}

// Kernel instruction costs: address arithmetic, bounds checks, and loop
// overhead of the real compiled push kernels (in-order cores, 1 IPC). These
// set the synchronization-to-computation ratio the paper's Figure 12
// workloads exhibit.
const (
	vertexInstrs = 40
	edgeInstrs   = 24
)

// edgeWeight derives a deterministic positive weight for edge (u,v).
func edgeWeight(u, v int32) int32 {
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	h := uint64(a)*0x9e3779b9 ^ uint64(b)*0x85ebca6b
	return int32(h%15) + 1
}

// hub returns the highest-degree vertex, the natural BFS/SSSP source.
func hub(g *Graph) int {
	best := 0
	for v := 1; v < g.N; v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	return best
}

// ---- BFS ----

func newBFS(m *arch.Machine, ly *Layout, cfg RunConfig) *App {
	g := ly.G
	src := hub(g)
	dist := make([]int32, g.N)
	for v := range dist {
		dist[v] = -1
	}
	dist[src] = 0
	active := make([]bool, g.N)
	next := make([]bool, g.N)
	active[src] = true
	anyNext := false
	rd := &roundDriver{m: m, barrier: m.Alloc(0, 64), maxIters: cfg.Iters,
		prep: func(round int) bool {
			active, next = next, active
			for v := range next {
				next[v] = false
			}
			cont := anyNext
			anyNext = false
			return cont
		}}
	app := &App{}
	app.Build = func(m *arch.Machine, r *program.Runner) {
		n := m.NumCores()
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				mine := ly.Mine(m, ctx.ID)
				rd.run(ctx, n, func(round int) {
					for _, v := range mine {
						if !active[v] {
							continue
						}
						ctx.Read(ly.data[v])
						ly.ReadAdj(ctx, v)
						ctx.Compute(vertexInstrs)
						for _, nb := range g.Adj[v] {
							ctx.Compute(edgeInstrs)
							ctx.Read(ly.data[nb]) // unlocked check first
							if dist[nb] >= 0 {
								continue
							}
							ctx.Lock(ly.lock[nb])
							if dist[nb] < 0 { // recheck under the lock
								dist[nb] = dist[v] + 1
								ctx.Write(ly.data[nb])
								next[nb] = true
								anyNext = true
							}
							ctx.Unlock(ly.lock[nb])
						}
					}
				})
			}
		})
	}
	app.Check = func() error {
		ref := bfsRef(g, src)
		for v := range ref {
			if ref[v] != dist[v] {
				return fmt.Errorf("bfs: dist[%d] = %d, want %d", v, dist[v], ref[v])
			}
		}
		return nil
	}
	return app
}

func bfsRef(g *Graph, src int) []int32 {
	dist := make([]int32, g.N)
	for v := range dist {
		dist[v] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Adj[v] {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, int(nb))
			}
		}
	}
	return dist
}

// ---- Connected Components (label propagation) ----

func newCC(m *arch.Machine, ly *Layout, cfg RunConfig) *App {
	g := ly.G
	label := make([]int32, g.N)
	for v := range label {
		label[v] = int32(v)
	}
	changed := false
	rd := &roundDriver{m: m, barrier: m.Alloc(0, 64), maxIters: cfg.Iters,
		prep: func(round int) bool {
			c := changed
			changed = false
			return c
		}}
	app := &App{}
	app.Build = func(m *arch.Machine, r *program.Runner) {
		n := m.NumCores()
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				mine := ly.Mine(m, ctx.ID)
				rd.run(ctx, n, func(round int) {
					for _, v := range mine {
						ctx.Read(ly.data[v])
						ly.ReadAdj(ctx, v)
						ctx.Compute(vertexInstrs)
						for _, nb := range g.Adj[v] {
							ctx.Compute(edgeInstrs)
							ctx.Read(ly.data[nb]) // unlocked check first
							if label[v] < label[nb] {
								ctx.Lock(ly.lock[nb])
								if label[v] < label[nb] {
									label[nb] = label[v]
									ctx.Write(ly.data[nb])
									changed = true
								}
								ctx.Unlock(ly.lock[nb])
							}
						}
					}
				})
			}
		})
	}
	app.Check = func() error {
		for v := 0; v < g.N; v++ {
			for _, nb := range g.Adj[v] {
				if label[v] != label[nb] {
					return fmt.Errorf("cc: labels differ across edge (%d,%d): %d vs %d",
						v, nb, label[v], label[nb])
				}
			}
		}
		return nil
	}
	return app
}

// ---- SSSP (Bellman-Ford rounds) ----

func newSSSP(m *arch.Machine, ly *Layout, cfg RunConfig) *App {
	g := ly.G
	src := hub(g)
	const inf = int32(1 << 30)
	dist := make([]int32, g.N)
	for v := range dist {
		dist[v] = inf
	}
	dist[src] = 0
	changed := false
	rd := &roundDriver{m: m, barrier: m.Alloc(0, 64), maxIters: cfg.Iters,
		prep: func(round int) bool {
			c := changed
			changed = false
			return c
		}}
	app := &App{}
	app.Build = func(m *arch.Machine, r *program.Runner) {
		n := m.NumCores()
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				mine := ly.Mine(m, ctx.ID)
				rd.run(ctx, n, func(round int) {
					for _, v := range mine {
						if dist[v] >= inf {
							continue
						}
						ctx.Read(ly.data[v])
						ly.ReadAdj(ctx, v)
						ctx.Compute(vertexInstrs)
						for _, nb := range g.Adj[v] {
							ctx.Compute(edgeInstrs)
							nd := dist[v] + edgeWeight(int32(v), nb)
							ctx.Read(ly.data[nb]) // unlocked check first
							if nd < dist[nb] {
								ctx.Lock(ly.lock[nb])
								if nd < dist[nb] {
									dist[nb] = nd
									ctx.Write(ly.data[nb])
									changed = true
								}
								ctx.Unlock(ly.lock[nb])
							}
						}
					}
				})
			}
		})
	}
	app.Check = func() error {
		// Triangle inequality at fixpoint: no edge can relax further.
		for v := 0; v < g.N; v++ {
			if dist[v] >= inf {
				continue
			}
			for _, nb := range g.Adj[v] {
				if dist[v]+edgeWeight(int32(v), nb) < dist[nb] {
					return fmt.Errorf("sssp: edge (%d,%d) still relaxable", v, nb)
				}
			}
		}
		if dist[src] != 0 {
			return fmt.Errorf("sssp: source distance %d", dist[src])
		}
		return nil
	}
	return app
}

// ---- PageRank (push) ----

func newPR(m *arch.Machine, ly *Layout, cfg RunConfig) *App {
	g := ly.G
	iters := 3
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for v := range rank {
		rank[v] = 1.0 / float64(g.N)
	}
	rd := &roundDriver{m: m, barrier: m.Alloc(0, 64), maxIters: iters + 1,
		prep: func(round int) bool {
			rank, next = next, rank
			return round+1 < iters
		}}
	app := &App{}
	app.Build = func(m *arch.Machine, r *program.Runner) {
		n := m.NumCores()
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				mine := ly.Mine(m, ctx.ID)
				rd.run(ctx, n, func(round int) {
					// CRONO-style iteration: gather neighbor ranks (reads on
					// the shared read-write output array), then update the
					// own vertex's entry under its fine-grained lock.
					for _, v := range mine {
						ly.ReadAdj(ctx, v)
						ctx.Compute(vertexInstrs)
						sum := 0.0
						for _, nb := range g.Adj[v] {
							ctx.Compute(edgeInstrs)
							ctx.Read(ly.data[nb])
							if d := g.Degree(int(nb)); d > 0 {
								sum += rank[nb] / float64(d)
							}
						}
						ctx.Lock(ly.lock[v])
						next[v] = 0.15/float64(g.N) + 0.85*sum
						ctx.Write(ly.data[v])
						ctx.Unlock(ly.lock[v])
					}
				})
			}
		})
	}
	app.Check = func() error {
		var sum float64
		for _, r := range rank {
			if r < 0 {
				return fmt.Errorf("pr: negative rank %g", r)
			}
			sum += r
		}
		if sum < 0.5 || sum > 1.5 {
			return fmt.Errorf("pr: rank mass %g implausible", sum)
		}
		return nil
	}
	return app
}

// ---- Teenage Followers (locks only, no barriers) ----

func newTF(m *arch.Machine, ly *Layout) *App {
	g := ly.G
	age := func(v int) int { return int(uint64(v)*0x9e3779b9>>7) % 40 }
	count := make([]int32, g.N)
	app := &App{}
	app.Build = func(m *arch.Machine, r *program.Runner) {
		n := m.NumCores()
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				mine := ly.Mine(m, ctx.ID)
				// Count each vertex's teenage followers by scanning its
				// neighborhood, then update the shared counter under the
				// vertex's lock (lock-only app: no barriers, Table 6).
				for _, v := range mine {
					ly.ReadAdj(ctx, v)
					ctx.Compute(vertexInstrs)
					teen := int32(0)
					for _, nb := range g.Adj[v] {
						ctx.Compute(edgeInstrs)
						ctx.Read(ly.data[nb])
						if age(int(nb)) < 20 {
							teen++
						}
					}
					if teen > 0 {
						ctx.Lock(ly.lock[v])
						count[v] += teen
						ctx.Write(ly.data[v])
						ctx.Unlock(ly.lock[v])
					}
				}
			}
		})
	}
	app.Check = func() error {
		for v := 0; v < g.N; v++ {
			want := int32(0)
			for _, nb := range g.Adj[v] {
				if age(int(nb)) < 20 {
					want++
				}
			}
			if count[v] != want {
				return fmt.Errorf("tf: count[%d] = %d, want %d", v, count[v], want)
			}
		}
		return nil
	}
	return app
}

// ---- Triangle Counting ----

func newTC(m *arch.Machine, ly *Layout) *App {
	g := ly.G
	count := make([]int64, g.N)
	bar := m.Alloc(0, 64)
	app := &App{}
	app.Build = func(m *arch.Machine, r *program.Runner) {
		n := m.NumCores()
		r.AddN(n, func(i int) program.Program {
			return func(ctx *program.Ctx) {
				mine := ly.Mine(m, ctx.ID)
				for _, v := range mine {
					ly.ReadAdj(ctx, v)
					ctx.Compute(vertexInstrs)
					tri := int64(0)
					for _, nb := range g.Adj[v] {
						if int(nb) <= v {
							continue
						}
						// Intersect adjacency lists; reads charged on the
						// neighbor's (possibly remote) list.
						ly.ReadAdj(ctx, int(nb))
						ctx.Compute(int64(min(len(g.Adj[v]), len(g.Adj[nb]))) * 2)
						tri += intersect(g.Adj[v], g.Adj[nb])
					}
					if tri > 0 {
						ctx.Lock(ly.lock[v])
						ctx.Read(ly.data[v])
						count[v] += tri
						ctx.Write(ly.data[v])
						ctx.Unlock(ly.lock[v])
					}
				}
				ctx.BarrierAcrossUnits(bar, n)
			}
		})
	}
	app.Check = func() error {
		for v, c := range count {
			if c < 0 {
				return fmt.Errorf("tc: negative count at %d", v)
			}
		}
		return nil
	}
	return app
}

// intersect counts common neighbors (both lists unsorted; use a map).
func intersect(a, b []int32) int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	set := make(map[int32]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	var n int64
	for _, y := range b {
		if set[y] {
			n++
		}
	}
	return n
}
