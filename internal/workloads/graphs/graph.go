// Package graphs implements the paper's graph workloads: the six CRONO /
// Green-Marl push-style applications (bfs, cc, sssp, pr, tf, tc) with
// fine-grained per-vertex locks on the read-write output array and
// across-unit barriers between iterations, running on synthetic power-law
// graphs that stand in for the paper's real inputs (wikipedia-20051105,
// soc-LiveJournal1, sx-stackoverflow, com-Orkut — see DESIGN.md §3 for the
// substitution rationale).
package graphs

import (
	"fmt"

	"syncron/internal/sim"
)

// Graph is an undirected graph in CSR-like adjacency form.
type Graph struct {
	Name string
	N    int
	Adj  [][]int32
	M    int // undirected edge count
}

// Degree returns vertex v's degree.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Inputs lists the paper's graph names in Table-6 order.
func Inputs() []string { return []string{"wk", "sl", "sx", "co"} }

// inputShape holds the synthetic stand-in parameters for each named input.
// Vertices scale with the caller's factor; the attachment parameter and seed
// vary so the four graphs have distinct degree skew, like the real inputs.
type inputShape struct {
	vertices int
	outDeg   int // preferential-attachment edges per new vertex
	seed     uint64
}

var shapes = map[string]inputShape{
	"wk": {vertices: 4000, outDeg: 6, seed: 11},  // wikipedia: high skew
	"sl": {vertices: 6000, outDeg: 9, seed: 22},  // LiveJournal: denser
	"sx": {vertices: 5000, outDeg: 5, seed: 33},  // stackoverflow: sparse, skewed
	"co": {vertices: 3000, outDeg: 25, seed: 44}, // Orkut: dense
}

// Load synthesizes the named input at the given scale (1.0 reproduces the
// default experiment size; tests use smaller scales).
func Load(name string, scale float64) *Graph {
	s, ok := shapes[name]
	if !ok {
		panic(fmt.Sprintf("graphs: unknown input %q", name))
	}
	n := int(float64(s.vertices) * scale)
	if n < 16 {
		n = 16
	}
	return Generate(name, n, s.outDeg, s.seed)
}

// Generate builds a power-law graph with community locality: each new vertex
// attaches outDeg edges, mostly within a sliding window of recent vertices
// (preferring the window's hub vertices, which produces the degree skew of
// real social/web graphs), with a long-range edge fraction. The windowed
// structure means a contiguous vertex partition keeps ~75-80% of edges
// internal — matching the paper's observation that ~24% of pr.wk's accesses
// go to remote NDP units (§6.4.2).
func Generate(name string, n, outDeg int, seed uint64) *Graph {
	rng := sim.NewRNG(seed)
	g := &Graph{Name: name, N: n, Adj: make([][]int32, n)}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		g.Adj[u] = append(g.Adj[u], int32(v))
		g.Adj[v] = append(g.Adj[v], int32(u))
		g.M++
	}
	k := outDeg + 1
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			addEdge(i, j)
		}
	}
	window := n / 16
	if window < 32 {
		window = 32
	}
	const hubSpacing = 16
	for v := k; v < n; v++ {
		for e := 0; e < outDeg; e++ {
			var u int
			switch {
			case rng.Float64() < 0.20:
				u = rng.Intn(v) // long-range edge
			default:
				lo := v - window
				if lo < 0 {
					lo = 0
				}
				u = lo + rng.Intn(v-lo)
				if rng.Float64() < 0.5 {
					// Snap to the neighborhood's hub: every hubSpacing-th
					// vertex accumulates degree (power-law-ish skew).
					u -= u % hubSpacing
				}
			}
			addEdge(u, v)
		}
	}
	return g
}

// Partition assigns each vertex to one of units parts.
type Partition []int

// HashPartition is the default static partitioning: contiguous vertex ranges
// per unit (the paper statically partitions graphs across NDP units). On the
// windowed graphs Generate produces, contiguous ranges are both balanced
// (hubs recur throughout the id space) and locality-preserving.
func HashPartition(g *Graph, units int) Partition {
	p := make(Partition, g.N)
	per := (g.N + units - 1) / units
	for v := range p {
		p[v] = v / per % units
	}
	return p
}

// GreedyPartition is the METIS stand-in used by Figure 19: it starts from
// the contiguous static partition and applies balance-constrained local
// refinement (Kernighan-Lin style single-vertex moves), which monotonically
// reduces crossing edges — the effect Figure 19 studies.
func GreedyPartition(g *Graph, units int) Partition {
	p := HashPartition(g, units)
	counts := make([]int, units)
	for _, u := range p {
		counts[u]++
	}
	limit := (g.N+units-1)/units + g.N/(units*10) + 1
	for pass := 0; pass < 4; pass++ {
		moved := false
		for v := 0; v < g.N; v++ {
			if len(g.Adj[v]) == 0 {
				continue
			}
			var nb [16]int
			for _, w := range g.Adj[v] {
				nb[p[w]]++
			}
			best := p[v]
			for u := 0; u < units; u++ {
				if u == p[v] || counts[u] >= limit {
					continue
				}
				if nb[u] > nb[best] {
					best = u
				}
			}
			if best != p[v] {
				counts[p[v]]--
				counts[best]++
				p[v] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return p
}

// CrossingEdges counts edges whose endpoints land in different parts.
func CrossingEdges(g *Graph, p Partition) int {
	cross := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Adj[u] {
			if u < int(v) && p[u] != p[v] {
				cross++
			}
		}
	}
	return cross
}
