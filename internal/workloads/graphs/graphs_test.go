package graphs_test

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/core"
	"syncron/internal/program"
	"syncron/internal/workloads/graphs"
)

func TestGeneratorShape(t *testing.T) {
	for _, name := range graphs.Inputs() {
		g := graphs.Load(name, 0.1)
		if g.N < 16 {
			t.Fatalf("%s: too few vertices %d", name, g.N)
		}
		// Degree sum must equal 2M.
		sum := 0
		maxDeg := 0
		for v := 0; v < g.N; v++ {
			sum += g.Degree(v)
			if g.Degree(v) > maxDeg {
				maxDeg = g.Degree(v)
			}
		}
		if sum != 2*g.M {
			t.Fatalf("%s: degree sum %d != 2M %d", name, sum, 2*g.M)
		}
		// Power-law-ish: the hub should far exceed the average degree.
		avg := sum / g.N
		if maxDeg < 3*avg {
			t.Errorf("%s: max degree %d not skewed vs avg %d", name, maxDeg, avg)
		}
	}
}

func TestGreedyPartitionReducesCrossings(t *testing.T) {
	g := graphs.Load("wk", 0.2)
	hash := graphs.HashPartition(g, 4)
	greedy := graphs.GreedyPartition(g, 4)
	ch := graphs.CrossingEdges(g, hash)
	cg := graphs.CrossingEdges(g, greedy)
	if cg >= ch {
		t.Errorf("greedy crossings %d not below hash crossings %d", cg, ch)
	}
	// Balance: no part may be empty.
	counts := make([]int, 4)
	for _, p := range greedy {
		counts[p]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("greedy part %d empty", i)
		}
	}
}

func runApp(t *testing.T, app string, mk func() arch.Backend) {
	t.Helper()
	cfg := arch.Default()
	cfg.Units = 2
	cfg.CoresPerUnit = 4
	m := arch.NewMachine(cfg)
	m.Backend = mk()
	g := graphs.Load("wk", 0.05)
	part := graphs.HashPartition(g, cfg.Units)
	ly := graphs.NewLayout(m, g, part)
	a := graphs.NewApp(m, ly, graphs.RunConfig{App: app, Graph: g, Part: part})
	r := program.NewRunner(m)
	a.Build(m, r)
	r.Run()
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAppsAllSchemes(t *testing.T) {
	backends := map[string]func() arch.Backend{
		"syncron": func() arch.Backend { return core.NewSynCron() },
		"ideal":   func() arch.Backend { return baselines.NewIdeal() },
		"central": func() arch.Backend { return baselines.NewCentral() },
		"hier":    func() arch.Backend { return baselines.NewHier() },
	}
	for _, app := range graphs.Apps() {
		for bname, mk := range backends {
			app, bname, mk := app, bname, mk
			t.Run(app+"/"+bname, func(t *testing.T) {
				runApp(t, app, mk)
			})
		}
	}
}

func TestBarrierUsageTable(t *testing.T) {
	if graphs.UsesBarriers("tf") {
		t.Error("tf should not use barriers (Table 6)")
	}
	for _, app := range []string{"bfs", "cc", "sssp", "pr", "tc"} {
		if !graphs.UsesBarriers(app) {
			t.Errorf("%s should use barriers", app)
		}
	}
}
