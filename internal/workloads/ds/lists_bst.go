package ds

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// listNode is a functional sorted-list node.
type listNode struct {
	key  int
	addr uint64
	lock uint64
	next *listNode
}

// linkedList is the hand-over-hand (lock-coupling) sorted linked list
// (Table 6: 20K, 100% lookup): low contention but very high synchronization
// demand — every traversal step acquires a lock, and each core holds two
// locks at once, which is what overflows small STs (§6.7.3).
type linkedList struct {
	head   *listNode
	nkeys  int
	maxKey int
}

func newLinkedList(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	keys := keysSorted(cfg.Size, rng)
	addrs := partitionAlloc(m, cfg.Size, cfg.Units)
	locks := partitionLocks(m, cfg.Size, cfg.Units)
	ll := &linkedList{nkeys: cfg.Size, maxKey: keys[len(keys)-1]}
	var prev *listNode
	for i := len(keys) - 1; i >= 0; i-- {
		prev = &listNode{key: keys[i], addr: addrs[i], lock: locks[i], next: prev}
	}
	ll.head = &listNode{key: -1, addr: addrs[0], lock: locks[0], next: prev}
	return ll
}

func (ll *linkedList) Name() string { return "linkedlist" }

func (ll *linkedList) Op(ctx *program.Ctx, rng *sim.RNG) {
	target := rng.Intn(ll.maxKey + 1)
	// Lock coupling: hold the current node's lock while locking the next.
	cur := ll.head.next
	if cur == nil {
		return
	}
	ctx.Lock(cur.lock)
	ctx.Read(cur.addr)
	for cur.next != nil && cur.key < target {
		next := cur.next
		ctx.Lock(next.lock)
		ctx.Read(next.addr)
		ctx.Unlock(cur.lock)
		cur = next
	}
	ctx.Unlock(cur.lock)
}

func (ll *linkedList) Check() error {
	count, prev := 0, -2
	for n := ll.head.next; n != nil; n = n.next {
		if n.key <= prev {
			return fmt.Errorf("linkedlist: order violation %d after %d", n.key, prev)
		}
		prev = n.key
		count++
	}
	if count != ll.nkeys {
		return fmt.Errorf("linkedlist: %d nodes, want %d", count, ll.nkeys)
	}
	return nil
}

// bstNode is a functional binary-tree node.
type bstNode struct {
	key         int
	addr        uint64
	lock        uint64
	left, right *bstNode
	leaf        bool
	dead        bool
}

// bstFG is the external fine-grained-locking BST of Siakavaras et al.
// (Table 6: 20K, 100% lookup): internal router nodes direct searches to
// leaves; lookups use lock coupling down the tree, so each core holds two
// locks concurrently — the paper's ST-overflow stress case (Figure 23).
type bstFG struct {
	root   *bstNode
	nkeys  int
	maxKey int
}

func buildExternal(keys []int, addrs, locks []uint64, lo, hi int, next *int) *bstNode {
	if lo == hi {
		n := &bstNode{key: keys[lo], addr: addrs[*next], lock: locks[*next], leaf: true}
		*next++
		return n
	}
	mid := (lo + hi) / 2
	n := &bstNode{key: keys[mid], addr: addrs[*next], lock: locks[*next]}
	*next++
	n.left = buildExternal(keys, addrs, locks, lo, mid, next)
	n.right = buildExternal(keys, addrs, locks, mid+1, hi, next)
	return n
}

func newBSTFG(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	keys := keysSorted(cfg.Size, rng)
	// External tree: size leaves + size-1 routers; placed randomly (the
	// paper distributes BSTs randomly across units).
	total := 2*cfg.Size - 1
	addrs := randomAlloc(m, total, cfg.Units, rng)
	locks := randomLocks(m, total, cfg.Units, rng)
	next := 0
	root := buildExternal(keys, addrs, locks, 0, cfg.Size-1, &next)
	return &bstFG{root: root, nkeys: cfg.Size, maxKey: keys[len(keys)-1]}
}

func (t *bstFG) Name() string { return "bst_fg" }

func (t *bstFG) Op(ctx *program.Ctx, rng *sim.RNG) {
	target := rng.Intn(t.maxKey + 1)
	cur := t.root
	ctx.Lock(cur.lock)
	ctx.Read(cur.addr)
	for !cur.leaf {
		next := cur.left
		if target > cur.key {
			next = cur.right
		}
		ctx.Lock(next.lock)
		ctx.Read(next.addr)
		ctx.Unlock(cur.lock)
		cur = next
	}
	ctx.Unlock(cur.lock)
}

func (t *bstFG) Check() error {
	var walk func(n *bstNode, lo, hi int) (int, error)
	walk = func(n *bstNode, lo, hi int) (int, error) {
		if n == nil {
			return 0, nil
		}
		if n.key < lo || n.key > hi {
			return 0, fmt.Errorf("bst_fg: key %d outside [%d,%d]", n.key, lo, hi)
		}
		if n.leaf {
			return 1, nil
		}
		l, err := walk(n.left, lo, n.key)
		if err != nil {
			return 0, err
		}
		r, err := walk(n.right, n.key+1, hi)
		if err != nil {
			return 0, err
		}
		return l + r, nil
	}
	leaves, err := walk(t.root, -1, 1<<30)
	if err != nil {
		return err
	}
	if leaves != t.nkeys {
		return fmt.Errorf("bst_fg: %d leaves, want %d", leaves, t.nkeys)
	}
	return nil
}

// bstDrachsler is the logical-ordering internal BST of Drachsler et al.
// (Table 6: 10K, 100% deletion): searches are lock-free reads; a deletion
// locks only the victim and its parent briefly, so lock requests are a tiny
// fraction of total memory requests and all schemes converge (Figure 11).
type bstDrachsler struct {
	root    *bstNode
	nkeys   int
	maxKey  int
	deleted int
}

func buildInternal(keys []int, addrs, locks []uint64, lo, hi int, next *int) *bstNode {
	if lo > hi {
		return nil
	}
	mid := (lo + hi) / 2
	n := &bstNode{key: keys[mid], addr: addrs[*next], lock: locks[*next]}
	*next++
	n.left = buildInternal(keys, addrs, locks, lo, mid-1, next)
	n.right = buildInternal(keys, addrs, locks, mid+1, hi, next)
	return n
}

func newBSTDrachsler(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	keys := keysSorted(cfg.Size, rng)
	addrs := randomAlloc(m, cfg.Size, cfg.Units, rng)
	locks := randomLocks(m, cfg.Size, cfg.Units, rng)
	next := 0
	root := buildInternal(keys, addrs, locks, 0, cfg.Size-1, &next)
	return &bstDrachsler{root: root, nkeys: cfg.Size, maxKey: keys[len(keys)-1]}
}

func (t *bstDrachsler) Name() string { return "bst_drachsler" }

func (t *bstDrachsler) Op(ctx *program.Ctx, rng *sim.RNG) {
	target := rng.Intn(t.maxKey + 1)
	// Lock-free search (reads only) with parent tracking.
	var parent *bstNode
	cur := t.root
	var found *bstNode
	for cur != nil {
		ctx.Read(cur.addr)
		if cur.key == target {
			found = cur
			break
		}
		parent = cur
		if target < cur.key {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	if found == nil || found.dead {
		return
	}
	// Logical deletion: lock victim (and parent) in address order, mark.
	locks := []uint64{found.lock}
	if parent != nil && parent.lock != found.lock {
		locks = append(locks, parent.lock)
	}
	if len(locks) == 2 && locks[0] > locks[1] {
		locks[0], locks[1] = locks[1], locks[0]
	}
	for _, l := range locks {
		ctx.Lock(l)
	}
	if !found.dead {
		found.dead = true
		t.deleted++
		ctx.Write(found.addr)
	}
	for i := len(locks) - 1; i >= 0; i-- {
		ctx.Unlock(locks[i])
	}
}

func (t *bstDrachsler) Check() error {
	alive := 0
	prev := -2
	var walk func(n *bstNode) error
	walk = func(n *bstNode) error {
		if n == nil {
			return nil
		}
		if err := walk(n.left); err != nil {
			return err
		}
		if n.key <= prev {
			return fmt.Errorf("bst_drachsler: order violation %d after %d", n.key, prev)
		}
		prev = n.key
		if !n.dead {
			alive++
		}
		return walk(n.right)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if alive+t.deleted != t.nkeys {
		return fmt.Errorf("bst_drachsler: %d alive + %d deleted != %d", alive, t.deleted, t.nkeys)
	}
	return nil
}
