// Package ds implements the paper's pointer-chasing workloads (Table 6):
// nine lock-based concurrent data structures used as key-value sets, ported
// from ASCYLIB and RCU-HTM as the paper did. Every structure keeps its nodes
// in simulated shared read-write memory (uncacheable, per the software
// coherence model), so traversals are genuine pointer-chasing DRAM accesses,
// and guards them with synchronization variables serviced by the backend
// under test.
//
// The functional state of each structure is mirrored in host Go data so that
// operations are semantically checked (a pop really pops, a deletion really
// unlinks) while the simulator charges the memory and synchronization costs.
package ds

import (
	"fmt"
	"sort"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// DataStructure is one benchmarkable concurrent data structure.
type DataStructure interface {
	// Name is the Table-6 name.
	Name() string
	// Op performs one operation (the Table-6 mix) on behalf of the calling
	// core's program.
	Op(ctx *program.Ctx, rng *sim.RNG)
	// Check validates functional invariants after a run; it returns an error
	// describing the first violation.
	Check() error
}

// Config scales a data structure.
type Config struct {
	// Size is the initial element count (Table 6 column 2).
	Size int
	// Units the structure is partitioned across.
	Units int
}

// Builder constructs a data structure on machine m.
type Builder func(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure

// Names lists all nine structures in the paper's Figure-11 order.
func Names() []string {
	return []string{"stack", "queue", "arraymap", "priorityqueue", "skiplist",
		"hashtable", "linkedlist", "bst_fg", "bst_drachsler"}
}

// ParallelSafe reports whether a structure's host-side program code is safe
// for per-core event tagging (program.Runner.TagCoreUnits): all shared host
// state must be accessed inside simulated critical sections, because host
// code of different cores may then run concurrently between sync points.
//
// The optimistic structures read shared nodes outside their locks — stack
// (pre-lock top probe), skiplist (unlocked search over next pointers and
// deletion marks), bst_drachsler (lock-free search reading mutable tree
// links) — so they must stay on serial-barrier events.
func ParallelSafe(name string) bool {
	switch name {
	case "stack", "skiplist", "bst_drachsler":
		return false
	default:
		return true
	}
}

// PaperSize returns the Table-6 initial size for a structure.
func PaperSize(name string) int {
	switch name {
	case "stack", "queue":
		return 100_000
	case "arraymap":
		return 10
	case "priorityqueue", "linkedlist", "bst_fg":
		return 20_000
	case "skiplist":
		return 5_000
	case "hashtable":
		return 1_000
	case "bst_drachsler":
		return 10_000
	default:
		panic("ds: unknown structure " + name)
	}
}

// New builds the named structure.
func New(name string, m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	b, ok := builders[name]
	if !ok {
		panic(fmt.Sprintf("ds: unknown data structure %q", name))
	}
	if cfg.Units == 0 {
		cfg.Units = m.Cfg.Units
	}
	if cfg.Size == 0 {
		cfg.Size = PaperSize(name)
	}
	return b(m, cfg, rng)
}

var builders = map[string]Builder{
	"stack":         newStack,
	"queue":         newQueue,
	"arraymap":      newArrayMap,
	"priorityqueue": newPriorityQueue,
	"skiplist":      newSkipList,
	"hashtable":     newHashTable,
	"linkedlist":    newLinkedList,
	"bst_fg":        newBSTFG,
	"bst_drachsler": newBSTDrachsler,
}

// partitionAlloc spreads n shared read-write (uncacheable) lines across
// units in contiguous chunks (the paper's static partitioning).
func partitionAlloc(m *arch.Machine, n, units int) []uint64 {
	if units > m.Cfg.Units {
		units = m.Cfg.Units
	}
	addrs := make([]uint64, n)
	per := (n + units - 1) / units
	for i := 0; i < n; i++ {
		addrs[i] = m.AllocShared(i/per%units, 64)
	}
	return addrs
}

// partitionLocks is partitionAlloc for synchronization variables: cores only
// touch them through the synchronization backend, so they live in the
// cacheable arena (server cores legitimately cache them; SynCron only uses
// the address as identity + home).
func partitionLocks(m *arch.Machine, n, units int) []uint64 {
	if units > m.Cfg.Units {
		units = m.Cfg.Units
	}
	addrs := make([]uint64, n)
	per := (n + units - 1) / units
	for i := 0; i < n; i++ {
		addrs[i] = m.Alloc(i/per%units, 64)
	}
	return addrs
}

// randomAlloc spreads n shared lines across units uniformly at random (the
// paper distributes BSTs randomly).
func randomAlloc(m *arch.Machine, n, units int, rng *sim.RNG) []uint64 {
	if units > m.Cfg.Units {
		units = m.Cfg.Units
	}
	addrs := make([]uint64, n)
	for i := 0; i < n; i++ {
		addrs[i] = m.AllocShared(rng.Intn(units), 64)
	}
	return addrs
}

// randomLocks is randomAlloc for synchronization variables (see
// partitionLocks).
func randomLocks(m *arch.Machine, n, units int, rng *sim.RNG) []uint64 {
	if units > m.Cfg.Units {
		units = m.Cfg.Units
	}
	addrs := make([]uint64, n)
	for i := 0; i < n; i++ {
		addrs[i] = m.Alloc(rng.Intn(units), 64)
	}
	return addrs
}

// keysSorted returns n distinct pseudo-random keys in ascending order.
func keysSorted(n int, rng *sim.RNG) []int {
	seen := make(map[int]bool, n)
	keys := make([]int, 0, n)
	for len(keys) < n {
		k := rng.Intn(n * 8)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}
