package ds

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// stack is the ASCYLIB lock-based stack (Table 6: 100K, 100% push): a singly
// linked list behind one coarse-grained lock — the paper's highest-contention
// structure, since every core fights for the head.
type stack struct {
	lock uint64
	head uint64 // line holding the top pointer

	pool    []uint64 // preallocated node lines for pushes
	nextIdx int
	depth   int // functional state: number of elements
	pushes  int
}

func newStack(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	s := &stack{
		lock:  m.Alloc(0, 64),
		head:  m.AllocShared(0, 64),
		depth: cfg.Size,
	}
	// Nodes pushed during the run are partitioned like the initial body.
	s.pool = partitionAlloc(m, 4096, cfg.Units)
	return s
}

func (s *stack) Name() string { return "stack" }

func (s *stack) Op(ctx *program.Ctx, rng *sim.RNG) {
	node := s.pool[s.nextIdx%len(s.pool)]
	s.nextIdx++
	ctx.Write(node) // fill payload (thread-local prep)
	ctx.Lock(s.lock)
	ctx.Read(s.head)  // old top
	ctx.Write(node)   // node.next = old top
	ctx.Write(s.head) // top = node
	s.depth++
	s.pushes++
	ctx.Unlock(s.lock)
}

func (s *stack) Check() error {
	if s.depth != 100_000 && s.depth <= 0 {
		return fmt.Errorf("stack depth %d implausible", s.depth)
	}
	return nil
}

// queue is the Michael-Scott two-lock queue (Table 6: 100K, 100% pop):
// dequeues serialize on the head lock only.
type queue struct {
	headLock uint64
	head     uint64

	nodes []uint64 // initial body, popped front to back
	next  int
	pops  int
	size  int
}

func newQueue(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	q := &queue{
		headLock: m.Alloc(0, 64),
		head:     m.AllocShared(0, 64),
		size:     cfg.Size,
	}
	n := cfg.Size
	if n > 8192 {
		n = 8192 // only the popped prefix needs real addresses
	}
	q.nodes = partitionAlloc(m, n, cfg.Units)
	return q
}

func (q *queue) Name() string { return "queue" }

func (q *queue) Op(ctx *program.Ctx, rng *sim.RNG) {
	ctx.Lock(q.headLock)
	ctx.Read(q.head) // head pointer
	if q.size > 0 {
		node := q.nodes[q.next%len(q.nodes)]
		q.next++
		ctx.Read(node)    // node payload + next pointer
		ctx.Write(q.head) // advance head
		q.size--
		q.pops++
	}
	ctx.Unlock(q.headLock)
}

func (q *queue) Check() error {
	if q.pops > 0 && q.size < 0 {
		return fmt.Errorf("queue popped past empty: size %d", q.size)
	}
	return nil
}
