package ds_test

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/baselines"
	"syncron/internal/core"
	"syncron/internal/program"
	"syncron/internal/sim"
	"syncron/internal/workloads/ds"
)

// smallSize keeps tests fast while exercising every code path.
func smallSize(name string) int {
	switch name {
	case "arraymap":
		return 10
	case "linkedlist", "bst_fg":
		return 64
	default:
		return 128
	}
}

func runDS(t *testing.T, name string, mkBackend func() arch.Backend, opsPerCore int) ds.DataStructure {
	t.Helper()
	cfg := arch.Default()
	cfg.Units = 2
	cfg.CoresPerUnit = 4
	m := arch.NewMachine(cfg)
	m.Backend = mkBackend()
	rng := sim.NewRNG(42)
	d := ds.New(name, m, ds.Config{Size: smallSize(name)}, rng)
	r := program.NewRunner(m)
	r.AddN(m.NumCores(), func(i int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < opsPerCore; k++ {
				d.Op(ctx, ctx.RNG)
			}
		}
	})
	r.Run()
	return d
}

func TestAllStructuresAllSchemes(t *testing.T) {
	backends := map[string]func() arch.Backend{
		"syncron": func() arch.Backend { return core.NewSynCron() },
		"ideal":   func() arch.Backend { return baselines.NewIdeal() },
		"central": func() arch.Backend { return baselines.NewCentral() },
		"hier":    func() arch.Backend { return baselines.NewHier() },
	}
	for _, name := range ds.Names() {
		for bname, mk := range backends {
			name, bname, mk := name, bname, mk
			t.Run(name+"/"+bname, func(t *testing.T) {
				d := runDS(t, name, mk, 10)
				if err := d.Check(); err != nil {
					t.Fatalf("%s on %s: %v", name, bname, err)
				}
			})
		}
	}
}

func TestPaperSizesKnown(t *testing.T) {
	for _, name := range ds.Names() {
		if ds.PaperSize(name) <= 0 {
			t.Errorf("no paper size for %s", name)
		}
	}
}

func TestStackOverflowWithTinyST(t *testing.T) {
	// The hand-over-hand structures must overflow a tiny ST and still pass
	// their functional checks.
	for _, name := range []string{"linkedlist", "bst_fg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mk := func() arch.Backend {
				return core.NewCoordinator(core.Options{Topology: core.TopoHier, HardwareSE: true, STEntries: 4})
			}
			d := runDS(t, name, mk, 8)
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
