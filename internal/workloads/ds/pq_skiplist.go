package ds

import (
	"fmt"
	"math/bits"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// priorityQueue is the coarse-locked binary min-heap (Table 6: 20K, 100%
// deleteMin): high contention with a log-depth critical section.
type priorityQueue struct {
	lock  uint64
	slots []uint64 // heap array, line per element window
	size  int
	dels  int
}

func newPriorityQueue(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	pq := &priorityQueue{lock: m.Alloc(0, 64), size: cfg.Size}
	// Only the top levels of the heap are touched by sift-down paths; map
	// heap indices onto a bounded set of lines. The heap array is
	// line-interleaved across units (array striping) so the hot top levels
	// do not all land in one unit.
	n := cfg.Size
	if n > 4096 {
		n = 4096
	}
	units := cfg.Units
	if units > m.Cfg.Units {
		units = m.Cfg.Units
	}
	pq.slots = make([]uint64, n)
	for i := range pq.slots {
		pq.slots[i] = m.AllocShared(i%units, 64)
	}
	return pq
}

func (pq *priorityQueue) Name() string { return "priorityqueue" }

func (pq *priorityQueue) slot(i int) uint64 { return pq.slots[i%len(pq.slots)] }

func (pq *priorityQueue) Op(ctx *program.Ctx, rng *sim.RNG) {
	ctx.Lock(pq.lock)
	if pq.size > 1 {
		ctx.Read(pq.slot(0))           // min
		ctx.Read(pq.slot(pq.size - 1)) // last
		ctx.Write(pq.slot(0))          // move last to root
		depth := bits.Len(uint(pq.size)) - 1
		idx := 0
		for d := 0; d < depth; d++ { // sift down
			l, r := 2*idx+1, 2*idx+2
			if l < pq.size {
				ctx.Read(pq.slot(l))
			}
			if r < pq.size {
				ctx.Read(pq.slot(r))
			}
			ctx.Write(pq.slot(idx))
			idx = l
		}
		pq.size--
		pq.dels++
	}
	ctx.Unlock(pq.lock)
}

func (pq *priorityQueue) Check() error {
	if pq.size < 1 {
		return fmt.Errorf("priority queue drained below 1: %d", pq.size)
	}
	return nil
}

// skipNode is one functional skip-list node.
type skipNode struct {
	key    int
	height int
	addr   uint64
	lock   uint64
	next   []*skipNode
	dead   bool
}

// skipList is the fine-grained-locking skip list (Table 6: 5K, 100%
// deletion): medium contention, cores work on different towers.
type skipList struct {
	maxLevel int
	head     *skipNode
	nkeys    int
	deleted  int
}

func newSkipList(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	sl := &skipList{maxLevel: 1}
	for 1<<sl.maxLevel < cfg.Size {
		sl.maxLevel++
	}
	keys := keysSorted(cfg.Size, rng)
	addrs := partitionAlloc(m, cfg.Size, cfg.Units)
	locks := partitionLocks(m, cfg.Size+1, cfg.Units) // +1: head sentinel lock
	sl.head = &skipNode{key: -1, height: sl.maxLevel, lock: locks[cfg.Size],
		next: make([]*skipNode, sl.maxLevel)}
	// Build bottom-up deterministically: node i gets height = trailing
	// zeros of i+1 (a classic deterministic skip-list shape).
	prev := make([]*skipNode, sl.maxLevel)
	for i := range prev {
		prev[i] = sl.head
	}
	for i, k := range keys {
		h := bits.TrailingZeros(uint(i+1))%sl.maxLevel + 1
		n := &skipNode{key: k, height: h, addr: addrs[i], lock: locks[i], next: make([]*skipNode, h)}
		for l := 0; l < h; l++ {
			prev[l].next[l] = n
			prev[l] = n
		}
	}
	sl.nkeys = cfg.Size
	return sl
}

func (sl *skipList) Name() string { return "skiplist" }

func (sl *skipList) Op(ctx *program.Ctx, rng *sim.RNG) {
	target := rng.Intn(sl.nkeys * 8)
	// Search from the top level, reading each visited node.
	preds := make([]*skipNode, sl.maxLevel)
	cur := sl.head
	for l := sl.maxLevel - 1; l >= 0; l-- {
		for cur.next[l] != nil && cur.next[l].key < target {
			cur = cur.next[l]
			ctx.Read(cur.addr)
		}
		preds[l] = cur
	}
	victim := cur.next[0]
	if victim == nil || victim.dead {
		return
	}
	ctx.Read(victim.addr)
	// Lock predecessor and victim (fine-grained deletion), in global address
	// order to stay deadlock-free.
	lo, hi := preds[0].lockAddr(sl), victim.lock
	if lo > hi {
		lo, hi = hi, lo
	}
	ctx.Lock(lo)
	if hi != lo {
		ctx.Lock(hi)
	}
	if !victim.dead {
		// Revalidate predecessors after locking (the search snapshot may be
		// stale — real implementations validate-and-retry; we recompute) and
		// unlink atomically with respect to simulated interleavings, then
		// charge the unlink writes.
		cur := sl.head
		for l := sl.maxLevel - 1; l >= 0; l-- {
			for cur.next[l] != nil && cur.next[l].key < victim.key {
				cur = cur.next[l]
			}
			preds[l] = cur
		}
		victim.dead = true
		unlinked := 0
		for l := 0; l < victim.height; l++ {
			if preds[l].next[l] == victim {
				preds[l].next[l] = victim.next[l]
				unlinked++
			}
		}
		sl.deleted++
		for l := 0; l < unlinked; l++ {
			ctx.Write(preds[l].lockAddr(sl)) // unlink write on pred's line
		}
	}
	if hi != lo {
		ctx.Unlock(hi)
	}
	ctx.Unlock(lo)
}

// lockAddr returns the node's lock line (every node, including the head
// sentinel, owns one).
func (n *skipNode) lockAddr(sl *skipList) uint64 { return n.lock }

func (sl *skipList) Check() error {
	// The level-0 chain must stay sorted and contain no dead nodes.
	prevKey := -1
	alive := 0
	for n := sl.head.next[0]; n != nil; n = n.next[0] {
		if n.dead {
			return fmt.Errorf("skiplist: dead node %d still linked", n.key)
		}
		if n.key <= prevKey {
			return fmt.Errorf("skiplist: order violation %d after %d", n.key, prevKey)
		}
		prevKey = n.key
		alive++
	}
	if alive+sl.deleted != sl.nkeys {
		return fmt.Errorf("skiplist: %d alive + %d deleted != %d", alive, sl.deleted, sl.nkeys)
	}
	return nil
}
