package ds

import (
	"fmt"

	"syncron/internal/arch"
	"syncron/internal/program"
	"syncron/internal/sim"
)

// arrayMap is ASCYLIB's array map (Table 6: 10 elements, 100% lookup): a
// coarse lock around a linear scan — tiny structure, long critical section,
// extreme contention.
type arrayMap struct {
	lock  uint64
	slots []uint64
}

func newArrayMap(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	am := &arrayMap{lock: m.Alloc(0, 64)}
	am.slots = partitionAlloc(m, cfg.Size, 1) // 10 slots live in one unit
	return am
}

func (am *arrayMap) Name() string { return "arraymap" }

func (am *arrayMap) Op(ctx *program.Ctx, rng *sim.RNG) {
	key := rng.Intn(len(am.slots))
	ctx.Lock(am.lock)
	// Linear scan up to the key's slot (uniform average: half the array).
	for i := 0; i <= key; i++ {
		ctx.Read(am.slots[i])
	}
	ctx.Unlock(am.lock)
}

func (am *arrayMap) Check() error { return nil }

// hashTable is the per-bucket-lock hash table (Table 6: 1K, 100% lookup):
// medium contention — cores usually hit different buckets.
type hashTable struct {
	bucketLocks []uint64
	buckets     [][]uint64 // chain node lines per bucket
	keys        int
}

func newHashTable(m *arch.Machine, cfg Config, rng *sim.RNG) DataStructure {
	nbuckets := cfg.Size / 4
	if nbuckets < 4 {
		nbuckets = 4
	}
	ht := &hashTable{keys: cfg.Size}
	ht.bucketLocks = partitionLocks(m, nbuckets, cfg.Units)
	nodes := partitionAlloc(m, cfg.Size, cfg.Units)
	ht.buckets = make([][]uint64, nbuckets)
	for i, n := range nodes {
		b := i % nbuckets
		ht.buckets[b] = append(ht.buckets[b], n)
	}
	return ht
}

func (ht *hashTable) Name() string { return "hashtable" }

func (ht *hashTable) Op(ctx *program.Ctx, rng *sim.RNG) {
	key := rng.Intn(ht.keys)
	b := key % len(ht.buckets)
	ctx.Lock(ht.bucketLocks[b])
	chain := ht.buckets[b]
	// Walk the chain to the key's node.
	steps := key/len(ht.buckets) + 1
	if steps > len(chain) {
		steps = len(chain)
	}
	for i := 0; i < steps; i++ {
		ctx.Read(chain[i])
	}
	ctx.Unlock(ht.bucketLocks[b])
}

func (ht *hashTable) Check() error {
	total := 0
	for _, b := range ht.buckets {
		total += len(b)
	}
	if total != ht.keys {
		return fmt.Errorf("hash table holds %d nodes, want %d", total, ht.keys)
	}
	return nil
}
