package mem

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"syncron/internal/sim"
	"syncron/internal/trace"
)

func techByName(t *testing.T, name string) Tech {
	t.Helper()
	switch name {
	case "HBM":
		return HBM
	case "HMC":
		return HMC
	case "DDR4":
		return DDR4
	}
	t.Fatalf("unknown tech %q", name)
	return 0
}

// TestBankCrossValidation replays the recorded access trace in
// testdata/bank_crossval.csv — whose completion times were computed by hand
// from the BankTimingFor parameters — against the bank model, in the style
// of akita's DRAM timing cross-validation tests.
func TestBankCrossValidation(t *testing.T) {
	f, err := os.Open("testdata/bank_crossval.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	eng := sim.NewEngine()
	mems := map[string]*Memory{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" || strings.HasPrefix(row, "#") {
			continue
		}
		fields := strings.Split(row, ",")
		if len(fields) != 5 {
			t.Fatalf("line %d: want 5 fields, got %q", line, row)
		}
		tech := techByName(t, fields[0])
		issue, err1 := strconv.ParseInt(fields[1], 10, 64)
		addr, err2 := strconv.ParseUint(fields[2], 10, 64)
		wr, err3 := strconv.ParseInt(fields[3], 10, 64)
		want, err4 := strconv.ParseInt(fields[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.Fatalf("line %d: bad numbers in %q", line, row)
		}
		m := mems[fields[0]]
		if m == nil {
			m = NewModel(eng, 0, TimingFor(tech), ModelBank)
			mems[fields[0]] = m
		}
		got := m.Access(sim.Time(issue), addr, wr != 0)
		if got != sim.Time(want) {
			t.Errorf("line %d (%s, t=%d, addr=%d, write=%d): done = %d ps, want %d ps",
				line, fields[0], issue, addr, wr, got, want)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(mems) == 0 {
		t.Fatal("fixture contained no access rows")
	}
}

// TestBankGeometryTable pins the per-tech channel counts (the Table-5
// derivation the DDR4 comment documents) and the bank-model geometry derived
// from them.
func TestBankGeometryTable(t *testing.T) {
	cases := []struct {
		tech     Tech
		channels int
		banks    int
		rowBytes uint64
	}{
		{HBM, 8, 16, 1024},
		{HMC, 32, 8, 256},
		{DDR4, 1, 16, 8192},
	}
	for _, c := range cases {
		ft, bt := TimingFor(c.tech), BankTimingFor(c.tech)
		if ft.Channels != c.channels {
			t.Errorf("%v: channels = %d, want %d", c.tech, ft.Channels, c.channels)
		}
		if bt.Banks != c.banks || bt.RowBytes != c.rowBytes {
			t.Errorf("%v: geometry = %d banks x %d B rows, want %d x %d",
				c.tech, bt.Banks, bt.RowBytes, c.banks, c.rowBytes)
		}
		// Closed-bank miss equals the flat random-access latency, so the two
		// models agree on the uncontended worst case.
		if bt.ActivateLat+bt.ColReadLat != ft.ReadLatency {
			t.Errorf("%v: activate+col read = %v, want flat read %v",
				c.tech, bt.ActivateLat+bt.ColReadLat, ft.ReadLatency)
		}
		if bt.ActivateLat+bt.ColWriteLat != ft.WriteLatency {
			t.Errorf("%v: activate+col write = %v, want flat write %v",
				c.tech, bt.ActivateLat+bt.ColWriteLat, ft.WriteLatency)
		}
		// A clean row-conflict read pays exactly the flat per-access energy.
		e := float64(Line*8) * ft.EnergyPJPerBit
		if got := bt.PrechargePJ + bt.ActivatePJ + bt.ReadPJ; got != e {
			t.Errorf("%v: conflict-read energy = %f pJ, want flat %f", c.tech, got, e)
		}
	}
}

func TestBankRowHitLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := NewModel(eng, 0, TimingFor(HBM), ModelBank)
	bt := m.Bank()
	first := m.Read(0, 0)
	wantFirst := bt.ActivateLat + bt.ColReadLat + m.Timing.ChannelBusy
	if first != wantFirst {
		t.Fatalf("closed-bank read = %v, want %v", first, wantFirst)
	}
	// Issue the same-row access after the bank and bus drained: pure hit.
	second := m.Read(first, Line*uint64(m.Timing.Channels))
	if want := first + bt.ColReadLat + m.Timing.ChannelBusy; second != want {
		t.Fatalf("open-row read = %v, want %v", second, want)
	}
	if hits := m.Stats.RowHits.Value(); hits != 1 {
		t.Fatalf("row hits = %d, want 1", hits)
	}
	if m.RowHitRate() != 0.5 {
		t.Fatalf("row hit rate = %f, want 0.5", m.RowHitRate())
	}
}

// Back-to-back same-row writes: the second write is a row hit (no precharge
// despite the dirty row — dirtiness only costs on a row change) and queues
// behind the first on the bank.
func TestBankBackToBackSameRowWrites(t *testing.T) {
	eng := sim.NewEngine()
	m := NewModel(eng, 0, TimingFor(DDR4), ModelBank)
	bt := m.Bank()
	first := m.Write(0, 0)
	second := m.Write(0, Line)
	bankDoneFirst := first - m.Timing.ChannelBusy
	if want := bankDoneFirst + bt.ColWriteLat + m.Timing.ChannelBusy; second != want {
		t.Fatalf("second same-row write = %v, want %v (hit queued on bank)", second, want)
	}
	if m.Stats.RowHits.Value() != 1 || m.Stats.Precharges.Value() != 0 {
		t.Fatalf("hits=%d precharges=%d, want 1 and 0",
			m.Stats.RowHits.Value(), m.Stats.Precharges.Value())
	}
	// The dirty row now charges write recovery when a conflict closes it.
	conflict := m.Read(second, bt.RowBytes*uint64(bt.Banks)*uint64(m.Timing.Channels))
	wantLat := bt.WriteRecover + bt.PrechargeLat + bt.ActivateLat + bt.ColReadLat
	if want := second + wantLat + m.Timing.ChannelBusy; conflict != want {
		t.Fatalf("dirty-row conflict = %v, want %v", conflict, want)
	}
}

// Row conflict under queue pressure: alternating rows on one bank serialize
// on the bank with a full precharge+activate per access, and every access
// still completes no earlier than issue + its command latency.
func TestBankRowConflictUnderQueuePressure(t *testing.T) {
	eng := sim.NewEngine()
	m := NewModel(eng, 0, TimingFor(HBM), ModelBank)
	bt := m.Bank()
	rowStride := bt.RowBytes * uint64(bt.Banks) * uint64(m.Timing.Channels)
	var prev sim.Time
	for i := 0; i < 16; i++ {
		done := m.Read(0, uint64(i%2)*rowStride) // rows 0,1,0,1,... on bank 0
		if done <= prev {
			t.Fatalf("access %d: done %v not after previous %v", i, done, prev)
		}
		prev = done
	}
	// First access opens the bank; every later one conflicts.
	if hits, misses := m.Stats.RowHits.Value(), m.Stats.RowMisses.Value(); hits != 0 || misses != 16 {
		t.Fatalf("hits=%d misses=%d, want 0 and 16", hits, misses)
	}
	if pre := m.Stats.Precharges.Value(); pre != 15 {
		t.Fatalf("precharges = %d, want 15", pre)
	}
	perConflict := bt.PrechargeLat + bt.ActivateLat + bt.ColReadLat
	if minDone := sim.Time(15)*perConflict + bt.ActivateLat + bt.ColReadLat + m.Timing.ChannelBusy; prev < minDone {
		t.Fatalf("16 conflicting reads done at %v, want >= %v", prev, minDone)
	}
}

// Queue-full backpressure: with a shrunk queue, the (depth+1)-th in-flight
// request is admitted only once the oldest completes.
func TestBankQueueFullBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	bt := BankTimingFor(HBM)
	bt.QueueDepth = 2
	m := NewBank(eng, 0, TimingFor(HBM), bt)
	d1 := m.Read(0, 0)
	m.Read(0, Line*uint64(m.Timing.Channels))
	third := m.Read(0, 2*Line*uint64(m.Timing.Channels))
	// All three issue at t=0 on bank 0; the third must wait for d1.
	if start := third - bt.ColReadLat - m.Timing.ChannelBusy; start < d1 {
		t.Fatalf("third request started at %v, before the oldest completed at %v", start, d1)
	}
	if stalls := m.Stats.QueueStalls.Value(); stalls != 1 {
		t.Fatalf("queue stalls = %d, want 1", stalls)
	}
	// Without pressure no stall is recorded.
	m2 := NewBank(sim.NewEngine(), 0, TimingFor(HBM), bt)
	m2.Read(0, 0)
	m2.Read(100*sim.Nanosecond, 0)
	if m2.Stats.QueueStalls.Value() != 0 {
		t.Fatalf("unexpected stall on drained queue")
	}
}

// Seeded property test: across deterministic mixed access patterns, the flat
// and bank models always agree on total bytes moved, and rank the three
// technologies identically by energy per bit.
func TestFlatBankAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	techs := []Tech{HBM, HMC, DDR4}
	for trial := 0; trial < 50; trial++ {
		n := 64 + rng.Intn(192)
		addrs := make([]uint64, n)
		writes := make([]bool, n)
		base := uint64(rng.Intn(1 << 20))
		stride := uint64(1+rng.Intn(512)) * Line
		for i := range addrs {
			if rng.Intn(3) == 0 { // random far jump
				addrs[i] = uint64(rng.Intn(1 << 26))
			} else { // strided stream
				addrs[i] = base + uint64(i)*stride
			}
			writes[i] = rng.Intn(4) == 0
		}
		perBit := func(model Model) []float64 {
			out := make([]float64, len(techs))
			for ti, tech := range techs {
				m := NewModel(sim.NewEngine(), 0, TimingFor(tech), model)
				now := sim.Time(0)
				for i, a := range addrs {
					m.Access(now, a, writes[i])
					now += sim.Nanosecond
				}
				if got := m.Stats.Accesses() * Line; got != uint64(n)*Line {
					t.Fatalf("trial %d %v/%v: bytes = %d, want %d",
						trial, model, tech, got, uint64(n)*Line)
				}
				out[ti] = m.EnergyPJ() / float64(m.Stats.Accesses()*Line*8)
			}
			return out
		}
		flat, bank := perBit(ModelFlat), perBit(ModelBank)
		if rank(flat) != rank(bank) {
			t.Fatalf("trial %d: energy-per-bit tech ordering diverged: flat %v, bank %v",
				trial, flat, bank)
		}
	}
}

// rank returns the technology order as a string like "0<1<2" (indices sorted
// by ascending value).
func rank(v []float64) string {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = fmt.Sprint(j)
	}
	return strings.Join(parts, "<")
}

// The bank scheduler hot path must not allocate: it runs once per DRAM
// access and the perf gate pins the whole simulator at 0 allocs/event.
func TestBankAccessSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	m := NewModel(eng, 0, TimingFor(HBM), ModelBank)
	now := sim.Time(0)
	addr := uint64(0)
	if avg := testing.AllocsPerRun(2000, func() {
		m.Access(now, addr, addr%3 == 0)
		now += sim.Nanosecond
		addr += 7 * Line
	}); avg != 0 {
		t.Fatalf("bank access allocates %.2f per call in steady state", avg)
	}
}

// Traced bank accesses buffer locally and only FlushTrace emits — including
// the run-total row_hit/row_miss counters — so emission happens on the
// engine goroutine regardless of which unit ran the access.
func TestBankTraceEmission(t *testing.T) {
	eng := sim.NewEngine()
	m := NewModel(eng, 0, TimingFor(HBM), ModelBank)
	col := trace.NewCollector()
	m.SetTracer(col)
	m.Read(0, 0)
	m.Read(0, Line*uint64(m.Timing.Channels))
	if col.Len() != 0 {
		t.Fatalf("accesses emitted %d records before FlushTrace", col.Len())
	}
	m.FlushTrace()
	recs := col.Records()
	var busy, hit, miss int
	for _, r := range recs {
		switch r.What {
		case trace.WhatBankBusy:
			busy++
			if r.Where != "dram.u0" || r.Unit != "bank" {
				t.Fatalf("bad bank_busy record: %+v", r)
			}
		case trace.WhatRowHit:
			hit++
			if r.Value != 1 {
				t.Fatalf("row_hit value = %f, want 1", r.Value)
			}
		case trace.WhatRowMiss:
			miss++
			if r.Value != 1 {
				t.Fatalf("row_miss value = %f, want 1", r.Value)
			}
		}
	}
	if busy != 2 || hit != 1 || miss != 1 {
		t.Fatalf("records = %d bank_busy, %d row_hit, %d row_miss; want 2,1,1", busy, hit, miss)
	}
	// The buffer resets: a second flush emits only fresh counters.
	col.Reset()
	m.FlushTrace()
	for _, r := range col.Records() {
		if r.What == trace.WhatBankBusy {
			t.Fatalf("stale bank_busy span re-emitted after flush")
		}
	}
}

// Under the flat model an attached tracer emits nothing, keeping flat traces
// byte-identical whether or not the memory is wired to the tracer.
func TestFlatModelTracesNothing(t *testing.T) {
	eng := sim.NewEngine()
	m := NewModel(eng, 0, TimingFor(HBM), ModelFlat)
	col := trace.NewCollector()
	m.SetTracer(col)
	m.Read(0, 0)
	m.Write(0, Line)
	m.FlushTrace()
	if col.Len() != 0 {
		t.Fatalf("flat model emitted %d trace records, want 0", col.Len())
	}
	if m.Model() != ModelFlat || NewModel(eng, 0, TimingFor(HBM), "").Model() != ModelFlat {
		t.Fatal("flat/default model identity broken")
	}
}
