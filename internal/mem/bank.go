// Bank/row-buffer DRAM timing model (Model == ModelBank): per-channel banks
// with open-row tracking, a bounded per-bank request queue, and a per-command
// energy split. It refines the flat model of dram.go without replacing it —
// both share the Memory type, the channel interleave, and the blocking
// completion-time Access contract, so the access path through arch is
// identical under either model.
//
// State machine per bank (see ARCHITECTURE.md "internal/mem — memory model"):
//
//	┌────────────┐  activate (tRCD)   ┌───────────────┐
//	│   closed   │ ─────────────────► │ open(row, …)  │◄─┐
//	└────────────┘                    └───────────────┘  │ column
//	      ▲     precharge (tRP,                │  └──────┘ (row hit)
//	      └──── + tWR if dirty) ◄──────────────┘ other row
//	                                              (row conflict)
//
// A row hit pays only the column latency; a closed-bank miss pays activate +
// column; a row conflict pays precharge + activate + column, plus the write
// recovery time when the open row was written since its activate.
package mem

import (
	"fmt"

	"syncron/internal/sim"
	"syncron/internal/trace"
)

// Model selects the DRAM timing model of a Memory.
type Model string

const (
	// ModelFlat is the first-order model of dram.go: every access pays a
	// fixed technology service latency on its interleaved channel. It is the
	// default and is pinned bit-exact by the repository goldens.
	ModelFlat Model = "flat"
	// ModelBank is the bank/row-buffer timing model of this file.
	ModelBank Model = "bank"
)

// Models returns every DRAM timing model in documentation order.
func Models() []Model { return []Model{ModelFlat, ModelBank} }

// rowNone marks a closed (precharged) bank.
const rowNone = -1

// BankTiming holds the bank/row-buffer parameters of one technology. The
// latency fields refine the flat Timing of the same technology: a closed-bank
// miss (activate + column) costs exactly the flat random-access latency, so
// the two models agree on the uncontended worst case and diverge only where
// row locality or bank conflicts exist.
type BankTiming struct {
	Banks      int    // banks per channel
	RowBytes   uint64 // row-buffer (DRAM page) size in bytes
	QueueDepth int    // bounded per-bank request queue (backpressure beyond it)

	ActivateLat  sim.Time // tRCD: activate (row open) to column command
	ColReadLat   sim.Time // CL: column read command to data
	ColWriteLat  sim.Time // CWL(+burst): column write command to completion
	PrechargeLat sim.Time // tRP: precharge (row close) to next activate
	WriteRecover sim.Time // tWR: last write to precharge of a dirty row

	// Per-command energy in picojoules. The split is anchored to the flat
	// model's per-access energy E = Line*8*EnergyPJPerBit: a clean row
	// conflict read (precharge + activate + column read) pays exactly E, a
	// row hit pays only the column share — so the bank model's energy is
	// bounded by the flat model's and rewards row locality.
	ActivatePJ, ReadPJ, WritePJ, PrechargePJ float64
}

// bankEnergySplit is the per-command share of the flat per-access energy.
const (
	activateShare  = 0.45
	columnShare    = 0.40 // read; writes pay the activate share (drivers + restore)
	writeShare     = 0.45
	prechargeShare = 0.15
)

// defaultBankQueueDepth bounds outstanding requests per bank; tests shrink it
// through NewBank to exercise backpressure cheaply.
const defaultBankQueueDepth = 8

// BankTimingFor returns the bank/row-buffer parameters for a technology,
// derived from the same Table-5 numbers as TimingFor:
//
//   - HBM: nRCDR = 7 ns is the activate latency; the remaining 7 ns of the
//     14 ns random read is the column access. tRP ≈ nRP ≈ 7 ns, tWR = 8 ns.
//     16 banks per channel, 1 KB row (HBM pages are small).
//   - HMC: nRCD = 17 ns activate, 8/10 ns column read/write (completing the
//     25/27 ns random access), tRP = nRAS - nRCD = 17 ns, tWR = 19 ns.
//     Vaults have few banks and closed-page-friendly 256 B rows.
//   - DDR4: nRCD = 16 ns activate, 14/16 ns column read/write, tRP ≈ 16 ns,
//     tWR = 18 ns. 16 banks (4 bank groups x 4) and the classic 8 KB row.
func BankTimingFor(t Tech) BankTiming {
	flat := TimingFor(t)
	e := float64(Line*8) * flat.EnergyPJPerBit
	bt := BankTiming{
		QueueDepth:  defaultBankQueueDepth,
		ActivatePJ:  activateShare * e,
		ReadPJ:      columnShare * e,
		WritePJ:     writeShare * e,
		PrechargePJ: prechargeShare * e,
	}
	switch t {
	case HBM:
		bt.Banks, bt.RowBytes = 16, 1024
		bt.ActivateLat = 7 * sim.Nanosecond
		bt.PrechargeLat = 7 * sim.Nanosecond
		bt.WriteRecover = 8 * sim.Nanosecond
	case HMC:
		bt.Banks, bt.RowBytes = 8, 256
		bt.ActivateLat = 17 * sim.Nanosecond
		bt.PrechargeLat = 17 * sim.Nanosecond
		bt.WriteRecover = 19 * sim.Nanosecond
	case DDR4:
		bt.Banks, bt.RowBytes = 16, 8192
		bt.ActivateLat = 16 * sim.Nanosecond
		bt.PrechargeLat = 16 * sim.Nanosecond
		bt.WriteRecover = 18 * sim.Nanosecond
	default:
		panic(fmt.Sprintf("mem: unknown tech %d", int(t)))
	}
	bt.ColReadLat = flat.ReadLatency - bt.ActivateLat
	bt.ColWriteLat = flat.WriteLatency - bt.ActivateLat
	return bt
}

// NewModel returns a memory stack running the given timing model: ModelFlat
// (or "") is New's flat model, ModelBank is NewBank with BankTimingFor's
// technology parameters. Unknown models panic — callers validate user input
// with ParseMemModel-style helpers before reaching this constructor.
func NewModel(eng *sim.Engine, unit int, timing Timing, model Model) *Memory {
	switch model {
	case "", ModelFlat:
		return New(eng, unit, timing)
	case ModelBank:
		return NewBank(eng, unit, timing, BankTimingFor(timing.Tech))
	default:
		panic(fmt.Sprintf("mem: unknown model %q", string(model)))
	}
}

// bankState is one bank's row-buffer state machine plus its bounded request
// queue. All state is part of the owning Memory, so it inherits the Memory's
// engine-unit ownership (ResourceUnit of the stack's NDP unit).
type bankState struct {
	openRow int64      // open row index, or rowNone
	dirty   bool       // the open row was written since its activate
	readyAt sim.Time   // bank/command occupancy horizon
	ring    []sim.Time // completion times of the last QueueDepth requests
	pos     int        // next ring slot; ring[pos] is the oldest completion
}

// NewBank returns a memory stack using the bank/row-buffer model with
// explicit parameters (NewModel uses BankTimingFor's). The per-bank queue
// rings share one backing array, so construction does O(1) allocations and
// the access path does none.
func NewBank(eng *sim.Engine, unit int, timing Timing, bt BankTiming) *Memory {
	if bt.Banks <= 0 || bt.RowBytes < Line || bt.QueueDepth <= 0 {
		panic(fmt.Sprintf("mem: bad bank geometry: %d banks, %d B rows, queue %d",
			bt.Banks, bt.RowBytes, bt.QueueDepth))
	}
	m := New(eng, unit, timing)
	m.bank = &bt
	n := timing.Channels * bt.Banks
	m.banks = make([]bankState, n)
	rings := make([]sim.Time, n*bt.QueueDepth)
	for i := range m.banks {
		m.banks[i].openRow = rowNone
		m.banks[i].ring = rings[i*bt.QueueDepth : (i+1)*bt.QueueDepth : (i+1)*bt.QueueDepth]
	}
	return m
}

// Model returns the DRAM timing model this Memory runs.
func (m *Memory) Model() Model {
	if m.bank != nil {
		return ModelBank
	}
	return ModelFlat
}

// Bank returns the bank parameters, or nil under the flat model.
func (m *Memory) Bank() *BankTiming { return m.bank }

// mapAddr decomposes a line address for the bank model. The low line bits
// interleave channels exactly as the flat model (channelOf), then per-channel
// lines fill a row's columns before moving to the next bank, and banks before
// the next row — so sequential lines enjoy row locality while independent
// regions spread over banks.
func (m *Memory) mapAddr(addr uint64) (ch, bank int, row int64) {
	line := addr / Line
	nch := uint64(len(m.busyTill))
	ch = int(line % nch)
	pc := line / nch // per-channel line index
	lpr := m.bank.RowBytes / Line
	bank = int((pc / lpr) % uint64(m.bank.Banks))
	row = int64(pc / (lpr * uint64(m.bank.Banks)))
	return ch, bank, row
}

// bankAccess is Access under the bank model: FR-FCFS-ish in the sense that a
// request to the open row pays only the column access even when it queues
// behind the bank, while row misses pay the full activate (and precharge)
// penalty. Ordering stays first-come-first-served per bank — callers issue
// blocking accesses, so there is never a younger request to promote past an
// older one; what remains of FR-FCFS is its open-row-first cost model.
func (m *Memory) bankAccess(t sim.Time, addr uint64, write bool) sim.Time {
	bt := m.bank
	ch, bank, row := m.mapAddr(addr)
	bk := &m.banks[ch*bt.Banks+bank]

	// Bounded request queue: the bank accepts a new request only once the
	// request QueueDepth-ago has completed; until then the issuer stalls
	// (backpressure propagates through the blocking access path).
	start := t
	if admit := bk.ring[bk.pos]; admit > start {
		start = admit
		m.Stats.QueueStalls.Inc()
	}
	if bk.readyAt > start {
		start = bk.readyAt
	}

	col := bt.ColReadLat
	if write {
		col = bt.ColWriteLat
	}
	var lat sim.Time
	switch {
	case bk.openRow == row: // row hit: column access only
		lat = col
		m.Stats.RowHits.Inc()
	case bk.openRow == rowNone: // closed bank: activate + column
		lat = bt.ActivateLat + col
		m.Stats.RowMisses.Inc()
		m.Stats.Activates.Inc()
	default: // row conflict: (write recovery +) precharge + activate + column
		lat = bt.PrechargeLat + bt.ActivateLat + col
		if bk.dirty {
			lat += bt.WriteRecover
		}
		m.Stats.RowMisses.Inc()
		m.Stats.Activates.Inc()
		m.Stats.Precharges.Inc()
	}
	if bk.openRow != row {
		bk.dirty = false
	}
	bk.openRow = row
	if write {
		bk.dirty = true
		m.Stats.Writes.Inc()
	} else {
		m.Stats.Reads.Inc()
	}
	bankDone := start + lat
	bk.readyAt = bankDone

	// The 64B burst then serializes on the channel's shared data bus.
	busStart := bankDone
	if m.busyTill[ch] > busStart {
		busStart = m.busyTill[ch]
	}
	done := busStart + m.Timing.ChannelBusy
	m.busyTill[ch] = done

	bk.ring[bk.pos] = done
	bk.pos++
	if bk.pos == len(bk.ring) {
		bk.pos = 0
	}
	if m.tr != nil {
		m.spans = append(m.spans, trace.Record{Start: start, End: done,
			Where: m.where, What: trace.WhatBankBusy,
			Value: float64(ch*bt.Banks + bank), Unit: "bank"})
	}
	return done
}

// EnergyPJ returns the stack's DRAM access energy in picojoules under its
// own model: the flat model prices every access at Line*8*EnergyPJPerBit;
// the bank model prices the commands actually issued, so row locality saves
// activate/precharge energy.
func (m *Memory) EnergyPJ() float64 {
	if m.bank == nil {
		return m.Stats.EnergyPJ(m.Timing)
	}
	bt := m.bank
	return float64(m.Stats.Activates.Value())*bt.ActivatePJ +
		float64(m.Stats.Reads.Value())*bt.ReadPJ +
		float64(m.Stats.Writes.Value())*bt.WritePJ +
		float64(m.Stats.Precharges.Value())*bt.PrechargePJ
}

// RowHitRate returns the fraction of accesses that hit an open row (0 under
// the flat model or before any access).
func (m *Memory) RowHitRate() float64 {
	hits, misses := m.Stats.RowHits.Value(), m.Stats.RowMisses.Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// SetTracer attaches the tracing layer to this stack, pre-interning its
// component label. Access runs inside both serial-barrier events and events
// tagged with the owning ResourceUnit, so it never emits into the shared
// tracer directly: bank_busy records buffer locally (per-Memory state already
// belongs to exactly one engine unit) and FlushTrace drains them on the
// engine goroutine once the run ends. Only the bank model emits; under the
// flat model the tracer is attached but produces nothing, keeping flat traces
// byte-identical with or without this call.
func (m *Memory) SetTracer(tr trace.Tracer) {
	m.tr = tr
	m.where = fmt.Sprintf("dram.u%d", m.Unit)
}

// FlushTrace drains the buffered bank_busy spans and emits the run-total
// row_hit/row_miss counters. Callers (arch.Machine.FlushTrace) invoke it on
// the engine goroutine after the engine drains; it resets the buffer, so one
// Memory can trace several runs.
func (m *Memory) FlushTrace() {
	if m.tr == nil || m.bank == nil {
		return
	}
	for _, r := range m.spans {
		m.tr.Emit(r)
	}
	m.spans = m.spans[:0]
	end := m.eng.Now()
	m.tr.Emit(trace.Record{Start: 0, End: end, Where: m.where,
		What: trace.WhatRowHit, Value: float64(m.Stats.RowHits.Value()), Unit: "accesses"})
	m.tr.Emit(trace.Record{Start: 0, End: end, Where: m.where,
		What: trace.WhatRowMiss, Value: float64(m.Stats.RowMisses.Value()), Unit: "accesses"})
}
