package mem

import (
	"testing"
	"testing/quick"

	"syncron/internal/sim"
)

func TestTimingTable(t *testing.T) {
	hbm, hmc, ddr := TimingFor(HBM), TimingFor(HMC), TimingFor(DDR4)
	if hbm.Channels != 8 || hmc.Channels != 32 || ddr.Channels != 1 {
		t.Fatal("channel counts do not match Table 5 derivation")
	}
	// Latency ordering: HBM < HMC < DDR4 (the Figure 18 premise).
	if !(hbm.ReadLatency < hmc.ReadLatency && hmc.ReadLatency < ddr.ReadLatency) {
		t.Fatalf("latency ordering violated: %v %v %v",
			hbm.ReadLatency, hmc.ReadLatency, ddr.ReadLatency)
	}
	if hbm.EnergyPJPerBit != 7.0 {
		t.Fatalf("HBM energy %f pJ/bit, want 7 (Table 5)", hbm.EnergyPJPerBit)
	}
}

func TestUncontendedLatency(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 0, TimingFor(HBM))
	done := m.Read(0, 0x40)
	if done != TimingFor(HBM).ReadLatency {
		t.Fatalf("uncontended read = %v, want %v", done, TimingFor(HBM).ReadLatency)
	}
}

func TestChannelQueueing(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 0, TimingFor(HBM))
	// Two back-to-back accesses to the same channel: the second queues.
	first := m.Read(0, 0x40)
	second := m.Read(0, 0x40+8*Line*uint64(TimingFor(HBM).Channels)) // same channel
	if second <= first {
		t.Fatalf("same-channel access did not queue: %v then %v", first, second)
	}
	// Different channel: no queueing.
	m2 := New(eng, 0, TimingFor(HBM))
	m2.Read(0, 0x40)
	other := m2.Read(0, 0x40+Line)
	if other != TimingFor(HBM).ReadLatency {
		t.Fatalf("different-channel access queued: %v", other)
	}
}

// Property: completion time is always >= issue time + raw latency, and
// monotonically consistent for same-channel FIFO issue.
func TestAccessLatencyProperty(t *testing.T) {
	if err := quick.Check(func(addrs []uint32, writes []bool) bool {
		eng := sim.NewEngine()
		m := New(eng, 0, TimingFor(HBM))
		now := sim.Time(0)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			lat := m.Timing.ReadLatency
			if w {
				lat = m.Timing.WriteLatency
			}
			done := m.Access(now, uint64(a), w)
			if done < now+lat {
				return false
			}
			now += 2 * sim.Nanosecond
		}
		return m.Stats.Accesses() == uint64(len(addrs))
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyPJ(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, 0, TimingFor(HBM))
	m.Read(0, 0)
	m.Write(0, 64)
	// 2 accesses x 64B x 8b x 7pJ/bit
	want := 2.0 * 64 * 8 * 7
	if got := m.Stats.EnergyPJ(m.Timing); got != want {
		t.Fatalf("energy = %f, want %f", got, want)
	}
}
