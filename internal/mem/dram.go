// Package mem models the per-NDP-unit DRAM: HBM, HMC, and DDR4 technology
// timings (Table 5 of the paper), channel/vault-level queueing, and access
// energy. The model is deliberately first-order — a memory access pays a
// fixed technology-dependent service latency on its (address-interleaved)
// channel, and channels serialize accesses — which captures the latency and
// bandwidth contrasts the paper's sensitivity studies rely on.
package mem

import (
	"fmt"

	"syncron/internal/sim"
	"syncron/internal/trace"
)

// Tech selects a memory technology model.
type Tech int

const (
	// HBM is the 2.5D NDP configuration (default in the paper).
	HBM Tech = iota
	// HMC is the 3D NDP configuration.
	HMC
	// DDR4 is the 2D NDP configuration.
	DDR4
)

func (t Tech) String() string {
	switch t {
	case HBM:
		return "HBM"
	case HMC:
		return "HMC"
	case DDR4:
		return "DDR4"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Timing holds the technology parameters of one memory stack/DIMM.
type Timing struct {
	Tech           Tech
	Channels       int      // parallel channels (HBM) / vaults (HMC) / DIMM channels (DDR4)
	ReadLatency    sim.Time // activation + column read for a random access
	WriteLatency   sim.Time // activation + write recovery
	ChannelBusy    sim.Time // channel occupancy per 64B access (bandwidth model)
	EnergyPJPerBit float64  // access energy
}

// Line is the cache-line/access granularity in bytes.
const Line = 64

// TimingFor returns the Table-5-derived parameters for a technology.
//
// Derivation (per Table 5):
//   - HBM 1.0, 500 MHz, 8 channels: nRCDR/nRCDW/nRAS/nWR = 7/6/17/8 ns.
//     Random read ≈ nRCDR + column access ≈ 7+7 ns; write ≈ 6+8 ns.
//   - HMC 2.1, 1250 MHz, 32 vaults: nRCD/nRAS/nWR = 17/34/19 ns.
//   - DDR4 2400, 4 DIMMs: nRCD/nRAS/nWR = 16/39/18 ns. The paper attaches
//     4 DIMMs to the 2D NDP system, one per NDP unit, and this package
//     models memory per unit — so each unit sees exactly one DIMM on its own
//     dedicated channel, hence Channels = 1 here (the 4 DIMM channels of the
//     whole system are the 4 per-unit Memory instances, not 4 channels inside
//     one Memory). Random read ≈ nRCD + column access ≈ 16+14 ns; write ≈
//     16+16 ns including recovery.
//
// ChannelBusy approximates per-64B occupancy from peak per-channel bandwidth
// (HBM: 16 GB/s/ch → 4 ns; HMC vault: 10 GB/s → 6.4 ns; DDR4: 19.2 GB/s DIMM
// → 3.3 ns but a single channel serves the whole unit).
func TimingFor(t Tech) Timing {
	switch t {
	case HBM:
		return Timing{Tech: t, Channels: 8, ReadLatency: 14 * sim.Nanosecond,
			WriteLatency: 14 * sim.Nanosecond, ChannelBusy: 4 * sim.Nanosecond,
			EnergyPJPerBit: 7.0}
	case HMC:
		return Timing{Tech: t, Channels: 32, ReadLatency: 25 * sim.Nanosecond,
			WriteLatency: 27 * sim.Nanosecond, ChannelBusy: 7 * sim.Nanosecond,
			EnergyPJPerBit: 8.0}
	case DDR4:
		return Timing{Tech: t, Channels: 1, ReadLatency: 30 * sim.Nanosecond,
			WriteLatency: 32 * sim.Nanosecond, ChannelBusy: 4 * sim.Nanosecond,
			EnergyPJPerBit: 20.0}
	default:
		panic(fmt.Sprintf("mem: unknown tech %d", int(t)))
	}
}

// Stats aggregates memory activity for energy and data-movement reporting.
// The row/bank counters stay zero under the flat model.
type Stats struct {
	Reads  sim.Counter
	Writes sim.Counter

	RowHits     sim.Counter // bank model: accesses that hit the open row
	RowMisses   sim.Counter // bank model: closed-bank and row-conflict accesses
	Activates   sim.Counter // bank model: activate commands issued
	Precharges  sim.Counter // bank model: precharge commands issued
	QueueStalls sim.Counter // bank model: accesses delayed by a full bank queue
}

// Accesses returns the total access count.
func (s *Stats) Accesses() uint64 { return s.Reads.Value() + s.Writes.Value() }

// EnergyPJ returns the DRAM access energy in picojoules under timing t.
func (s *Stats) EnergyPJ(t Timing) float64 {
	bits := float64(s.Accesses()) * Line * 8
	return bits * t.EnergyPJPerBit
}

// Memory models one NDP unit's DRAM stack. With New it runs the flat model
// above; with NewBank (or NewModel with ModelBank) the bank/row-buffer model
// of bank.go refines the same channel interleave and blocking Access
// contract.
type Memory struct {
	Unit   int
	Timing Timing
	Stats  Stats

	eng      *sim.Engine
	busyTill []sim.Time // per-channel

	// Bank model state (nil / unused under the flat model); see bank.go.
	bank  *BankTiming
	banks []bankState
	tr    trace.Tracer
	where string
	spans []trace.Record
}

// New returns a memory stack for the given unit.
func New(eng *sim.Engine, unit int, timing Timing) *Memory {
	return &Memory{
		Unit:     unit,
		Timing:   timing,
		eng:      eng,
		busyTill: make([]sim.Time, timing.Channels),
	}
}

// channelOf interleaves 64B lines across channels.
func (m *Memory) channelOf(addr uint64) int {
	return int((addr / Line) % uint64(len(m.busyTill)))
}

// Access issues a read or write of one line starting at time t and returns
// the completion time. Under the flat model channel contention is modelled
// as FIFO occupancy; under the bank model see bankAccess.
func (m *Memory) Access(t sim.Time, addr uint64, write bool) sim.Time {
	if m.bank != nil {
		return m.bankAccess(t, addr, write)
	}
	ch := m.channelOf(addr)
	start := t
	if m.busyTill[ch] > start {
		start = m.busyTill[ch]
	}
	m.busyTill[ch] = start + m.Timing.ChannelBusy
	lat := m.Timing.ReadLatency
	if write {
		lat = m.Timing.WriteLatency
		m.Stats.Writes.Inc()
	} else {
		m.Stats.Reads.Inc()
	}
	return start + lat
}

// Read issues a line read; see Access.
func (m *Memory) Read(t sim.Time, addr uint64) sim.Time { return m.Access(t, addr, false) }

// Write issues a line write; see Access.
func (m *Memory) Write(t sim.Time, addr uint64) sim.Time { return m.Access(t, addr, true) }
