package coherence

import (
	"testing"

	"syncron/internal/arch"
	"syncron/internal/sim"
)

func newSpace() (*Space, *arch.Machine) {
	m := arch.NewMachine(arch.Config{Units: 2, CoresPerUnit: 2})
	return NewSpace(m), m
}

func TestLoadThenHit(t *testing.T) {
	s, m := newSpace()
	a := m.Alloc(0, 64)
	first := s.Access(0, 0, a, Load)
	second := s.Access(first, 0, a, Load) - first
	if second != m.CoreClock.Cycles(4) {
		t.Fatalf("second load = %v, want L1 hit", second)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	s, m := newSpace()
	a := m.Alloc(0, 64)
	tt := s.Access(0, 0, a, Load)
	tt = s.Access(tt, 1, a, Load)
	tt = s.Access(tt, 2, a, Load)
	if s.SharersOf(a) != 3 {
		t.Fatalf("sharers = %d, want 3", s.SharersOf(a))
	}
	s.Access(tt, 3, a, Store)
	if s.SharersOf(a) != 1 {
		t.Fatalf("after store sharers = %d, want 1 (owner)", s.SharersOf(a))
	}
	if s.Invalidations.Value() != 3 {
		t.Fatalf("invalidations = %d, want 3", s.Invalidations.Value())
	}
}

func TestRMWPingPong(t *testing.T) {
	s, m := newSpace()
	a := m.Alloc(0, 64)
	// Alternating RMWs between two cores: every access after the first
	// causes a cache-to-cache transfer.
	tt := s.Access(0, 0, a, RMW)
	tt = s.Access(tt, 1, a, RMW)
	tt = s.Access(tt, 0, a, RMW)
	tt = s.Access(tt, 1, a, RMW)
	if s.Transfers.Value() != 3 {
		t.Fatalf("transfers = %d, want 3", s.Transfers.Value())
	}
	// Repeated RMW by the owner is a hit.
	end := s.Access(tt, 1, a, RMW) - tt
	if end != m.CoreClock.Cycles(4) {
		t.Fatalf("owner RMW = %v, want hit latency", end)
	}
}

func TestCrossUnitTransferSlower(t *testing.T) {
	s, m := newSpace()
	a := m.Alloc(0, 64)
	// Core 0 (unit 0) owns the line.
	tt := s.Access(0, 0, a, RMW)
	// Same-unit transfer (core 1 is also unit 0).
	sameStart := tt
	same := s.Access(sameStart, 1, a, RMW) - sameStart
	// Re-own by core 1, then cross-unit transfer to core 2 (unit 1).
	s2, m2 := newSpace()
	a2 := m2.Alloc(0, 64)
	tt2 := s2.Access(0, 0, a2, RMW)
	cross := s2.Access(tt2, 2, a2, RMW) - tt2
	if cross <= same {
		t.Fatalf("cross-unit coherence transfer (%v) not slower than intra (%v)", cross, same)
	}
}

func TestDirMissFetchesMemory(t *testing.T) {
	s, m := newSpace()
	a := m.Alloc(1, 64)
	s.Access(0, 0, a, Load)
	if s.DirMisses.Value() != 1 {
		t.Fatalf("dir misses = %d, want 1", s.DirMisses.Value())
	}
	if m.Mems[1].Stats.Reads.Value() != 1 {
		t.Fatal("memory fetch did not hit home unit DRAM")
	}
	var _ sim.Time
}
