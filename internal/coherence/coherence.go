// Package coherence models a directory-based MESI protocol layered over the
// NDP interconnect. The paper uses it for motivation only (§2.2): a
// coherence-based lock (mesi-lock) on the simulated NDP system (Figure 2)
// and TTAS / Hierarchical Ticket Lock throughput on a NUMA CPU (Table 1).
// NDP systems do not support hardware coherence; this package exists to
// reproduce why.
package coherence

import (
	"syncron/internal/arch"
	"syncron/internal/network"
	"syncron/internal/sim"
)

// lineState is the directory's view of one cache line.
type lineState struct {
	owner   int          // core with M/E copy, -1 if none
	sharers map[int]bool // cores with S copies
}

// Space is a coherent address space shared by the cores of a machine. It
// tracks which core caches which line and charges directory transactions,
// invalidations, and cache-to-cache transfers on the machine's network.
type Space struct {
	m     *arch.Machine
	lines map[uint64]*lineState

	// Stats.
	Invalidations sim.Counter
	Transfers     sim.Counter // cache-to-cache forwards
	DirMisses     sim.Counter // memory fetches
}

// NewSpace returns a coherent space over machine m.
func NewSpace(m *arch.Machine) *Space {
	return &Space{m: m, lines: make(map[uint64]*lineState)}
}

// AccessKind is the coherence request type.
type AccessKind int

// Coherence request kinds.
const (
	Load AccessKind = iota
	Store
	RMW // atomic read-modify-write (needs exclusive ownership)
)

func (s *Space) line(addr uint64) *lineState {
	l, ok := s.lines[addr/64]
	if !ok {
		l = &lineState{owner: -1, sharers: make(map[int]bool)}
		s.lines[addr/64] = l
	}
	return l
}

// Access performs a coherent access by core at time t and returns the
// completion time. Latency composition:
//   - hit in the right state: L1 hit latency;
//   - otherwise a directory transaction at the line's home unit, possibly
//     forwarding from the current owner and invalidating sharers.
func (s *Space) Access(t sim.Time, core int, addr uint64, kind AccessKind) sim.Time {
	m := s.m
	l := s.line(addr)
	hit := m.CoreClock.Cycles(4)
	exclusive := kind != Load

	// Hit check.
	if l.owner == core {
		return t + hit
	}
	if !exclusive && l.sharers[core] {
		return t + hit
	}

	// Directory transaction at the home unit.
	unit := m.UnitOf(core)
	port := network.PortCore(m.LocalOf(core))
	home := m.HomeUnit(addr)
	dirArr := m.Net.Transfer(t+hit, unit, home, network.PortMemory, arch.MemReqBytes)
	dataAt := dirArr + m.CoreClock.Cycles(6) // directory lookup

	if l.owner >= 0 && l.owner != core {
		// Forward from the owner's cache (cache-to-cache transfer), downgrading
		// or invalidating the owner.
		s.Transfers.Inc()
		oUnit := m.UnitOf(l.owner)
		fwd := m.Net.Transfer(dataAt, home, oUnit, network.PortCore(m.LocalOf(l.owner)), arch.MemReqBytes)
		fwd += m.CoreClock.Cycles(4) // owner L1 access
		dataAt = m.Net.Transfer(fwd, oUnit, home, network.PortMemory, arch.MemDataBytes)
		if exclusive {
			l.owner = -1
		} else {
			l.sharers[l.owner] = true
			l.owner = -1
		}
	} else if l.owner < 0 && len(l.sharers) == 0 {
		// Clean miss: fetch from memory.
		s.DirMisses.Inc()
		dataAt = m.Mems[home].Read(dataAt, addr)
	}

	if exclusive && len(l.sharers) > 0 {
		// Invalidate all sharers; completion waits for the slowest ack.
		ackAt := dataAt
		for sh := range l.sharers {
			if sh == core {
				continue
			}
			s.Invalidations.Inc()
			su := m.UnitOf(sh)
			inv := m.Net.Transfer(dataAt, home, su, network.PortCore(m.LocalOf(sh)), arch.MemReqBytes)
			ack := m.Net.Transfer(inv, su, home, network.PortMemory, arch.MemReqBytes)
			if ack > ackAt {
				ackAt = ack
			}
		}
		dataAt = ackAt
		l.sharers = map[int]bool{}
	}

	// Data back to the requester.
	done := m.Net.Transfer(dataAt, home, unit, port, arch.MemDataBytes)
	if exclusive {
		l.owner = core
	} else {
		l.sharers[core] = true
	}
	return done
}

// SharersOf reports how many cores cache addr (tests).
func (s *Space) SharersOf(addr uint64) int {
	l := s.line(addr)
	n := len(l.sharers)
	if l.owner >= 0 {
		n++
	}
	return n
}
