// Package serve is the sweep-as-a-service subsystem behind `syncron-sim
// serve`: a long-running job daemon that accepts RunSpecs (or whole sweep
// grids) over HTTP and turns the content-addressed result cache from a batch
// convenience into a serving tier.
//
// The design leans on PR 5's invariant that every run is a pure function of
// its SpecKey:
//
//   - cache hits are answered at submit time with zero simulation;
//   - identical in-flight specs are single-flighted — N concurrent requests
//     for the same spec trigger exactly one simulation, whose result fans out
//     to every waiting job;
//   - misses go onto a bounded FIFO queue with all-or-nothing admission: a
//     job either gets every queue slot it needs or is rejected with
//     ErrQueueFull (HTTP 503 + Retry-After), so a traffic spike degrades into
//     fast rejections instead of unbounded memory growth;
//   - a SpecRunner-backed worker pool drains the queue under the server's
//     context, so shutdown and job cancellation propagate as contexts.
//
// Jobs are inspectable (GET /jobs/{id}), streamable (GET /jobs/{id}/events,
// NDJSON or SSE), cancellable (DELETE /jobs/{id}), and deduplicated: the job
// ID is a hash of the resolved SpecKey sequence, so resubmitting identical
// work returns the existing job. See ARCHITECTURE.md "Serving".
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syncron"
)

// Sentinel errors mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull reports that admission would overflow the bounded queue.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining reports that the server no longer accepts work.
	ErrDraining = errors.New("serve: server is draining")
)

// Options configures a Server.
type Options struct {
	// Cache, when non-nil, answers repeat specs without simulation and
	// persists every newly simulated result (the serving memoization tier).
	Cache syncron.ResultCache
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued (admitted but not yet running) runs; above it
	// submissions fail with ErrQueueFull (default 256).
	QueueDepth int
	// RetryAfter is the backoff hint attached to backpressure rejections
	// (default 1s).
	RetryAfter time.Duration
	// MaxJobs bounds retained job records; beyond it the oldest terminal
	// jobs are evicted (default 1024). Live jobs are never evicted.
	MaxJobs int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	return o
}

// taskOwner is one job's claim on a task: the result lands at specs[index].
type taskOwner struct {
	job   *Job
	index int
}

// task is one spec's single-flight execution slot. All fields except key and
// spec are guarded by the server mutex; a task is reachable from the inflight
// map (by key) and the queue (by pop) only.
type task struct {
	key  string
	spec syncron.RunSpec // seed-resolved

	owners  []taskOwner
	active  int  // owners whose job has not been canceled
	running bool // a worker has claimed it

	// ctx is canceled when every owning job has been canceled (while still
	// queued) or the server hard-stops; the worker threads it into
	// SpecRunner.RunContext.
	ctx    context.Context
	cancel context.CancelFunc
}

// Server is the job daemon: scheduler state plus an HTTP facade (Handler).
type Server struct {
	opt   Options
	start time.Time

	// baseCtx is the lifetime of all simulation work; stop cancels it on
	// forced (post-drain-deadline) shutdown.
	baseCtx context.Context
	stop    context.CancelFunc

	queue chan *task // sends only under mu, after a capacity check
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // job IDs in submission order, for listing and eviction
	inflight map[string]*task

	// Metrics counters (see Metrics for meanings).
	jobsSubmitted atomic.Uint64
	jobsDeduped   atomic.Uint64
	jobsRejected  atomic.Uint64
	jobsCanceled  atomic.Uint64
	specsAccepted atomic.Uint64
	specHits      atomic.Uint64
	specShares    atomic.Uint64
	specsSim      atomic.Uint64
	specsFailed   atomic.Uint64
	specsCanceled atomic.Uint64
	simEvents     atomic.Uint64
	inFlight      atomic.Int64
}

// New builds a server and starts its worker pool. Callers must eventually
// call Shutdown.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:      opt,
		start:    time.Now(),
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *task, opt.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*task{},
	}
	for i := 0; i < opt.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit canonicalizes one request into a job. The returned bool is true for
// a newly created job and false when the identical job already existed
// (dedup). Admission is all-or-nothing: on ErrQueueFull nothing was enqueued
// and no job was created.
func (s *Server) Submit(req SubmitRequest) (*Job, bool, error) {
	specs, err := req.expand()
	if err != nil {
		return nil, false, err
	}
	resolved := syncron.ResolveSeeds(specs, req.BaseSeed)
	keys := make([]string, len(resolved))
	for i, spec := range resolved {
		keys[i] = syncron.SpecKey(spec)
	}
	id := jobID(keys)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.jobsRejected.Add(1)
		return nil, false, ErrDraining
	}
	if j, ok := s.jobs[id]; ok && j.Status().State != StateCanceled {
		// Identical work is the same job, whatever its state: callers follow
		// the existing stream or read the finished result. A canceled job is
		// the exception — resubmission means "run it after all", so it is
		// replaced below under the same ID.
		s.jobsDeduped.Add(1)
		return j, false, nil
	}

	// Classify every spec before mutating anything, so admission can reject
	// the whole job atomically.
	type hit struct {
		index int
		res   syncron.RunResult
	}
	var hits []hit
	attach := map[int]*task{}  // index -> existing in-flight task
	newIdx := map[string]int{} // key -> first index needing a new task
	dupOf := map[int]string{}  // index -> key of an earlier in-job duplicate
	var news []int             // indexes needing new tasks, in grid order
	for i, key := range keys {
		if t, ok := s.inflight[key]; ok {
			attach[i] = t
			continue
		}
		if _, ok := newIdx[key]; ok {
			dupOf[i] = key
			continue
		}
		if s.opt.Cache != nil {
			if payload, ok := s.opt.Cache.Get(key); ok {
				if res, err := syncron.DecodeCachedResult(payload); err == nil {
					res.Key = key
					res.Cached = true
					hits = append(hits, hit{index: i, res: res})
					continue
				}
			}
		}
		newIdx[key] = i
		news = append(news, i)
	}
	if len(s.queue)+len(news) > cap(s.queue) {
		s.jobsRejected.Add(1)
		return nil, false, ErrQueueFull
	}

	// Commit: create the job, deliver cache hits, attach to in-flight tasks,
	// and enqueue the misses. Queue sends cannot block: sends only happen
	// here, under mu, after the capacity check above.
	job := newJob(id, resolved, keys, s.baseCtx, time.Now())
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.evictLocked()
	s.jobsSubmitted.Add(1)
	s.specsAccepted.Add(uint64(len(resolved)))
	job.mu.Lock()
	job.appendEventLocked(Event{Type: "submitted", Index: -1})
	job.mu.Unlock()

	created := map[string]*task{}
	for _, idx := range news {
		t := &task{key: keys[idx], spec: resolved[idx]}
		t.ctx, t.cancel = context.WithCancel(s.baseCtx)
		t.owners = []taskOwner{{job: job, index: idx}}
		t.active = 1
		s.inflight[t.key] = t
		created[t.key] = t
		s.queue <- t
	}
	for i, key := range dupOf {
		t := created[key]
		t.owners = append(t.owners, taskOwner{job: job, index: i})
		t.active++
	}
	for i, t := range attach {
		if t.active == 0 && !t.running && t.ctx.Err() != nil {
			// Every previous owner canceled while the task sat in the queue;
			// revive it with a fresh context before the worker pops it.
			t.ctx, t.cancel = context.WithCancel(s.baseCtx)
		}
		t.owners = append(t.owners, taskOwner{job: job, index: i})
		t.active++
		s.specShares.Add(1)
	}
	for _, h := range hits {
		s.specHits.Add(1)
		job.deliver(h.index, h.res)
	}
	return job, true, nil
}

// evictLocked drops the oldest terminal jobs beyond the retention bound.
func (s *Server) evictLocked() {
	if len(s.order) <= s.opt.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.opt.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil {
			if st := j.Status(); st.State == StateDone || st.State == StateCanceled {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every retained job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel cancels a job: every unfinished run is reported as canceled, and
// queued tasks owned solely by this job are canceled via context so workers
// skip them. A simulation already in flight is not preempted (the engine is
// not preemptible); its result still lands in the cache for future requests.
// The second return reports whether the job existed; the first whether this
// call canceled it (false when already terminal).
func (s *Server) Cancel(id string) (bool, bool) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false, false
	}
	if !job.cancelJob() {
		return false, true
	}
	s.jobsCanceled.Add(1)
	s.mu.Lock()
	for _, t := range s.inflight {
		for _, o := range t.owners {
			if o.job == job {
				t.active--
			}
		}
		if t.active <= 0 && !t.running {
			t.cancel()
		}
	}
	s.mu.Unlock()
	s.specsCanceled.Add(uint64(job.Status().Canceled))
	return true, true
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.runTask(t)
	}
}

// runTask executes one single-flight task and fans its result out to every
// owning job. Tasks whose owners all canceled while queued are skipped (their
// jobs already reported the runs as canceled).
func (s *Server) runTask(t *task) {
	s.mu.Lock()
	if t.active <= 0 {
		delete(s.inflight, t.key)
		s.mu.Unlock()
		t.cancel()
		return
	}
	t.running = true
	ctx := t.ctx
	owners := append([]taskOwner(nil), t.owners...)
	s.mu.Unlock()

	for _, o := range owners {
		o.job.runStarted(o.index)
	}
	s.inFlight.Add(1)
	res := syncron.SpecRunner{Workers: 1, Cache: s.opt.Cache}.
		RunContext(ctx, []syncron.RunSpec{t.spec})[0]
	s.inFlight.Add(-1)

	switch {
	case res.Cached:
		s.specHits.Add(1)
	case ctx.Err() != nil && res.Err != "":
		s.specsCanceled.Add(1)
	default:
		s.specsSim.Add(1)
		s.simEvents.Add(res.Events)
		if res.Err != "" {
			s.specsFailed.Add(1)
		}
	}

	s.mu.Lock()
	delete(s.inflight, t.key)
	owners = append(owners[:0], t.owners...) // owners may have grown while running
	s.mu.Unlock()
	t.cancel()
	for _, o := range owners {
		o.job.deliver(o.index, res)
	}
}

// Shutdown drains the server: no new jobs are admitted, queued and running
// work is finished and persisted to the cache, then the workers exit. If ctx
// expires first, the remaining queued runs are canceled via context (reported
// on their jobs as canceled, never dropped) and Shutdown returns ctx.Err()
// without waiting for in-flight simulations, which are not preemptible.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop()
		return ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Metrics is the operational snapshot served at GET /metrics.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	InFlight      int64   `json:"in_flight"`
	Draining      bool    `json:"draining"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsDeduped   uint64 `json:"jobs_deduped"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsActive    int    `json:"jobs_active"`

	SpecsAccepted      uint64 `json:"specs_accepted"`
	CacheHits          uint64 `json:"cache_hits"`
	SingleFlightShares uint64 `json:"single_flight_shares"`
	Simulated          uint64 `json:"simulated"`
	RunsFailed         uint64 `json:"runs_failed"`
	RunsCanceled       uint64 `json:"runs_canceled"`

	// CacheHitRatio is hits / (hits + shares + simulated): the fraction of
	// resolved runs that needed no fresh simulation of their own.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// SimEvents is the total discrete-event count executed by the engine on
	// behalf of this server; EventsPerSec divides it by uptime.
	SimEvents    uint64  `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opt.Workers,
		QueueDepth:    len(s.queue),
		QueueCap:      cap(s.queue),
		InFlight:      s.inFlight.Load(),

		JobsSubmitted: s.jobsSubmitted.Load(),
		JobsDeduped:   s.jobsDeduped.Load(),
		JobsRejected:  s.jobsRejected.Load(),
		JobsCanceled:  s.jobsCanceled.Load(),

		SpecsAccepted:      s.specsAccepted.Load(),
		CacheHits:          s.specHits.Load(),
		SingleFlightShares: s.specShares.Load(),
		Simulated:          s.specsSim.Load(),
		RunsFailed:         s.specsFailed.Load(),
		RunsCanceled:       s.specsCanceled.Load(),
		SimEvents:          s.simEvents.Load(),
	}
	s.mu.Lock()
	m.Draining = s.draining
	for _, j := range s.jobs {
		if st := j.Status(); st.State == StateQueued || st.State == StateRunning {
			m.JobsActive++
		}
	}
	s.mu.Unlock()
	if served := m.CacheHits + m.SingleFlightShares + m.Simulated; served > 0 {
		m.CacheHitRatio = float64(m.CacheHits) / float64(served)
	}
	if m.UptimeSeconds > 0 {
		m.EventsPerSec = float64(m.SimEvents) / m.UptimeSeconds
	}
	return m
}
