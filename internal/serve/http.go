package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"syncron"
)

// maxRequestBytes bounds a submission body; the largest legitimate grids are
// a few hundred KB of JSON.
const maxRequestBytes = 8 << 20

// Handler returns the server's HTTP API:
//
//	POST   /jobs              submit specs or a sweep grid (202; 200 on dedup;
//	                          503 + Retry-After under backpressure)
//	GET    /jobs              list retained jobs
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/events  progress stream (NDJSON; SSE with
//	                          Accept: text/event-stream; ?from=N resumes)
//	GET    /jobs/{id}/result  results, byte-identical to the batch CLI
//	DELETE /jobs/{id}         cancel
//	GET    /healthz           liveness (503 while draining)
//	GET    /metrics           operational counters
//	GET    /version           build info + SpecKey version
//	GET    /workloads         registered workload names by kind
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /workloads", s.handleWorkloads)
	return mux
}

// writeJSON emits one JSON document. Encoding errors past the header are
// unrecoverable mid-response and are deliberately dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.opt.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	job, created, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, job.Status())
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, writing a 404 on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	canceled, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	j, _ := s.Job(id)
	st := j.Status()
	if !canceled && st.State != StateCanceled {
		// Already finished: nothing to cancel, but the outcome is unambiguous.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult renders a terminal job's results with syncron.WriteJSON — the
// exact bytes `syncron-sim run -json` / `sweep -json` emit for the same
// specs, which is what lets CI diff the serve path against the batch path.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	results, terminal := j.Results()
	if !terminal {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusConflict, j.Status())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = syncron.WriteJSON(w, results)
}

// handleEvents streams the job's event log from ?from=N (default 0): history
// first, then live appends until the job is terminal or the client leaves.
// Framing is NDJSON unless the client asks for text/event-stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from cursor %q", v)
			return
		}
		from = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		events, terminal, changed := j.next(from)
		for _, e := range events {
			raw, err := json.Marshal(e)
			if err != nil {
				return // cannot happen for Event; bail rather than corrupt the stream
			}
			if sse {
				_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, raw)
			} else {
				_, _ = w.Write(append(raw, '\n'))
			}
		}
		from += len(events)
		if len(events) > 0 {
			flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleVersion reports build identity plus the SpecKey version, so clients
// can tell whether their locally computed keys (and caches) are compatible
// with this server. It is the same information `syncron-sim cache-version`
// prints — both read syncron.Version().
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, syncron.Version())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	out := map[string][]string{}
	for _, kind := range syncron.Kinds() {
		out[string(kind)] = syncron.WorkloadNamesOfKind(kind)
	}
	writeJSON(w, http.StatusOK, out)
}
