package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"syncron"
)

// gateWorkload is a controllable test workload: every Prepare call increments
// prepared, signals entered (if set), and blocks on gate (if set) before
// registering a trivial one-core program. It lets tests hold a worker inside
// a simulation deterministically.
type gateWorkload struct {
	name     string
	prepared *atomic.Int32
	entered  chan struct{} // buffered; receives one token per Prepare call
	gate     chan struct{} // Prepare blocks until closed (nil = no blocking)
}

func (w *gateWorkload) Name() string               { return w.name }
func (w *gateWorkload) Kind() syncron.WorkloadKind { return "test" }
func (w *gateWorkload) Prepare(sys *syncron.System, _ syncron.WorkloadParams) (*syncron.PreparedRun, error) {
	w.prepared.Add(1)
	if w.entered != nil {
		w.entered <- struct{}{}
	}
	if w.gate != nil {
		<-w.gate
	}
	sys.Spawn(1, func(ctx *syncron.Context) { ctx.Compute(100) })
	return &syncron.PreparedRun{Ops: 1}, nil
}

var registerOnce sync.Map

func register(w syncron.Workload) {
	if _, loaded := registerOnce.LoadOrStore(w.Name(), true); !loaded {
		syncron.RegisterWorkload(w)
	}
}

// tinySpec is a fast real-workload spec (a few ms of simulation).
func tinySpec(seed uint64) syncron.RunSpec {
	return syncron.RunSpec{
		Workload: "stack",
		Config:   syncron.Config{Units: 2, CoresPerUnit: 2, Seed: seed},
		Params:   syncron.WorkloadParams{Scale: 0.05, OpsPerCore: 4},
	}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs
}

func submit(t *testing.T, baseURL string, req SubmitRequest) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

func getStatus(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func waitState(t *testing.T, baseURL, id string, want ...string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, baseURL, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %v", id, want)
	return JobStatus{}
}

// TestSubmitStreamResult drives the full happy path over real HTTP: submit,
// follow the NDJSON progress stream to job_done, then fetch the result and
// check it is byte-identical to the batch path (SpecRunner on the same spec).
func TestSubmitStreamResult(t *testing.T) {
	cache, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Options{Workers: 2, QueueDepth: 16, Cache: cache})

	spec := tinySpec(0) // zero seed: exercises serve-side seed resolution
	st, resp := submit(t, hs.URL, SubmitRequest{Specs: []syncron.RunSpec{spec}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.Total != 1 {
		t.Fatalf("total = %d, want 1", st.Total)
	}

	// Follow the event stream to completion.
	stream, err := http.Get(hs.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types = append(types, e.Type)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "submitted") || !strings.Contains(joined, "run_done") ||
		!strings.HasSuffix(joined, "job_done") {
		t.Fatalf("event stream %v missing lifecycle events", types)
	}

	// The served result must be byte-identical to the batch CLI's for the
	// same request.
	res, err := http.Get(hs.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", res.StatusCode)
	}
	served, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := syncron.WriteJSON(&want, syncron.SpecRunner{}.Run([]syncron.RunSpec{spec})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("served result differs from batch result:\nserved: %s\nbatch:  %s", served, want.Bytes())
	}
}

// TestSingleFlight pins the core dedup contract: two jobs naming the same
// in-flight spec trigger exactly one simulation, whose result fans out to
// both; and an identical resubmission is the same job (no new work at all).
func TestSingleFlight(t *testing.T) {
	w := &gateWorkload{
		name:     "test.serve.sf",
		prepared: &atomic.Int32{},
		entered:  make(chan struct{}, 8),
		gate:     make(chan struct{}),
	}
	register(w)
	_, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 16})

	shared := syncron.RunSpec{Workload: w.name, Config: syncron.Config{Units: 1, CoresPerUnit: 1, Seed: 3}}
	a, resp := submit(t, hs.URL, SubmitRequest{Specs: []syncron.RunSpec{shared}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A = %d, want 202", resp.StatusCode)
	}
	<-w.entered // the worker is now inside the shared spec's simulation

	// Identical submission: same job, not a new one.
	aDup, resp := submit(t, hs.URL, SubmitRequest{Specs: []syncron.RunSpec{shared}})
	if resp.StatusCode != http.StatusOK || aDup.ID != a.ID {
		t.Fatalf("duplicate submission = %d job %s, want 200 job %s", resp.StatusCode, aDup.ID, a.ID)
	}

	// A different job naming the same spec must attach to the in-flight run.
	b, resp := submit(t, hs.URL, SubmitRequest{
		Specs: []syncron.RunSpec{shared, tinySpec(5)},
	})
	if resp.StatusCode != http.StatusAccepted || b.ID == a.ID {
		t.Fatalf("job B = %d id %s (A is %s), want a distinct 202", resp.StatusCode, b.ID, a.ID)
	}

	close(w.gate)
	waitState(t, hs.URL, a.ID, StateDone)
	waitState(t, hs.URL, b.ID, StateDone)
	if got := w.prepared.Load(); got != 1 {
		t.Fatalf("shared spec simulated %d times, want 1 (single-flight)", got)
	}

	var m Metrics
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SingleFlightShares == 0 {
		t.Fatalf("metrics report no single-flight shares: %+v", m)
	}
	if m.JobsDeduped != 1 {
		t.Fatalf("metrics deduped = %d, want 1", m.JobsDeduped)
	}
}

// TestWarmResubmissionZeroSimulation restarts the server on the same cache
// directory and checks a warm submission completes at admission time without
// simulating anything.
func TestWarmResubmissionZeroSimulation(t *testing.T) {
	w := &gateWorkload{name: "test.serve.warm", prepared: &atomic.Int32{}}
	register(w)
	dir := t.TempDir()
	spec := syncron.RunSpec{Workload: w.name, Config: syncron.Config{Units: 1, CoresPerUnit: 1, Seed: 9}}

	cache1, err := syncron.DirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Workers: 1, QueueDepth: 4, Cache: cache1})
	job, created, err := s1.Submit(SubmitRequest{Specs: []syncron.RunSpec{spec}})
	if err != nil || !created {
		t.Fatalf("cold submit: created=%v err=%v", created, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := job.Status(); st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cold job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := w.prepared.Load(); got != 1 {
		t.Fatalf("cold run simulated %d times, want 1", got)
	}

	// Fresh server, same cache: the submission must be done on arrival.
	cache2, err := syncron.DirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Cache: cache2})
	st, resp := submit(t, hs.URL, SubmitRequest{Specs: []syncron.RunSpec{spec}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("warm submit = %d, want 202", resp.StatusCode)
	}
	if st.State != StateDone || st.CacheHits != 1 {
		t.Fatalf("warm submission not served from cache: %+v", st)
	}
	if got := w.prepared.Load(); got != 1 {
		t.Fatalf("warm resubmission simulated (prepared=%d)", got)
	}
	if m := s2.Metrics(); m.Simulated != 0 || m.CacheHits != 1 {
		t.Fatalf("warm metrics: %+v", m)
	}
}

// TestQueueFullBackpressure fills the 1-slot queue behind a blocked worker
// and checks saturation is rejected with 503 + Retry-After, atomically (the
// rejected job leaves no state behind), and that capacity frees up again.
func TestQueueFullBackpressure(t *testing.T) {
	w := &gateWorkload{
		name:     "test.serve.bp",
		prepared: &atomic.Int32{},
		entered:  make(chan struct{}, 8),
		gate:     make(chan struct{}),
	}
	register(w)
	_, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 1})

	mk := func(seed uint64) SubmitRequest {
		return SubmitRequest{Specs: []syncron.RunSpec{{
			Workload: w.name,
			Config:   syncron.Config{Units: 1, CoresPerUnit: 1, Seed: seed},
		}}}
	}
	a, resp := submit(t, hs.URL, mk(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A = %d", resp.StatusCode)
	}
	<-w.entered // worker busy; the queue is now empty
	b, resp := submit(t, hs.URL, mk(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B = %d", resp.StatusCode)
	}
	_, resp = submit(t, hs.URL, mk(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 carries no Retry-After header")
	}

	close(w.gate)
	waitState(t, hs.URL, a.ID, StateDone)
	waitState(t, hs.URL, b.ID, StateDone)
	// Capacity must be available again after the drain.
	d, resp := submit(t, hs.URL, mk(4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit = %d, want 202", resp.StatusCode)
	}
	waitState(t, hs.URL, d.ID, StateDone)
}

// TestCancelReportsPendingRuns cancels a job whose first run is in flight and
// whose second is queued: both must be REPORTED as canceled (not dropped),
// the job must reach the canceled state, and the result endpoint must serve
// the canceled results.
func TestCancelReportsPendingRuns(t *testing.T) {
	w := &gateWorkload{
		name:     "test.serve.cancel",
		prepared: &atomic.Int32{},
		entered:  make(chan struct{}, 8),
		gate:     make(chan struct{}),
	}
	register(w)
	_, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	req := SubmitRequest{Specs: []syncron.RunSpec{
		{Workload: w.name, Config: syncron.Config{Units: 1, CoresPerUnit: 1, Seed: 11}},
		{Workload: w.name, Config: syncron.Config{Units: 1, CoresPerUnit: 1, Seed: 12}},
	}}
	st, resp := submit(t, hs.URL, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	<-w.entered // run 0 is in flight, run 1 queued

	del, err := http.NewRequest(http.MethodDelete, hs.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", dresp.StatusCode)
	}
	close(w.gate) // let the in-flight simulation finish in the background

	final := waitState(t, hs.URL, st.ID, StateCanceled)
	if final.Canceled != 2 || final.Completed != 2 {
		t.Fatalf("canceled job status %+v, want both runs reported canceled", final)
	}
	rres, err := http.Get(hs.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rres.Body.Close()
	var results []syncron.RunResult
	if err := json.NewDecoder(rres.Body).Decode(&results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("canceled job served %d results, want 2", len(results))
	}
	for i, r := range results {
		if !strings.Contains(r.Err, "canceled") {
			t.Fatalf("result %d not reported canceled: %+v", i, r)
		}
	}
}

// TestSubmitValidation pins the 400 surface: unknown workloads, empty jobs,
// and both-specs-and-sweep requests are rejected before touching the queue.
func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	for name, req := range map[string]SubmitRequest{
		"empty":    {},
		"unknown":  {Specs: []syncron.RunSpec{{Workload: "no.such"}}},
		"both":     {Specs: []syncron.RunSpec{tinySpec(1)}, Sweep: &SweepGrid{Workloads: []string{"stack"}}},
		"badtopo":  {Specs: []syncron.RunSpec{{Workload: "stack", Config: syncron.Config{Topology: "moebius"}}}},
		"toolarge": {Sweep: &SweepGrid{Workloads: []string{"stack"}, Units: manyUnits(maxJobSpecs + 1)}},
	} {
		_, resp := submit(t, hs.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func manyUnits(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// TestSweepGridSubmission submits a grid (not explicit specs) and checks it
// expands exactly like syncron.Sweep does in the batch path.
func TestSweepGridSubmission(t *testing.T) {
	cache, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Options{Workers: 4, QueueDepth: 32, Cache: cache})
	grid := &SweepGrid{
		Workloads: []string{"stack", "lock"},
		Schemes:   []syncron.Scheme{syncron.SchemeSynCron, syncron.SchemeCentral},
		Base:      syncron.Config{Units: 2, CoresPerUnit: 2},
		Params:    syncron.WorkloadParams{Scale: 0.05, OpsPerCore: 4, Rounds: 4},
	}
	st, resp := submit(t, hs.URL, SubmitRequest{Sweep: grid, BaseSeed: 7})
	if resp.StatusCode != http.StatusAccepted || st.Total != 4 {
		t.Fatalf("grid submit = %d total %d, want 202 and 4 runs", resp.StatusCode, st.Total)
	}
	waitState(t, hs.URL, st.ID, StateDone)

	res, err := http.Get(hs.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	served, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	batch := syncron.Sweep{
		Workloads: grid.Workloads,
		Schemes:   grid.Schemes,
		Base:      grid.Base,
		Params:    grid.Params,
		BaseSeed:  7,
	}.Run()
	var want bytes.Buffer
	if err := syncron.WriteJSON(&want, batch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("grid result differs from batch sweep:\nserved: %s\nbatch:  %s", served, want.Bytes())
	}
}

// TestVersionEndpoint checks /version reports the SpecKey version clients
// need for cache-compatibility decisions.
func TestVersionEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	resp, err := http.Get(hs.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v syncron.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.SpecKeyVersion != syncron.SpecKeyVersion {
		t.Fatalf("spec_key_version = %d, want %d", v.SpecKeyVersion, syncron.SpecKeyVersion)
	}
	if want := fmt.Sprintf("v%d", syncron.SpecKeyVersion); v.CacheVersion != want {
		t.Fatalf("cache_version = %q, want %q", v.CacheVersion, want)
	}
}

// TestDrainRejectsAndHealthzFlips: during shutdown the server reports
// draining on /healthz and rejects submissions with 503.
func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	_, sresp := submit(t, hs.URL, SubmitRequest{Specs: []syncron.RunSpec{tinySpec(1)}})
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", sresp.StatusCode)
	}
	if ra := sresp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}
}

// TestSSEFraming checks the Accept-negotiated SSE framing of the event
// stream.
func TestSSEFraming(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	st, resp := submit(t, hs.URL, SubmitRequest{Specs: []syncron.RunSpec{tinySpec(21)}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitState(t, hs.URL, st.ID, StateDone)

	req, err := http.NewRequest(http.MethodGet, hs.URL+"/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content-type = %q", ct)
	}
	body, err := io.ReadAll(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "event: job_done\ndata: ") {
		t.Fatalf("SSE framing missing: %q", body)
	}
}
