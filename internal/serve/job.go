package serve

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"time"

	"syncron"
)

// SubmitRequest is the body of POST /jobs: either an explicit spec list or a
// sweep grid (exactly one of the two). BaseSeed anchors deterministic per-run
// seed derivation for zero-seed specs, exactly as Sweep.BaseSeed does in the
// batch CLI — so the same request always canonicalizes to the same SpecKeys,
// which is what makes job-level dedup and cross-job single-flight work.
type SubmitRequest struct {
	Specs    []syncron.RunSpec `json:"specs,omitempty"`
	Sweep    *SweepGrid        `json:"sweep,omitempty"`
	BaseSeed uint64            `json:"base_seed,omitempty"`
}

// SweepGrid mirrors the grid axes of syncron.Sweep in a JSON-friendly shape
// (no execution-policy fields: workers, cache, and sharding are the server's
// business, not the client's).
type SweepGrid struct {
	Workloads     []string               `json:"workloads"`
	Schemes       []syncron.Scheme       `json:"schemes,omitempty"`
	Units         []int                  `json:"units,omitempty"`
	Topologies    []syncron.Topology     `json:"topologies,omitempty"`
	Memories      []syncron.MemoryTech   `json:"memories,omitempty"`
	LinkLatencies []syncron.Time         `json:"link_latencies_ps,omitempty"`
	STEntries     []int                  `json:"st_entries,omitempty"`
	Base          syncron.Config         `json:"base,omitempty"`
	Params        syncron.WorkloadParams `json:"params,omitempty"`
}

// maxJobSpecs bounds one job's grid so a single request cannot exhaust
// memory; it is deliberately far above the full figures grid.
const maxJobSpecs = 4096

// expand canonicalizes the request into its spec list, validating every
// workload name. The returned specs are NOT yet seed-resolved.
func (req SubmitRequest) expand() ([]syncron.RunSpec, error) {
	if len(req.Specs) > 0 && req.Sweep != nil {
		return nil, fmt.Errorf("request names both specs and a sweep grid; use one")
	}
	specs := req.Specs
	if req.Sweep != nil {
		g := req.Sweep
		specs = syncron.Sweep{
			Workloads:     g.Workloads,
			Schemes:       g.Schemes,
			Units:         g.Units,
			Topologies:    g.Topologies,
			Memories:      g.Memories,
			LinkLatencies: g.LinkLatencies,
			STEntries:     g.STEntries,
			Base:          g.Base,
			Params:        g.Params,
		}.Expand()
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty job: request needs specs or a sweep grid")
	}
	if len(specs) > maxJobSpecs {
		return nil, fmt.Errorf("job expands to %d runs (limit %d); split it", len(specs), maxJobSpecs)
	}
	for _, spec := range specs {
		if _, ok := syncron.LookupWorkload(spec.Workload); !ok {
			return nil, fmt.Errorf("unknown workload %q (GET /workloads is `syncron-sim list`)", spec.Workload)
		}
		if _, err := syncron.ParseTopology(string(spec.Config.Topology)); err != nil {
			return nil, fmt.Errorf("spec %q: %v", spec.Workload, err)
		}
	}
	return specs, nil
}

// jobID derives the deterministic job identity from the resolved SpecKey
// sequence: resubmitting the same canonical work is the same job.
func jobID(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("j-%x", h.Sum(nil)[:8])
}

// Job states. The lifecycle is queued -> running -> done, with canceled
// reachable from either non-terminal state; done and canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
)

// Event is one line of a job's progress stream (NDJSON or SSE data payload).
// Index is the run's grid index for run-level events and -1 for job-level
// events; Completed/Total snapshot overall progress at emission time.
type Event struct {
	Seq       int    `json:"seq"`
	TS        string `json:"ts"`
	Type      string `json:"type"` // submitted | run_start | run_done | job_done | job_canceled
	Index     int    `json:"index"`
	Key       string `json:"key,omitempty"`
	Workload  string `json:"workload,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Err       string `json:"error,omitempty"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	State     string `json:"state"`
}

// JobStatus is the wire form of a job's current state (GET /jobs/{id}).
type JobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	CreatedAt string `json:"created_at"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	CacheHits int    `json:"cache_hits"`
	Failed    int    `json:"failed"`
	Canceled  int    `json:"canceled"`
	Events    int    `json:"events"`
}

// Job is one submitted unit of work: an ordered list of seed-resolved specs,
// their (arriving) results, and an append-only event log that any number of
// streaming subscribers can follow.
type Job struct {
	id        string
	createdAt time.Time
	specs     []syncron.RunSpec // seed-resolved
	keys      []string

	// ctx is canceled when the job is canceled (or the server hard-stops);
	// the scheduler threads it into SpecRunner.RunContext for solely-owned
	// tasks so cancellation propagates as a context, not a flag.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	results   []syncron.RunResult
	done      []bool
	completed int
	cacheHits int
	failed    int
	canceled  int
	events    []Event
	changed   chan struct{} // closed and replaced on every event append
}

func newJob(id string, specs []syncron.RunSpec, keys []string, base context.Context, now time.Time) *Job {
	ctx, cancel := context.WithCancel(base)
	return &Job{
		id:        id,
		createdAt: now,
		specs:     specs,
		keys:      keys,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		results:   make([]syncron.RunResult, len(specs)),
		done:      make([]bool, len(specs)),
		changed:   make(chan struct{}),
	}
}

// appendEventLocked records an event and wakes every stream subscriber.
// Callers hold j.mu.
func (j *Job) appendEventLocked(e Event) {
	e.Seq = len(j.events)
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	e.Completed = j.completed
	e.Total = len(j.specs)
	e.State = j.state
	j.events = append(j.events, e)
	close(j.changed)
	j.changed = make(chan struct{})
}

// terminalLocked reports whether the job can gain no further events.
func (j *Job) terminalLocked() bool {
	return j.state == StateDone || j.state == StateCanceled
}

// runStarted emits a run_start event unless the run already completed (a
// cache hit delivered at submit time) or the job is no longer live.
func (j *Job) runStarted(idx int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() || j.done[idx] {
		return
	}
	if j.state == StateQueued {
		j.state = StateRunning
	}
	spec := j.specs[idx]
	j.appendEventLocked(Event{
		Type:     "run_start",
		Index:    idx,
		Key:      j.keys[idx],
		Workload: spec.Workload,
		Scheme:   string(spec.Config.Scheme),
	})
}

// deliver records one run's result. Late deliveries onto an index that was
// already resolved (job canceled, or a duplicate in-job spec) are dropped —
// first writer wins. Returns true when the delivery was recorded.
func (j *Job) deliver(idx int, res syncron.RunResult) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[idx] {
		return false
	}
	res.GridIndex = idx
	j.results[idx] = res
	j.done[idx] = true
	j.completed++
	if res.Cached {
		j.cacheHits++
	}
	if res.Err != "" {
		j.failed++
	}
	if j.state == StateQueued {
		j.state = StateRunning
	}
	if j.completed == len(j.specs) && j.state != StateCanceled {
		j.state = StateDone
	}
	j.appendEventLocked(Event{
		Type:     "run_done",
		Index:    idx,
		Key:      j.keys[idx],
		Workload: res.Spec.Workload,
		Scheme:   string(res.Spec.Config.Scheme),
		Cached:   res.Cached,
		Err:      res.Err,
	})
	if j.state == StateDone {
		j.appendEventLocked(Event{Type: "job_done", Index: -1})
		j.cancel() // release the context; nothing left to cancel
	}
	return true
}

// cancelJob transitions the job to canceled, reporting (not dropping) every
// unfinished run as a canceled result. Returns false if the job was already
// terminal.
func (j *Job) cancelJob() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return false
	}
	j.state = StateCanceled
	for idx := range j.specs {
		if j.done[idx] {
			continue
		}
		spec := j.specs[idx]
		j.results[idx] = syncron.RunResult{
			Spec:      spec,
			Seed:      spec.Config.Seed,
			Key:       j.keys[idx],
			GridIndex: idx,
			Err:       "canceled: job canceled",
		}
		j.done[idx] = true
		j.completed++
		j.canceled++
		j.failed++
	}
	j.appendEventLocked(Event{Type: "job_canceled", Index: -1})
	j.cancel()
	return true
}

// Status snapshots the job for the status and list endpoints.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.id,
		State:     j.state,
		CreatedAt: j.createdAt.UTC().Format(time.RFC3339Nano),
		Total:     len(j.specs),
		Completed: j.completed,
		CacheHits: j.cacheHits,
		Failed:    j.failed,
		Canceled:  j.canceled,
		Events:    len(j.events),
	}
}

// Results returns the job's results in grid order, or false while the job is
// not terminal.
func (j *Job) Results() ([]syncron.RunResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.terminalLocked() {
		return nil, false
	}
	out := make([]syncron.RunResult, len(j.results))
	copy(out, j.results)
	return out, true
}

// next returns the events at sequence >= from, plus the job's terminal state
// and a channel that is closed on the next append. Stream subscribers loop:
// drain, then wait on the channel (or their request context).
func (j *Job) next(from int) (events []Event, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		events = make([]Event, len(j.events)-from)
		copy(events, j.events[from:])
	}
	return events, j.terminalLocked(), j.changed
}
