// Package arch assembles the simulated NDP machine of Figure 1: several NDP
// units connected by serial links, each unit holding a memory stack and a
// compute die with in-order NDP cores and (depending on the synchronization
// scheme) a Synchronization Engine or a server core.
//
// The package owns the physical address map, data placement, the end-to-end
// memory access path (L1 -> crossbar -> link -> DRAM), and the aggregation
// of energy and data-movement statistics.
package arch

import (
	"fmt"

	"syncron/internal/cache"
	"syncron/internal/mem"
	"syncron/internal/network"
	"syncron/internal/sim"
	"syncron/internal/trace"
)

// Config describes a simulated NDP system.
type Config struct {
	Units        int // NDP units
	CoresPerUnit int // client NDP cores per unit (the paper uses 15 clients + 1 server/SE)

	CoreMHz int64 // NDP core clock (default 2500)
	SEMHz   int64 // Synchronization Engine clock (default 1000)

	Mem mem.Tech // memory technology (default HBM / 2.5D)

	// MemModel selects the DRAM timing model (default mem.ModelFlat; see
	// internal/mem). The flat model is pinned bit-exact by the goldens; the
	// bank model adds row-buffer and bank-level timing on the same channels.
	MemModel mem.Model

	// Topology selects how NDP units are wired (default full point-to-point,
	// network.KindAllToAll).
	Topology network.Kind

	// LinkLatency overrides the fixed inter-unit transfer latency per cache
	// line; zero keeps the Table-5 default of 40 ns.
	LinkLatency sim.Time

	// Seed for all deterministic randomness in the simulation.
	Seed uint64

	// Parallelism selects the engine's parallel dispatcher with that many
	// workers (0 = serial). Execution stays byte-identical either way; see
	// sim.Engine.SetParallelism.
	Parallelism int

	// Tracer, when non-nil, enables the time-resolved tracing layer: the
	// engine's dispatch hook, the network's per-link transfer records, and
	// the backends' synchronization spans all feed it. Nil (the default)
	// keeps every hook branch-predicted cold and the hot path
	// allocation-free.
	Tracer trace.Tracer
}

// Default returns the paper's evaluated configuration: 4 NDP units with 15
// client cores each, 2.5 GHz cores, HBM memory.
func Default() Config {
	return Config{Units: 4, CoresPerUnit: 15, CoreMHz: 2500, SEMHz: 1000, Mem: mem.HBM, Seed: 1}
}

func (c Config) withDefaults() Config {
	if c.Units == 0 {
		c.Units = 4
	}
	if c.CoresPerUnit == 0 {
		c.CoresPerUnit = 15
	}
	if c.CoreMHz == 0 {
		c.CoreMHz = 2500
	}
	if c.SEMHz == 0 {
		c.SEMHz = 1000
	}
	if c.Topology == "" {
		c.Topology = network.KindAllToAll
	}
	if c.MemModel == "" {
		c.MemModel = mem.ModelFlat
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Address map: bits 40+ select the owning NDP unit; bit 39 marks shared
// read-write (uncacheable) allocations.
const (
	unitShift      = 40
	uncacheableBit = uint64(1) << 39
)

// Machine is a fully constructed simulated NDP system.
type Machine struct {
	Cfg       Config
	Engine    *sim.Engine
	CoreClock sim.Clock
	SEClock   sim.Clock
	Net       *network.Network
	Mems      []*mem.Memory
	Caches    []*cache.Cache // one per client core, indexed by global core id
	RNG       *sim.RNG

	Backend Backend // synchronization mechanism under test

	// Tracer is the machine-wide trace sink (nil when tracing is disabled).
	// Backends read it at Attach time to install their span hooks.
	Tracer trace.Tracer

	allocNext  []uint64 // per-unit bump pointer (cacheable arena)
	allocNextU []uint64 // per-unit bump pointer (uncacheable arena)
	cacheCfg   cache.Config
	engHook    *trace.EngineHook // engine dispatch adapter; nil when untraced
}

// NewMachine builds a machine from cfg. Attach a Backend before running
// programs that synchronize.
func NewMachine(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	eng.SetParallelism(cfg.Parallelism)
	coreClk := sim.NewClock(cfg.CoreMHz)
	seClk := sim.NewClock(cfg.SEMHz)
	ncfg := network.DefaultConfig(coreClk)
	if cfg.LinkLatency != 0 {
		ncfg.LinkLatency = cfg.LinkLatency
	}
	m := &Machine{
		Cfg:        cfg,
		Engine:     eng,
		CoreClock:  coreClk,
		SEClock:    seClk,
		Net:        network.New(ncfg, network.MustBuild(cfg.Topology, cfg.Units)),
		RNG:        sim.NewRNG(cfg.Seed),
		cacheCfg:   cache.DefaultConfig(),
		allocNext:  make([]uint64, cfg.Units),
		allocNextU: make([]uint64, cfg.Units),
	}
	timing := mem.TimingFor(cfg.Mem)
	for u := 0; u < cfg.Units; u++ {
		m.Mems = append(m.Mems, mem.NewModel(eng, u, timing, cfg.MemModel))
		m.allocNext[u] = mem.Line // keep address 0 unused
		m.allocNextU[u] = mem.Line
	}
	for c := 0; c < cfg.Units*cfg.CoresPerUnit; c++ {
		m.Caches = append(m.Caches, cache.New(m.cacheCfg))
	}
	if cfg.Tracer != nil {
		m.Tracer = cfg.Tracer
		m.engHook = trace.NewEngineHook(cfg.Tracer, 0)
		eng.SetHook(m.engHook)
		m.Net.SetTracer(cfg.Tracer)
		for _, mm := range m.Mems {
			mm.SetTracer(cfg.Tracer)
		}
	}
	return m
}

// FlushTrace finalizes the tracing layer after a run: it emits the engine
// hook's last partial bucket and drains the memory stacks' buffered bank
// spans (runs on the engine goroutine, after the engine drains — the only
// point where another goroutine may not be touching a Memory). A no-op when
// tracing is disabled; callers (syncron.System.Run) invoke it
// unconditionally once the engine drains.
func (m *Machine) FlushTrace() {
	if m.engHook != nil {
		m.engHook.Flush(m.Engine.Executed)
	}
	for _, mm := range m.Mems {
		mm.FlushTrace()
	}
}

// NumCores returns the total number of client cores.
func (m *Machine) NumCores() int { return m.Cfg.Units * m.Cfg.CoresPerUnit }

// Simulation-unit identity map (see ARCHITECTURE.md "Unit ownership map").
//
// Every simulated component with mutable hot-path state is owned by exactly
// one engine unit, so same-timestamp events tagged with different units may
// run concurrently under the parallel dispatcher:
//
//   - units 0..Units-1 are resource units: NDP unit u's crossbar row,
//     DRAM stack (including its bank/row-buffer state and buffered trace
//     spans under the bank memory model), and per-unit traffic shards belong
//     to ResourceUnit(u);
//   - units Units..Units+NumCores-1 are core units: core c's program state
//     and private L1 belong to CoreUnit(c).
//
// Anything touching more than one owner's state (inter-unit links, the
// synchronization protocol layers) must run as a serial-barrier event.

// ResourceUnit returns the engine unit owning NDP unit u's shared resources
// (crossbar, memory stack, intra-unit traffic shards).
func (m *Machine) ResourceUnit(u int) int { return u }

// CoreUnit returns the engine unit owning core c's program context and L1.
func (m *Machine) CoreUnit(c int) int { return m.Cfg.Units + c }

// NumSimUnits returns the total number of engine units the machine tags
// events with; WithParallelism's auto mode caps the worker count here.
func (m *Machine) NumSimUnits() int { return m.Cfg.Units + m.NumCores() }

// UnitOf returns the NDP unit hosting global core id c.
func (m *Machine) UnitOf(c int) int { return c / m.Cfg.CoresPerUnit }

// LocalOf returns the unit-local index of global core id c.
func (m *Machine) LocalOf(c int) int { return c % m.Cfg.CoresPerUnit }

// HomeUnit returns the NDP unit owning address addr.
func (m *Machine) HomeUnit(addr uint64) int {
	u := int(addr >> unitShift)
	if u >= m.Cfg.Units {
		panic(fmt.Sprintf("arch: address %#x outside %d units", addr, m.Cfg.Units))
	}
	return u
}

// Cacheable reports whether addr belongs to a cacheable (thread-private or
// shared read-only) allocation.
func (m *Machine) Cacheable(addr uint64) bool { return addr&uncacheableBit == 0 }

// Alloc reserves size bytes of cacheable memory in the given unit, aligned
// to the line size, and returns the base address.
func (m *Machine) Alloc(unit int, size uint64) uint64 {
	return m.alloc(unit, size, false)
}

// AllocShared reserves size bytes of shared read-write (uncacheable) memory.
func (m *Machine) AllocShared(unit int, size uint64) uint64 {
	return m.alloc(unit, size, true)
}

func (m *Machine) alloc(unit int, size uint64, shared bool) uint64 {
	if unit < 0 || unit >= m.Cfg.Units {
		panic(fmt.Sprintf("arch: alloc in unit %d of %d", unit, m.Cfg.Units))
	}
	if size == 0 {
		size = 1
	}
	aligned := (size + mem.Line - 1) &^ uint64(mem.Line-1)
	next := &m.allocNext[unit]
	flag := uint64(0)
	if shared {
		next = &m.allocNextU[unit]
		flag = uncacheableBit
	}
	base := *next
	*next += aligned
	if *next >= uncacheableBit {
		panic("arch: unit arena exhausted")
	}
	return uint64(unit)<<unitShift | flag | base
}

// Message payload sizes, from Figure 6 plus framing assumptions for memory
// traffic (64-bit address header).
const (
	SyncReqBytes  = 18 // 140-bit synchronization request
	SyncRespBytes = 19 // 149-bit response
	MemReqBytes   = 16 // read request / write ack header
	MemDataBytes  = mem.Line + 8
)

// AccessFrom models a blocking memory access issued at time t by an agent in
// the given unit attached to crossbar port (use network.PortCore(i) for a
// core, network.PortSE for an SE). If l1 is non-nil and addr is cacheable the
// access goes through the cache; otherwise it bypasses straight to the home
// unit's DRAM. The returned time is when the data is back at the agent.
func (m *Machine) AccessFrom(t sim.Time, unit, port int, l1 *cache.Cache, addr uint64, write bool) sim.Time {
	home := m.HomeUnit(addr)
	if l1 != nil && m.Cacheable(addr) {
		res := l1.Access(addr, write)
		hitLat := m.CoreClock.Cycles(res.LatencyCycles)
		if res.Hit {
			return t + hitLat
		}
		if res.Writeback {
			// Fire-and-forget writeback: consumes bandwidth, not core time.
			vhome := m.HomeUnit(res.VictimAddr)
			wt := m.Net.Transfer(t, unit, vhome, network.PortMemory, MemDataBytes)
			m.Mems[vhome].Write(wt, res.VictimAddr)
		}
		reqArr := m.Net.Transfer(t+hitLat, unit, home, network.PortMemory, MemReqBytes)
		ready := m.Mems[home].Read(reqArr, addr)
		return m.Net.Transfer(ready, home, unit, port, MemDataBytes)
	}
	if l1 != nil {
		l1.Bypass()
	}
	reqBytes := MemReqBytes
	if write {
		reqBytes = MemDataBytes
	}
	reqArr := m.Net.Transfer(t, unit, home, network.PortMemory, reqBytes)
	ready := m.Mems[home].Access(reqArr, addr, write)
	respBytes := MemDataBytes
	if write {
		respBytes = MemReqBytes // ack
	}
	return m.Net.Transfer(ready, home, unit, port, respBytes)
}

// CoreAccess is AccessFrom for a client core (global id), using its L1.
func (m *Machine) CoreAccess(t sim.Time, core int, addr uint64, write bool) sim.Time {
	return m.AccessFrom(t, m.UnitOf(core), network.PortCore(m.LocalOf(core)), m.Caches[core], addr, write)
}

// AccessClass says which simulation units a CoreAccess would touch, so the
// program layer can schedule the access on its owner (see the unit map above).
type AccessClass int8

// Access ownership classes.
const (
	// AccessL1Hit touches only the core's own L1: safe on CoreUnit(core).
	AccessL1Hit AccessClass = iota
	// AccessOwnUnit touches the L1 plus the core's own unit's crossbar and
	// DRAM: safe on ResourceUnit(UnitOf(core)).
	AccessOwnUnit
	// AccessCrossUnit touches other units' links/crossbars/DRAM: must run as
	// a serial barrier.
	AccessCrossUnit
)

// ClassifyCoreAccess predicts which class CoreAccess(core, addr, write) falls
// in, without mutating any state. The prediction is exact as long as no other
// access to the same L1 intervenes — guaranteed for in-order blocking cores,
// which have at most one access in flight.
func (m *Machine) ClassifyCoreAccess(core int, addr uint64, write bool) AccessClass {
	unit := m.UnitOf(core)
	home := m.HomeUnit(addr)
	if m.Cacheable(addr) {
		res := m.Caches[core].Probe(addr, write)
		if res.Hit {
			return AccessL1Hit
		}
		if home != unit {
			return AccessCrossUnit
		}
		if res.Writeback && m.HomeUnit(res.VictimAddr) != unit {
			return AccessCrossUnit
		}
		return AccessOwnUnit
	}
	if home != unit {
		return AccessCrossUnit
	}
	return AccessOwnUnit
}

// Energy summarizes the machine's energy consumption in picojoules.
type Energy struct {
	CachePJ   float64
	NetworkPJ float64
	MemoryPJ  float64
}

// Total returns total energy in picojoules.
func (e Energy) Total() float64 { return e.CachePJ + e.NetworkPJ + e.MemoryPJ }

// EnergyBreakdown computes the current energy totals.
func (m *Machine) EnergyBreakdown() Energy {
	var e Energy
	for _, c := range m.Caches {
		e.CachePJ += c.Stats.EnergyPJ(cache.DefaultConfig())
	}
	if m.Backend != nil {
		e.CachePJ += m.Backend.ExtraCacheEnergyPJ()
	}
	e.NetworkPJ = m.Net.EnergyPJ()
	for _, mm := range m.Mems {
		e.MemoryPJ += mm.EnergyPJ()
	}
	return e
}

// RowHitRate returns the machine-wide fraction of DRAM accesses that hit an
// open row. Always 0 under the flat memory model.
func (m *Machine) RowHitRate() float64 {
	var hits, misses uint64
	for _, mm := range m.Mems {
		hits += mm.Stats.RowHits.Value()
		misses += mm.Stats.RowMisses.Value()
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// DataMovement reports bytes moved inside and across NDP units.
func (m *Machine) DataMovement() (intraBytes, interBytes uint64) {
	return m.Net.IntraBits() / 8, m.Net.Stats.InterBits.Value() / 8
}
