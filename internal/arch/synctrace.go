package arch

import (
	"fmt"

	"syncron/internal/sim"
	"syncron/internal/trace"
)

// SyncTracer captures per-variable synchronization spans at the
// Backend.Request boundary by wrapping the caller's done continuation, so the
// protocol state machines below it stay untouched. Request and every done
// invocation run inside engine events that are serial barriers (protocol
// handlers are scheduled with unit -1), so emission needs no locking; the
// trace Collector's total-order sort makes the CSV byte-identical regardless.
//
// Wait-type operations become a (issue, grant) span; lock grants open a hold
// span closed by the matching release; condition waits hand their lock's hold
// span over the sleep. Backends construct one per Attach when the machine has
// a tracer.
type SyncTracer struct {
	tr        trace.Tracer
	holdStart map[syncSpanKey]sim.Time // lock grant times awaiting release
	varNames  map[uint64]string        // interned "var.0x..." Where strings
}

// syncSpanKey identifies an in-flight hold span: one core holding one
// variable.
type syncSpanKey struct {
	core int
	addr uint64
}

// NewSyncTracer returns a SyncTracer feeding tr, which must be non-nil.
func NewSyncTracer(tr trace.Tracer) *SyncTracer {
	return &SyncTracer{
		tr:        tr,
		holdStart: make(map[syncSpanKey]sim.Time),
		varNames:  make(map[uint64]string),
	}
}

// varName interns the Where label for a variable address.
func (s *SyncTracer) varName(addr uint64) string {
	if n, ok := s.varNames[addr]; ok {
		return n
	}
	n := fmt.Sprintf("var.0x%x", addr)
	s.varNames[addr] = n
	return n
}

func (s *SyncTracer) emit(start, end sim.Time, addr uint64, what string) {
	s.tr.Emit(trace.Record{Start: start, End: end, Where: s.varName(addr),
		What: what, Value: float64(end - start), Unit: "ps"})
}

// Request observes one sync request issued at time t and returns the done
// continuation the backend should invoke instead of the original.
func (s *SyncTracer) Request(t sim.Time, core int, req SyncReq, done func(sim.Time)) func(sim.Time) {
	switch req.Op {
	case OpLockAcquire:
		return func(at sim.Time) {
			s.emit(t, at, req.Addr, trace.WhatLockWait)
			s.holdStart[syncSpanKey{core, req.Addr}] = at
			done(at)
		}
	case OpLockRelease:
		k := syncSpanKey{core, req.Addr}
		if start, ok := s.holdStart[k]; ok {
			s.emit(start, t, req.Addr, trace.WhatLockHold)
			delete(s.holdStart, k)
		}
		return done
	case OpBarrierWithinUnit, OpBarrierAcrossUnits:
		return func(at sim.Time) {
			s.emit(t, at, req.Addr, trace.WhatBarrierWait)
			done(at)
		}
	case OpSemWait:
		return func(at sim.Time) {
			s.emit(t, at, req.Addr, trace.WhatSemWait)
			done(at)
		}
	case OpCondWait:
		// cond_wait atomically releases req.Lock and re-acquires it before
		// returning: close the current hold span now and open a new one at
		// wake time.
		k := syncSpanKey{core, req.Lock}
		if start, ok := s.holdStart[k]; ok {
			s.emit(start, t, req.Lock, trace.WhatLockHold)
			delete(s.holdStart, k)
		}
		return func(at sim.Time) {
			s.emit(t, at, req.Addr, trace.WhatCondWait)
			s.holdStart[k] = at
			done(at)
		}
	default:
		return done
	}
}
