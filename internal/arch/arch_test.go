package arch

import (
	"testing"
	"testing/quick"

	"syncron/internal/mem"
	"syncron/internal/network"
)

func TestDefaults(t *testing.T) {
	m := NewMachine(Config{})
	if m.Cfg.Units != 4 || m.Cfg.CoresPerUnit != 15 {
		t.Fatalf("defaults: %d units x %d cores, want 4x15 (Table 5)", m.Cfg.Units, m.Cfg.CoresPerUnit)
	}
	if m.CoreClock.Period != 400 || m.SEClock.Period != 1000 {
		t.Fatalf("clocks: core %v, SE %v", m.CoreClock.Period, m.SEClock.Period)
	}
	if m.NumCores() != 60 {
		t.Fatalf("NumCores = %d", m.NumCores())
	}
}

func TestCoreUnitMapping(t *testing.T) {
	m := NewMachine(Config{Units: 4, CoresPerUnit: 15})
	if m.UnitOf(0) != 0 || m.UnitOf(14) != 0 || m.UnitOf(15) != 1 || m.UnitOf(59) != 3 {
		t.Fatal("UnitOf mapping wrong")
	}
	if m.LocalOf(17) != 2 {
		t.Fatalf("LocalOf(17) = %d, want 2", m.LocalOf(17))
	}
}

func TestAllocHomeAndCacheability(t *testing.T) {
	m := NewMachine(Config{Units: 4})
	a := m.Alloc(2, 64)
	if m.HomeUnit(a) != 2 {
		t.Fatalf("home of %#x = %d, want 2", a, m.HomeUnit(a))
	}
	if !m.Cacheable(a) {
		t.Fatal("Alloc result should be cacheable")
	}
	s := m.AllocShared(3, 128)
	if m.HomeUnit(s) != 3 {
		t.Fatalf("home of shared %#x = %d, want 3", s, m.HomeUnit(s))
	}
	if m.Cacheable(s) {
		t.Fatal("AllocShared result must be uncacheable")
	}
}

// Property: allocations never overlap and always stay in their unit.
func TestAllocDisjointProperty(t *testing.T) {
	m := NewMachine(Config{Units: 4})
	type span struct{ lo, hi uint64 }
	var spans []span
	if err := quick.Check(func(unit uint8, sz uint16, shared bool) bool {
		u := int(unit) % 4
		size := uint64(sz)%4096 + 1
		var a uint64
		if shared {
			a = m.AllocShared(u, size)
		} else {
			a = m.Alloc(u, size)
		}
		if m.HomeUnit(a) != u || m.Cacheable(a) == shared {
			return false
		}
		lo, hi := a, a+size
		for _, s := range spans {
			if lo < s.hi && s.lo < hi {
				return false // overlap
			}
		}
		spans = append(spans, span{lo, hi})
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheableAccessHitsAfterMiss(t *testing.T) {
	m := NewMachine(Config{Units: 2, CoresPerUnit: 2})
	a := m.Alloc(0, 64)
	first := m.CoreAccess(0, 0, a, false)
	second := m.CoreAccess(first, 0, a, false) - first
	if second >= first {
		t.Fatalf("cached re-access (%v) not faster than miss (%v)", second, first)
	}
	if second != m.CoreClock.Cycles(4) {
		t.Fatalf("hit latency = %v, want 4 cycles", second)
	}
}

func TestUncacheableAlwaysMisses(t *testing.T) {
	m := NewMachine(Config{Units: 2, CoresPerUnit: 2})
	a := m.AllocShared(0, 64)
	first := m.CoreAccess(0, 0, a, false)
	second := m.CoreAccess(first, 0, a, false) - first
	if second < first/2 {
		t.Fatalf("uncacheable re-access suspiciously fast: %v vs %v", second, first)
	}
	if m.Caches[0].Stats.Bypasses.Value() != 2 {
		t.Fatalf("bypasses = %d, want 2", m.Caches[0].Stats.Bypasses.Value())
	}
}

func TestRemoteAccessSlowerThanLocal(t *testing.T) {
	m := NewMachine(Config{Units: 2, CoresPerUnit: 2})
	local := m.AllocShared(0, 64)
	remote := m.AllocShared(1, 64)
	tl := m.CoreAccess(0, 0, local, false) // core 0 is in unit 0
	m2 := NewMachine(Config{Units: 2, CoresPerUnit: 2})
	remote = m2.AllocShared(1, 64)
	tr := m2.CoreAccess(0, 0, remote, false)
	if tr <= tl {
		t.Fatalf("remote access (%v) not slower than local (%v)", tr, tl)
	}
	// The gap must be at least the 2x40ns link latency (request + response).
	if tr-tl < 80*1000 {
		t.Fatalf("remote-local gap %v < 80ns", tr-tl)
	}
}

func TestMemTechAffectsLatency(t *testing.T) {
	lat := map[mem.Tech]int64{}
	for _, tech := range []mem.Tech{mem.HBM, mem.HMC, mem.DDR4} {
		m := NewMachine(Config{Units: 1, CoresPerUnit: 1, Mem: tech})
		a := m.AllocShared(0, 64)
		lat[tech] = int64(m.CoreAccess(0, 0, a, false))
	}
	if !(lat[mem.HBM] < lat[mem.HMC] && lat[mem.HMC] < lat[mem.DDR4]) {
		t.Fatalf("memory latency ordering violated: %v", lat)
	}
}

func TestLinkLatencyOverride(t *testing.T) {
	slow := NewMachine(Config{Units: 2, CoresPerUnit: 1, LinkLatency: 500 * 1000})
	fast := NewMachine(Config{Units: 2, CoresPerUnit: 1})
	as := slow.AllocShared(1, 64)
	af := fast.AllocShared(1, 64)
	ts := slow.CoreAccess(0, 0, as, false)
	tf := fast.CoreAccess(0, 0, af, false)
	if ts <= tf {
		t.Fatalf("500ns link (%v) not slower than 40ns (%v)", ts, tf)
	}
}

func TestEnergyBreakdownAccumulates(t *testing.T) {
	m := NewMachine(Config{Units: 2, CoresPerUnit: 2})
	a := m.AllocShared(1, 64)
	m.CoreAccess(0, 0, a, true)
	e := m.EnergyBreakdown()
	if e.NetworkPJ <= 0 || e.MemoryPJ <= 0 {
		t.Fatalf("energy breakdown empty: %+v", e)
	}
	intra, inter := m.DataMovement()
	if intra == 0 || inter == 0 {
		t.Fatalf("data movement empty: %d/%d", intra, inter)
	}
	if e.Total() != e.CachePJ+e.NetworkPJ+e.MemoryPJ {
		t.Fatal("Total() mismatch")
	}
	_ = network.PortSE
}
