package arch

import "syncron/internal/sim"

// SyncOp enumerates the synchronization semantics of the paper's programming
// interface (Table 2). Acquire-type operations block the issuing core until
// granted (req_sync); release-type operations are asynchronous (req_async)
// but the simulator still reports their message injection cost.
type SyncOp int

const (
	OpLockAcquire SyncOp = iota
	OpLockRelease
	OpBarrierWithinUnit
	OpBarrierAcrossUnits
	OpSemWait
	OpSemPost
	OpCondWait
	OpCondSignal
	OpCondBroadcast
	OpFetchAdd // §4.4.1 RMW extension (SynCron only)
)

// String returns the API name of the operation.
func (o SyncOp) String() string {
	switch o {
	case OpLockAcquire:
		return "lock_acquire"
	case OpLockRelease:
		return "lock_release"
	case OpBarrierWithinUnit:
		return "barrier_wait_within_unit"
	case OpBarrierAcrossUnits:
		return "barrier_wait_across_units"
	case OpSemWait:
		return "sem_wait"
	case OpSemPost:
		return "sem_post"
	case OpCondWait:
		return "cond_wait"
	case OpCondSignal:
		return "cond_signal"
	case OpCondBroadcast:
		return "cond_broadcast"
	case OpFetchAdd:
		return "fetch_add"
	default:
		return "sync_op?"
	}
}

// Blocking reports whether the operation uses req_sync semantics (the core
// stalls until the response arrives).
func (o SyncOp) Blocking() bool {
	switch o {
	case OpLockAcquire, OpBarrierWithinUnit, OpBarrierAcrossUnits, OpSemWait,
		OpCondWait, OpFetchAdd:
		return true
	default:
		return false
	}
}

// SyncReq is one synchronization request from an NDP core.
type SyncReq struct {
	Op   SyncOp
	Addr uint64 // address of the synchronization variable (defines the Master SE)
	Info uint64 // MessageInfo: barrier participant count, semaphore initial value, RMW operand
	Lock uint64 // lock address associated with a condition variable
}

// Backend is a synchronization mechanism under test: SynCron, Central, Hier,
// or Ideal. A Backend receives requests from cores and calls done with the
// simulated time at which the core may proceed (for release-type operations,
// done is called when the message has been injected).
type Backend interface {
	// Name identifies the scheme in reports.
	Name() string

	// Attach wires the backend to the machine. Called once before the run.
	Attach(m *Machine)

	// Request submits req from global core id at time t. done must be called
	// exactly once, at a time >= t.
	Request(t sim.Time, core int, req SyncReq, done func(sim.Time))

	// ExtraCacheEnergyPJ reports cache energy consumed by server cores owned
	// by the backend (zero for hardware schemes).
	ExtraCacheEnergyPJ() float64
}

// BackendStats is implemented by backends that track ST-style occupancy (used
// by Table 7, Figure 19, Figure 22).
type BackendStats interface {
	// STOccupancy returns the max and time-weighted mean fraction [0,1] of ST
	// entries occupied, across all SEs.
	STOccupancy() (max, mean float64)
	// OverflowedFraction returns the fraction of requests serviced via the
	// memory fallback.
	OverflowedFraction() float64
}
