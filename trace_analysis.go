package syncron

import (
	"math"
	"sort"

	"syncron/internal/trace"
)

// This file is the time-resolved half of the analysis layer: it ingests
// []TraceRecord (from a TraceCollector or ReadTraceCSV) and computes views
// over simulated time — event-queue depth and dispatch rate, per-link
// utilization, and per-variable lock hold/wait distributions. figures.go
// renders them next to the paper's aggregate views; cmd/syncron-sim exposes
// them via the -trace flag.

// traceHorizon returns the [min Start, max End] span covered by recs.
func traceHorizon(recs []TraceRecord) (lo, hi Time) {
	if len(recs) == 0 {
		return 0, 0
	}
	lo, hi = recs[0].Start, recs[0].End
	for _, r := range recs {
		if r.Start < lo {
			lo = r.Start
		}
		if r.End > hi {
			hi = r.End
		}
	}
	return lo, hi
}

// QueueDepthBucket is one time slice of the engine-activity series.
type QueueDepthBucket struct {
	// Start and End bound the slice in simulated time.
	Start, End Time
	// MaxDepth is the maximum pending-event count observed in the slice.
	MaxDepth int
	// Dispatched is the number of engine events executed in the slice.
	Dispatched float64
}

// QueueDepthSeries rebuckets the engine's queue_depth/dispatched records into
// at most n uniform time slices spanning the trace horizon (n <= 0 means 50).
// Depth takes the max over overlapping source buckets; dispatched counts are
// split across slices in proportion to overlap, so their total is preserved.
// Slices with no overlapping engine record are omitted.
func QueueDepthSeries(recs []TraceRecord, n int) []QueueDepthBucket {
	if n <= 0 {
		n = 50
	}
	lo, hi := traceHorizon(recs)
	if hi <= lo {
		return nil
	}
	width := (hi - lo + Time(n) - 1) / Time(n)
	buckets := make([]QueueDepthBucket, n)
	touched := make([]bool, n)
	for _, r := range recs {
		if r.Where != "engine" {
			continue
		}
		switch r.What {
		case trace.WhatQueueDepth, trace.WhatDispatched:
		default:
			continue
		}
		for i, frac := range bucketOverlap(r.Start, r.End, lo, width, n) {
			if frac == 0 {
				continue
			}
			touched[i] = true
			switch r.What {
			case trace.WhatQueueDepth:
				if d := int(r.Value); d > buckets[i].MaxDepth {
					buckets[i].MaxDepth = d
				}
			case trace.WhatDispatched:
				buckets[i].Dispatched += r.Value * frac
			}
		}
	}
	out := buckets[:0]
	for i := range buckets {
		if !touched[i] {
			continue
		}
		buckets[i].Start = lo + Time(i)*width
		buckets[i].End = buckets[i].Start + width
		out = append(out, buckets[i])
	}
	return out
}

// bucketOverlap returns, for each of n uniform buckets of the given width
// starting at lo, the fraction of span [start, end) that falls inside it.
func bucketOverlap(start, end, lo, width Time, n int) []float64 {
	fr := make([]float64, n)
	if end <= start {
		// Point records land entirely in their containing bucket.
		i := int((start - lo) / width)
		if i >= 0 && i < n {
			fr[i] = 1
		}
		return fr
	}
	span := float64(end - start)
	first := int((start - lo) / width)
	last := int((end - 1 - lo) / width)
	for i := max(first, 0); i <= last && i < n; i++ {
		bLo := lo + Time(i)*width
		bHi := bLo + width
		ov := min(end, bHi) - max(start, bLo)
		if ov > 0 {
			fr[i] = float64(ov) / span
		}
	}
	return fr
}

// LinkUtilization summarizes one inter-unit link's traffic over a traced run.
type LinkUtilization struct {
	// Link is the trace Where label ("link.<src>-<dst>").
	Link string
	// Transfers and Bytes count the messages serialized onto the link.
	Transfers int
	Bytes     float64
	// BusyFrac is the link's serialization time as a fraction of the trace
	// horizon; PeakFrac is the same fraction within the busiest of n uniform
	// time slices, exposing bursts the average hides.
	BusyFrac, PeakFrac float64
}

// LinkUtilizationSeries computes per-link utilization from the network's
// link_xfer records, splitting each transfer across n uniform time slices by
// overlap (n <= 0 means 50). Links are sorted by name; links that never
// carried a message do not appear.
func LinkUtilizationSeries(recs []TraceRecord, n int) []LinkUtilization {
	if n <= 0 {
		n = 50
	}
	lo, hi := traceHorizon(recs)
	if hi <= lo {
		return nil
	}
	width := (hi - lo + Time(n) - 1) / Time(n)
	type acc struct {
		LinkUtilization
		busy []float64 // per-slice busy ps
	}
	links := map[string]*acc{}
	for _, r := range recs {
		if r.What != trace.WhatLinkXfer {
			continue
		}
		a, ok := links[r.Where]
		if !ok {
			a = &acc{LinkUtilization: LinkUtilization{Link: r.Where}, busy: make([]float64, n)}
			links[r.Where] = a
		}
		a.Transfers++
		a.Bytes += r.Value
		ser := float64(r.End - r.Start)
		for i, frac := range bucketOverlap(r.Start, r.End, lo, width, n) {
			a.busy[i] += ser * frac
		}
	}
	horizon := float64(hi - lo)
	var out []LinkUtilization
	for _, a := range links {
		var total, peak float64
		for _, b := range a.busy {
			total += b
			if b > peak {
				peak = b
			}
		}
		a.BusyFrac = total / horizon
		a.PeakFrac = peak / float64(width)
		out = append(out, a.LinkUtilization)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// LockHoldRow summarizes one synchronization variable's lock behaviour over a
// traced run: how long cores held it and how long they waited to get it.
type LockHoldRow struct {
	// Var is the trace Where label ("var.0x<addr>").
	Var string
	// Holds and Waits count completed lock_hold / lock_wait spans.
	Holds, Waits int
	// Hold/Wait span statistics in picoseconds.
	HoldMeanPs, HoldP95Ps, HoldMaxPs float64
	WaitMeanPs, WaitP95Ps, WaitMaxPs float64
}

// LockHoldTimes computes per-variable hold/wait distributions from the
// backend's lock_hold and lock_wait records. Variables are sorted by name;
// variables with neither span kind do not appear.
func LockHoldTimes(recs []TraceRecord) []LockHoldRow {
	holds := map[string][]float64{}
	waits := map[string][]float64{}
	for _, r := range recs {
		switch r.What {
		case trace.WhatLockHold:
			holds[r.Where] = append(holds[r.Where], r.Value)
		case trace.WhatLockWait:
			waits[r.Where] = append(waits[r.Where], r.Value)
		}
	}
	names := map[string]bool{}
	for v := range holds {
		names[v] = true
	}
	for v := range waits {
		names[v] = true
	}
	var rows []LockHoldRow
	for v := range names {
		row := LockHoldRow{Var: v}
		row.Holds, row.HoldMeanPs, row.HoldP95Ps, row.HoldMaxPs = spanStats(holds[v])
		row.Waits, row.WaitMeanPs, row.WaitP95Ps, row.WaitMaxPs = spanStats(waits[v])
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Var < rows[j].Var })
	return rows
}

// spanStats returns count, mean, p95 (nearest-rank), and max of xs.
func spanStats(xs []float64) (n int, mean, p95, maxv float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	rank := int(math.Ceil(0.95*float64(len(s)))) - 1
	return len(s), sum / float64(len(s)), s[rank], s[len(s)-1]
}
