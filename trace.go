package syncron

import (
	"io"

	"syncron/internal/trace"
)

// TraceRecord is one time-resolved trace tuple: a (start, end) span in
// simulated picoseconds, the component it is about (Where), the metric name
// (What), and a value with its unit. See internal/trace for the full schema
// and the built-in What values (queue_depth, dispatched, link_xfer,
// lock_wait, lock_hold, barrier_wait, sem_wait, cond_wait, and — under the
// bank DRAM model — bank_busy, row_hit, row_miss).
type TraceRecord = trace.Record

// Tracer receives trace records from a run. Attach one with WithTracer (or
// Config.Tracer); nil disables tracing at zero cost. Tracers are driven only
// from the engine goroutine, so implementations need no locking, and trace
// output is byte-identical at any Parallelism setting.
type Tracer = trace.Tracer

// TraceCollector buffers trace records in memory and writes them as
// deterministic CSV (sorted by the full record tuple). Reset keeps backing
// storage, so one collector can trace many runs.
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty TraceCollector.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// DiscardTracer drops every record while keeping all hook points live; it is
// what `syncron-bench -perf`'s tracer-on entry uses to measure enabled-path
// overhead.
var DiscardTracer Tracer = trace.Discard

// TraceCSVHeader is the header line of the trace CSV schema, pinned by a
// golden test.
const TraceCSVHeader = trace.Header

// ReadTraceCSV parses a trace CSV written by TraceCollector.WriteCSV,
// validating the header and every field.
func ReadTraceCSV(r io.Reader) ([]TraceRecord, error) { return trace.ReadCSV(r) }
