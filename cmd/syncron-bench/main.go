// Command syncron-bench regenerates the paper's tables and figures, and
// hosts the simulator's macro-benchmark mode.
//
// Usage:
//
//	syncron-bench -list
//	syncron-bench -exp fig12 -scale 0.5
//	syncron-bench -all -scale 0.25
//	syncron-bench -perf                  # macro-benchmark -> BENCH.json
//	syncron-bench -perf -perf-reps 5 -perf-out BENCH.json
//
// Each experiment prints one or more aligned text tables with the same rows
// and series as the corresponding paper artifact, plus a note recalling the
// paper's headline numbers for comparison. Every run underneath is executed
// through the public syncron workload registry and executor; for ad-hoc
// grids and machine-readable output use `syncron-sim sweep` instead.
//
// A failing experiment (a panic anywhere under Run, recovered here) is
// reported on stderr with its id and makes the process exit non-zero; under
// -all the remaining experiments still run.
//
// The -perf mode replays the canonical `figures --quick` grids
// (syncron.FigureSweeps) several times under the serial engine, again under
// the parallel dispatcher at each worker count of -perf-parallel (default
// 1,2,4,8), as a tracer-off/tracer-on pair (the second with a
// record-dropping tracer attached) that prices the tracing layer's hook
// points, and finally as a mem-flat/mem-bank pair that prices the DRAM
// timing-model axis, and writes BENCH.json: one entry per configuration with
// wall time per repetition, simulated events/sec, allocations per event, and
// peak heap. On a single-CPU host the multi-worker entries are skipped, not
// faked — a "parallel-4" number measured on one core would read as a
// regression that is really just oversubscription; every entry records the
// host's CPU count so reports from different hosts compare honestly. The
// event count must be identical across repetitions AND across every entry
// except mem-bank — the simulator is deterministic and engine parallelism
// and tracing never change what executes. mem-bank genuinely changes memory
// timing (different latencies reorder spin/retry loops), so it is only
// required to be internally consistent across its own repetitions. BENCH.json
// thus doubles as a determinism check. CI's bench smoke job, the perf gates
// (scripts/perf_gate.sh, scripts/mem_gate.sh), and the repo's recorded perf
// trajectory all read this file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"syncron"
	"syncron/internal/exp"
)

func main() {
	var (
		id       = flag.String("exp", "", "experiment id (e.g. fig12, table7); see -list")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		perf     = flag.Bool("perf", false, "run the macro-benchmark (the canonical figures --quick grids) and write a BENCH report")
		perfOut  = flag.String("perf-out", "BENCH.json", "macro-benchmark report path (use - for stdout)")
		perfReps = flag.Int("perf-reps", 3, "macro-benchmark repetitions (the best one is the headline)")
		perfWork = flag.Int("perf-workers", 1, "macro-benchmark worker goroutines; 1 (the default) measures serial simulator throughput, comparable across hosts (0 = GOMAXPROCS)")
		perfPar  = flag.String("perf-parallel", "1,2,4,8", "comma-separated engine dispatch worker counts, one parallel entry each; counts above 1 are skipped on single-CPU hosts")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range exp.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.Paper, e.Brief)
		}
	case *perf:
		if err := runPerf(*perfReps, *perfWork, *perfPar, *perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "syncron-bench: perf: %v\n", err)
			os.Exit(1)
		}
	case *all:
		var failed []string
		for _, e := range exp.All() {
			if err := runOne(e, *scale); err != nil {
				fmt.Fprintf(os.Stderr, "syncron-bench: %v\n", err)
				failed = append(failed, e.ID)
			}
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "syncron-bench: %d experiment(s) failed: %v\n", len(failed), failed)
			os.Exit(1)
		}
	case *id != "":
		e, ok := exp.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "syncron-bench: unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		if err := runOne(e, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "syncron-bench: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne executes one experiment, converting a panic anywhere under Run into
// an error naming the experiment, so a broken experiment cannot take the
// whole -all sweep down or let the process exit 0.
func runOne(e *exp.Experiment, scale float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s failed: %v", e.ID, p)
		}
	}()
	start := time.Now()
	tables := e.Run(scale)
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("[%s completed in %v at scale %g]\n\n", e.ID, time.Since(start).Round(time.Millisecond), scale)
	return nil
}

// perfReport is the BENCH.json schema. Field order is fixed so reports diff
// cleanly across commits. The host block and per-rep work counts are shared;
// each entry is one measured engine configuration over the same grids, so
// serial and parallel events/sec sit side by side in one report.
type perfReport struct {
	Benchmark string `json:"benchmark"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Reps is the number of repetitions per entry; SimRuns and Events are
	// per repetition and identical across reps AND entries (the simulator is
	// deterministic, and engine parallelism must not change what executes).
	// Exception: the mem-bank entry runs under a different DRAM timing model,
	// so its event count legitimately differs from Events; it is still pinned
	// identical across its own repetitions.
	Reps    int    `json:"reps"`
	SimRuns int    `json:"sim_runs_per_rep"`
	Events  uint64 `json:"events_per_rep"`

	Entries []perfEntry `json:"entries"`
}

// perfEntry is one measured configuration of the macro-benchmark.
type perfEntry struct {
	// Name distinguishes entries: "serial" is the comparable-across-hosts
	// headline, "parallel-N" measures the engine's parallel dispatcher with
	// N workers, the "tracer-off"/"tracer-on" pair prices the tracing
	// layer (off = nil tracer, on = a tracer that drops every record), and
	// the "mem-flat"/"mem-bank" pair prices the DRAM timing-model axis
	// (flat must match serial exactly; bank runs the row-buffer scheduler).
	Name string `json:"name"`
	// MemModel is the DRAM timing model the entry ran under; empty means the
	// default (flat).
	MemModel string `json:"mem_model,omitempty"`
	// Workers is the sweep worker count (simultaneous runs). The serial
	// entry uses 1 so wall time measures single-run simulator throughput.
	Workers int `json:"workers"`
	// Parallelism is the engine's dispatch worker count within each run
	// (sim.Engine.SetParallelism); 0 = the serial dispatcher.
	Parallelism int `json:"parallelism"`
	// NumCPU is the CPU count of the host that measured THIS entry. It
	// repeats the report-level value today, but entries merged or compared
	// across hosts stay honest: a parallel-8 number from a 2-CPU box carries
	// its own context.
	NumCPU int `json:"num_cpu"`

	WallMSPerRep []float64 `json:"wall_ms_per_rep"`
	// BestWallMS and EventsPerSec summarize the fastest repetition — the
	// least-noise estimate of what the hardware can do.
	BestWallMS   float64 `json:"best_wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`

	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
}

// heapSampler polls the live heap from a background goroutine so entries can
// report peak heap without instrumenting the simulator.
type heapSampler struct {
	peak    atomic.Uint64
	stop    chan struct{}
	stopped chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), stopped: make(chan struct{})}
	go func() {
		defer close(s.stopped)
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak.Load() {
				s.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// take returns the peak heap observed since the last take and resets it, so
// consecutive entries get independent peaks from one sampler goroutine.
func (s *heapSampler) take() uint64 { return s.peak.Swap(0) }

// halt stops the sampler goroutine (ReadMemStats is a stop-the-world pause;
// the ticker must not outlive the benchmark).
func (s *heapSampler) halt() {
	close(s.stop)
	<-s.stopped
}

// measurePerf runs the figures-quick grids reps times under one engine
// configuration and returns the entry plus the per-rep work counts.
// parallelism uses Config.Parallelism semantics (the serial entry passes
// syncron.ParallelismSerial); the recorded entry keeps the engine-level
// worker count, 0 for serial. tracer, when non-nil, is attached to every run
// (it must be stateless, like syncron.DiscardTracer, since runs can execute
// concurrently). memModel, when non-empty, switches every run onto that DRAM
// timing model.
func measurePerf(name string, workers, parallelism, reps int, sampler *heapSampler, tracer syncron.Tracer, memModel syncron.MemModel) (perfEntry, int, uint64, error) {
	sweeps := syncron.FigureSweeps(syncron.FigureOptions{
		Quick: true, Workers: workers, Parallelism: parallelism,
	})
	for i := range sweeps {
		sweeps[i].Base.Tracer = tracer
		sweeps[i].Base.MemModel = memModel
	}
	recorded := parallelism
	if recorded < 0 {
		recorded = 0
	}
	entry := perfEntry{Name: name, MemModel: string(memModel), Workers: workers, Parallelism: recorded, NumCPU: runtime.NumCPU()}
	var events uint64
	simRuns := 0
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sampler.take()
	for i := 0; i < reps; i++ {
		var repEvents uint64
		repRuns := 0
		start := time.Now()
		for _, sw := range sweeps {
			for _, r := range sw.Run() {
				if r.Err != "" {
					return entry, 0, 0, fmt.Errorf("%s under %s failed: %s",
						r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
				}
				repEvents += r.Events
				repRuns++
			}
		}
		wall := time.Since(start)
		entry.WallMSPerRep = append(entry.WallMSPerRep, float64(wall.Microseconds())/1e3)
		if i == 0 {
			simRuns = repRuns
			events = repEvents
		} else if repEvents != events {
			return entry, 0, 0, fmt.Errorf("non-deterministic %s run: rep %d executed %d events, rep 1 executed %d",
				name, i+1, repEvents, events)
		}
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	entry.BestWallMS = entry.WallMSPerRep[0]
	for _, w := range entry.WallMSPerRep[1:] {
		if w < entry.BestWallMS {
			entry.BestWallMS = w
		}
	}
	if entry.BestWallMS > 0 {
		entry.EventsPerSec = float64(events) / (entry.BestWallMS / 1e3)
	}
	totalEvents := events * uint64(reps)
	if totalEvents > 0 {
		entry.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(totalEvents)
		entry.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(totalEvents)
	}
	entry.PeakHeapBytes = sampler.take()
	return entry, simRuns, events, nil
}

// parsePerfParallel resolves the -perf-parallel list into the engine worker
// counts to measure, dropping multi-worker counts on single-CPU hosts (a
// skipped entry is honest; a one-core "parallel-4" number is not).
func parsePerfParallel(s string, numCPU int) ([]int, []int, error) {
	var counts, skipped []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, nil, fmt.Errorf("-perf-parallel: %q is not a positive worker count", f)
		}
		if n > 1 && numCPU < 2 {
			skipped = append(skipped, n)
			continue
		}
		counts = append(counts, n)
	}
	return counts, skipped, nil
}

// runPerf is the macro-benchmark: it replays the canonical figures --quick
// grids reps times serially and again under the parallel engine dispatcher
// at each requested worker count, verifies every entry executed the
// identical event count, and writes a perfReport.
func runPerf(reps, workers int, parallelList, out string) error {
	if reps < 1 {
		reps = 1
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counts, skipped, err := parsePerfParallel(parallelList, runtime.NumCPU())
	if err != nil {
		return err
	}
	for _, n := range skipped {
		fmt.Fprintf(os.Stderr, "syncron-bench: perf: skipping parallel-%d on a %d-CPU host (nothing honest to measure)\n",
			n, runtime.NumCPU())
	}
	sampler := startHeapSampler()
	defer sampler.halt()

	rep := perfReport{
		Benchmark: "figures-quick",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Reps:      reps,
	}
	serial, simRuns, events, err := measurePerf("serial", workers, syncron.ParallelismSerial, reps, sampler, nil, "")
	if err != nil {
		return err
	}
	rep.SimRuns = simRuns
	rep.Events = events
	rep.Entries = []perfEntry{serial}
	for _, n := range counts {
		entry, runs, ev, err := measurePerf(fmt.Sprintf("parallel-%d", n), workers, n, reps, sampler, nil, "")
		if err != nil {
			return err
		}
		// The dispatcher contract: parallel execution changes wall time only.
		if ev != events || runs != simRuns {
			return fmt.Errorf("%s executed %d events over %d runs, serial executed %d over %d — engine parallelism changed the simulation",
				entry.Name, ev, runs, events, simRuns)
		}
		rep.Entries = append(rep.Entries, entry)
	}
	// The tracing layer's cost contract: tracer-off re-measures the serial
	// configuration as the disabled-path reference (measured back-to-back
	// with tracer-on so the pair shares thermal/cache conditions), and
	// tracer-on attaches a tracer that drops every record, isolating the cost
	// of the live hook points themselves. Both run the serial dispatcher.
	for _, tc := range []struct {
		name   string
		tracer syncron.Tracer
	}{{"tracer-off", nil}, {"tracer-on", syncron.DiscardTracer}} {
		entry, runs, ev, err := measurePerf(tc.name, workers, syncron.ParallelismSerial, reps, sampler, tc.tracer, "")
		if err != nil {
			return err
		}
		// Tracing is observational: it must not change what executes either.
		if ev != events || runs != simRuns {
			return fmt.Errorf("%s executed %d events over %d runs, serial executed %d over %d — tracing changed the simulation",
				entry.Name, ev, runs, events, simRuns)
		}
		rep.Entries = append(rep.Entries, entry)
	}
	// The DRAM timing-model pair: mem-flat re-measures the serial configuration
	// with the model named explicitly (it must execute exactly what serial
	// executed — flat is the default, so any divergence means the axis leaked
	// into the flat path), and mem-bank runs the bank/row-buffer scheduler.
	// mem-bank's event count legitimately differs — different memory latencies
	// reorder spin and retry loops — so it is only pinned internally consistent
	// across repetitions (measurePerf enforces that), never against serial.
	for _, mc := range []struct {
		name  string
		model syncron.MemModel
	}{{"mem-flat", syncron.MemModelFlat}, {"mem-bank", syncron.MemModelBank}} {
		entry, runs, ev, err := measurePerf(mc.name, workers, syncron.ParallelismSerial, reps, sampler, nil, mc.model)
		if err != nil {
			return err
		}
		if mc.model == syncron.MemModelFlat && (ev != events || runs != simRuns) {
			return fmt.Errorf("%s executed %d events over %d runs, serial executed %d over %d — the mem-model axis perturbed the flat path",
				entry.Name, ev, runs, events, simRuns)
		}
		rep.Entries = append(rep.Entries, entry)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	for _, e := range rep.Entries {
		fmt.Printf("wrote %s [%s w=%d p=%d]: %d sim runs, %d events/rep, best %.0f ms, %.2fM events/sec, %.2f allocs/event\n",
			out, e.Name, e.Workers, e.Parallelism, rep.SimRuns, rep.Events, e.BestWallMS, e.EventsPerSec/1e6, e.AllocsPerEvent)
	}
	return nil
}
