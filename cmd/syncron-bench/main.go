// Command syncron-bench regenerates the paper's tables and figures, and
// hosts the simulator's macro-benchmark mode.
//
// Usage:
//
//	syncron-bench -list
//	syncron-bench -exp fig12 -scale 0.5
//	syncron-bench -all -scale 0.25
//	syncron-bench -perf                  # macro-benchmark -> BENCH.json
//	syncron-bench -perf -perf-reps 5 -perf-out BENCH.json
//
// Each experiment prints one or more aligned text tables with the same rows
// and series as the corresponding paper artifact, plus a note recalling the
// paper's headline numbers for comparison. Every run underneath is executed
// through the public syncron workload registry and executor; for ad-hoc
// grids and machine-readable output use `syncron-sim sweep` instead.
//
// A failing experiment (a panic anywhere under Run, recovered here) is
// reported on stderr with its id and makes the process exit non-zero; under
// -all the remaining experiments still run.
//
// The -perf mode replays the canonical `figures --quick` grids
// (syncron.FigureSweeps) several times and writes BENCH.json: wall time per
// repetition, simulated events/sec, allocations per event, and peak heap.
// The event count must be identical across repetitions — the simulator is
// deterministic — so BENCH.json doubles as a determinism check. CI's perf
// gate and the repo's recorded perf trajectory both read this file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"syncron"
	"syncron/internal/exp"
)

func main() {
	var (
		id       = flag.String("exp", "", "experiment id (e.g. fig12, table7); see -list")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		perf     = flag.Bool("perf", false, "run the macro-benchmark (the canonical figures --quick grids) and write a BENCH report")
		perfOut  = flag.String("perf-out", "BENCH.json", "macro-benchmark report path (use - for stdout)")
		perfReps = flag.Int("perf-reps", 3, "macro-benchmark repetitions (the best one is the headline)")
		perfWork = flag.Int("perf-workers", 1, "macro-benchmark worker goroutines; 1 (the default) measures serial simulator throughput, comparable across hosts (0 = GOMAXPROCS)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range exp.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.Paper, e.Brief)
		}
	case *perf:
		if err := runPerf(*perfReps, *perfWork, *perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "syncron-bench: perf: %v\n", err)
			os.Exit(1)
		}
	case *all:
		var failed []string
		for _, e := range exp.All() {
			if err := runOne(e, *scale); err != nil {
				fmt.Fprintf(os.Stderr, "syncron-bench: %v\n", err)
				failed = append(failed, e.ID)
			}
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "syncron-bench: %d experiment(s) failed: %v\n", len(failed), failed)
			os.Exit(1)
		}
	case *id != "":
		e, ok := exp.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "syncron-bench: unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		if err := runOne(e, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "syncron-bench: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne executes one experiment, converting a panic anywhere under Run into
// an error naming the experiment, so a broken experiment cannot take the
// whole -all sweep down or let the process exit 0.
func runOne(e *exp.Experiment, scale float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s failed: %v", e.ID, p)
		}
	}()
	start := time.Now()
	tables := e.Run(scale)
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("[%s completed in %v at scale %g]\n\n", e.ID, time.Since(start).Round(time.Millisecond), scale)
	return nil
}

// perfReport is the BENCH.json schema. Field order is fixed so reports diff
// cleanly across commits.
type perfReport struct {
	Benchmark string `json:"benchmark"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Workers is the sweep worker count the measurement ran with. The default
	// is 1 — serial simulator throughput, comparable across hosts; anything
	// else measures parallel sweep wall time and is only comparable to runs
	// with the same worker count on the same hardware.
	Workers int `json:"workers"`

	// Reps is the number of repetitions; SimRuns and Events are per
	// repetition and identical across them (the simulator is deterministic).
	Reps    int    `json:"reps"`
	SimRuns int    `json:"sim_runs_per_rep"`
	Events  uint64 `json:"events_per_rep"`

	WallMSPerRep []float64 `json:"wall_ms_per_rep"`
	// BestWallMS and EventsPerSec summarize the fastest repetition — the
	// least-noise estimate of what the hardware can do.
	BestWallMS   float64 `json:"best_wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`

	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
}

// runPerf is the macro-benchmark: it replays the canonical figures --quick
// grids reps times and writes a perfReport.
func runPerf(reps, workers int, out string) error {
	if reps < 1 {
		reps = 1
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sweeps := syncron.FigureSweeps(syncron.FigureOptions{Quick: true, Workers: workers})

	// Peak-heap sampler: polls the live heap while the benchmark runs.
	var peakHeap atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap.Load() {
				peakHeap.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-tick.C:
			}
		}
	}()
	// Stop the sampler on every return path (ReadMemStats is a
	// stop-the-world pause; the ticker must not outlive the benchmark).
	defer func() {
		close(stop)
		<-sampled
	}()

	rep := perfReport{
		Benchmark: "figures-quick",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
		Reps:      reps,
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		var events uint64
		simRuns := 0
		start := time.Now()
		for _, sw := range sweeps {
			for _, r := range sw.Run() {
				if r.Err != "" {
					return fmt.Errorf("%s under %s failed: %s", r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
				}
				events += r.Events
				simRuns++
			}
		}
		wall := time.Since(start)
		rep.WallMSPerRep = append(rep.WallMSPerRep, float64(wall.Microseconds())/1e3)
		if i == 0 {
			rep.SimRuns = simRuns
			rep.Events = events
		} else if events != rep.Events {
			return fmt.Errorf("non-deterministic run: rep %d executed %d events, rep 1 executed %d",
				i+1, events, rep.Events)
		}
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	rep.BestWallMS = rep.WallMSPerRep[0]
	for _, w := range rep.WallMSPerRep[1:] {
		if w < rep.BestWallMS {
			rep.BestWallMS = w
		}
	}
	if rep.BestWallMS > 0 {
		rep.EventsPerSec = float64(rep.Events) / (rep.BestWallMS / 1e3)
	}
	totalEvents := rep.Events * uint64(reps)
	if totalEvents > 0 {
		rep.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(totalEvents)
		rep.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(totalEvents)
	}
	rep.PeakHeapBytes = peakHeap.Load()

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d sim runs, %d events/rep, best %.0f ms, %.2fM events/sec, %.2f allocs/event\n",
		out, rep.SimRuns, rep.Events, rep.BestWallMS, rep.EventsPerSec/1e6, rep.AllocsPerEvent)
	return nil
}
