// Command syncron-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	syncron-bench -list
//	syncron-bench -exp fig12 -scale 0.5
//	syncron-bench -all -scale 0.25
//
// Each experiment prints one or more aligned text tables with the same rows
// and series as the corresponding paper artifact, plus a note recalling the
// paper's headline numbers for comparison. Every run underneath is executed
// through the public syncron workload registry and executor; for ad-hoc
// grids and machine-readable output use `syncron-sim sweep` instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"syncron/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "", "experiment id (e.g. fig12, table7); see -list")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range exp.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.Paper, e.Brief)
		}
	case *all:
		for _, e := range exp.All() {
			runOne(e, *scale)
		}
	case *id != "":
		e, ok := exp.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "syncron-bench: unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		runOne(e, *scale)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e *exp.Experiment, scale float64) {
	start := time.Now()
	tables := e.Run(scale)
	for _, t := range tables {
		fmt.Println(t.Format())
	}
	fmt.Printf("[%s completed in %v at scale %g]\n\n", e.ID, time.Since(start).Round(time.Millisecond), scale)
}
