// Command syncron-sim runs simulations through the public syncron API: a
// single workload on a single configuration, or a whole
// (workload x scheme x config) sweep on a bounded worker pool.
//
// Single runs (the default subcommand):
//
//	syncron-sim -workload stack -scheme syncron -cores 60
//	syncron-sim run -workload pr.wk -scheme hier -units 2 -scale 0.2
//	syncron-sim run -workload ts.air -scheme central -mem ddr4
//	syncron-sim run -workload lock -interval 200 -scheme syncron
//
// Sweeps (results as JSON, optionally CSV):
//
//	syncron-sim sweep -workloads stack,queue -schemes central,hier,syncron,ideal
//	syncron-sim sweep -workloads lock,barrier -units-list 1,2,4 -workers 8 -json out.json
//	syncron-sim sweep -workloads ts.air -schemes syncron -st-list 16,32,64 -csv out.csv
//	syncron-sim sweep -workloads lock,stack -topology mesh,ring,alltoall -csv topo.csv
//	syncron-sim sweep -workloads lock,stack -mem-model flat,bank -csv mem.csv
//
// Sweeps at scale — content-addressed result caching and deterministic
// N-way sharding (shards are disjoint, exhaustive, and seed-identical to
// the unsharded grid; merge reassembles byte-identical output):
//
//	syncron-sim sweep -grid figures -shard 0/4 -cache .gridcache -json shard-0.json
//	syncron-sim sweep -grid figures -shard 1/4 -cache .gridcache -json shard-1.json
//	...
//	syncron-sim merge -json merged.json -csv merged.csv -cache merged-cache shard-*.json
//	syncron-sim figures -from merged-cache -md figures.md   # zero simulation
//
// Paper figures (Markdown tables, optionally one CSV per figure):
//
//	syncron-sim figures --quick
//	syncron-sim figures -baseline central -md figures.md -csv-dir out/
//	syncron-sim figures --quick -topologies alltoall,mesh,ring,star
//	syncron-sim figures --quick -mem bank
//	syncron-sim figures --quick -cache .gridcache   # second run simulates nothing
//
// Serving (long-running daemon: POST RunSpecs or sweep grids over HTTP,
// cache-backed dedup and single-flight, bounded queue with backpressure,
// streaming progress; drains gracefully on SIGTERM):
//
//	syncron-sim serve -addr 127.0.0.1:8080 -cache .servecache
//	curl -s -X POST localhost:8080/jobs -d "{\"specs\":[$(syncron-sim run -seed 7 -print-spec)]}"
//	curl -s localhost:8080/jobs/<id>/events       # NDJSON progress stream
//	curl -s localhost:8080/jobs/<id>/result       # byte-identical to run -json
//
// Discovery:
//
//	syncron-sim list
//	syncron-sim cache-version
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"syncron"
	"syncron/internal/serve"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runCmd(args)
	case "sweep":
		sweepCmd(args)
	case "figures":
		figuresCmd(args)
	case "merge":
		mergeCmd(args)
	case "serve":
		serveCmd(args)
	case "list":
		listCmd()
	case "cache-version":
		// The spec-hash version, for cache invalidation keys (CI keys its
		// actions/cache entries on it; see SpecKeyVersion). The serve
		// daemon's GET /version reports the same syncron.Version() value.
		fmt.Printf("%s\n", syncron.Version().CacheVersion)
	default:
		fatal("unknown subcommand %q (want run, sweep, figures, merge, serve, list, or cache-version)", cmd)
	}
}

// listCmd prints every registered workload grouped by kind.
func listCmd() {
	for _, kind := range syncron.Kinds() {
		fmt.Printf("%-17s %s\n", kind, strings.Join(syncron.WorkloadNamesOfKind(kind), ", "))
	}
}

// configFlags registers the flags shared by run and sweep and returns a
// closure resolving them into a Config, plus the raw -cores flag (total
// client cores) so sweep can re-derive CoresPerUnit per grid point, the raw
// -topology and -mem-model flags (run takes one value each; sweep accepts
// comma lists as grid axes), and the raw -parallel flag so sweep can apply it
// to canonical -grid specs after expansion.
func configFlags(fs *flag.FlagSet) (func() syncron.Config, *int, *string, *string, *string) {
	var (
		units    = fs.Int("units", 4, "NDP units")
		cores    = fs.Int("cores", 0, "total client cores (default units*15)")
		memTech  = fs.String("mem", "hbm", "hbm | hmc | ddr4")
		memModel = fs.String("mem-model", "", "DRAM timing model: flat | bank (default flat); sweep accepts a comma-separated grid axis")
		topology = fs.String("topology", "", "interconnect: alltoall | mesh | ring | star (default alltoall); sweep accepts a comma-separated grid axis")
		linkNS   = fs.Int64("link-ns", 0, "inter-unit transfer latency in ns (default 40)")
		stSize   = fs.Int("st", 0, "SynCron ST entries (default 64)")
		fairness = fs.Int("fairness", 0, "lock fairness threshold (0 = off)")
		seed     = fs.Uint64("seed", 0, "simulation seed (0 = default)")
		parallel = fs.String("parallel", "auto", "event-engine dispatch: auto | serial | worker count; never affects results")
	)
	return func() syncron.Config {
		if *units <= 0 {
			fatal("-units must be positive (got %d)", *units)
		}
		memory, err := syncron.ParseMemory(*memTech)
		if err != nil {
			fatal("%v", err)
		}
		cfg := syncron.Config{
			Units:             *units,
			Memory:            memory,
			LinkLatency:       syncron.Time(*linkNS) * syncron.Nanosecond,
			STEntries:         *stSize,
			FairnessThreshold: *fairness,
			Seed:              *seed,
			Parallelism:       parseParallel(*parallel),
		}
		if *cores != 0 {
			cfg.CoresPerUnit = *cores / *units
		}
		return cfg
	}, cores, topology, memModel, parallel
}

// parseParallel resolves a -parallel flag value to Config.Parallelism
// semantics: "auto" (the default, also "0") lets New pick per host,
// "serial" forces the serial dispatcher, and a positive integer forces that
// many dispatch workers.
func parseParallel(s string) int {
	switch s {
	case "", "auto", "0":
		return syncron.ParallelismAuto
	case "serial":
		return syncron.ParallelismSerial
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		fatal("-parallel must be auto, serial, or a positive worker count (got %q)", s)
	}
	return n
}

// parseTopologyList resolves a comma-separated -topology value.
func parseTopologyList(s string) []syncron.Topology {
	var topos []syncron.Topology
	for _, name := range splitList(s) {
		topo, err := syncron.ParseTopology(name)
		if err != nil {
			fatal("%v", err)
		}
		topos = append(topos, topo)
	}
	return topos
}

// parseMemModelList resolves a comma-separated -mem-model value.
func parseMemModelList(s string) []syncron.MemModel {
	var models []syncron.MemModel
	for _, name := range splitList(s) {
		m, err := syncron.ParseMemModel(name)
		if err != nil {
			fatal("%v", err)
		}
		models = append(models, m)
	}
	return models
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		workload  = fs.String("workload", "stack", "workload name; see `syncron-sim list`")
		scheme    = fs.String("scheme", "syncron", "central | hier | syncron | flat | ideal | mesi-lock | ttas | htl")
		scale     = fs.Float64("scale", 0.25, "workload scale factor")
		ops       = fs.Int("ops", 40, "operations per core (data structures)")
		interval  = fs.Int64("interval", 200, "instructions between sync points (primitives)")
		metis     = fs.Bool("metis", false, "use the METIS-like greedy graph partitioner")
		jsonOut   = fs.String("json", "", "also write the result as JSON to this path (- = stdout, suppressing the report); byte-identical to the serve daemon's result for the same spec")
		printSpec = fs.Bool("print-spec", false, "print the canonical RunSpec JSON and exit without simulating (the exact payload to POST to a serve daemon)")
		traceOut  = fs.String("trace", "", "write a time-resolved trace CSV of the run to this path; output is byte-identical at any -parallel setting")
	)
	cfg, _, topology, memModel, _ := configFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	spec := syncron.RunSpec{
		Workload: *workload,
		Config:   cfg(),
		Params: syncron.WorkloadParams{Scale: *scale, OpsPerCore: *ops,
			Interval: *interval, Metis: *metis},
	}
	sch, err := syncron.ParseScheme(*scheme)
	if err != nil {
		fatal("%v", err)
	}
	spec.Config.Scheme = sch
	topo, err := syncron.ParseTopology(*topology)
	if err != nil {
		fatal("%v", err)
	}
	spec.Config.Topology = topo
	mmodel, err := syncron.ParseMemModel(*memModel)
	if err != nil {
		fatal("%v", err)
	}
	spec.Config.MemModel = mmodel
	if _, ok := syncron.LookupWorkload(*workload); !ok {
		fatal("unknown workload %q (try `syncron-sim list`)", *workload)
	}
	if *printSpec {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(spec); err != nil {
			fatal("encoding spec: %v", err)
		}
		return
	}
	var col *syncron.TraceCollector
	if *traceOut != "" {
		col = syncron.NewTraceCollector()
		spec.Config.Tracer = col
	}
	// run is exactly a one-spec sweep: same seed derivation (a zero -seed gets
	// deriveSeed(0, 0), as a serve daemon resolves it), same SpecKey stamping,
	// same serialization — so `run -json`, `sweep`, and a serve job of the
	// same spec are byte-interchangeable. The tracer never perturbs this: it
	// is excluded from SpecKey and serialized output.
	res := syncron.SpecRunner{}.Run([]syncron.RunSpec{spec})[0]
	if *jsonOut != "" {
		if *jsonOut == "-" {
			if err := syncron.WriteJSON(os.Stdout, []syncron.RunResult{res}); err != nil {
				fatal("writing JSON: %v", err)
			}
		} else {
			writeFile(*jsonOut, []syncron.RunResult{res}, syncron.WriteJSON)
		}
	}
	if res.Err != "" {
		fatal("%s", res.Err)
	}
	if col != nil {
		writeTraceCSV(*traceOut, col)
	}
	if *jsonOut != "-" {
		report(res)
	}
}

// writeTraceCSV emits a collected trace to path, failing loudly on write and
// close errors.
func writeTraceCSV(path string, col *syncron.TraceCollector) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := col.WriteCSV(f); err != nil {
		f.Close()
		fatal("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatal("closing %s: %v", path, err)
	}
}

func report(res syncron.RunResult) {
	fmt.Printf("workload        %s (%s)\n", res.Spec.Workload, res.Kind)
	fmt.Printf("scheme          %s\n", res.Spec.Config.Scheme)
	fmt.Printf("topology        %s\n", res.Spec.Config.Topology)
	fmt.Printf("makespan        %v\n", res.Makespan)
	if res.Ops > 0 {
		fmt.Printf("throughput      %.1f ops/ms (%.3f Mops/s)\n", res.OpsPerMs, res.MopsPerSec)
	}
	fmt.Printf("energy          cache %.1f uJ, network %.1f uJ, memory %.1f uJ (total %.1f uJ)\n",
		res.CacheEnergyPJ/1e6, res.NetworkEnergyPJ/1e6, res.MemoryEnergyPJ/1e6, res.TotalEnergyPJ()/1e6)
	if res.Spec.Config.MemModel == syncron.MemModelBank {
		fmt.Printf("row buffer      %.1f%% hit rate\n", res.RowHitRate*100)
	}
	fmt.Printf("data movement   %.1f KB inside units, %.1f KB across units\n",
		float64(res.BytesInsideUnits)/1024, float64(res.BytesAcrossUnits)/1024)
	if res.AvgRouteLinks > 0 {
		fmt.Printf("route length    %.2f links per cross-unit message\n", res.AvgRouteLinks)
	}
	if res.STOccupancyMax > 0 || res.OverflowedFraction > 0 {
		fmt.Printf("ST occupancy    max %.1f%%, mean %.2f%%\n", res.STOccupancyMax*100, res.STOccupancyMean*100)
		fmt.Printf("overflowed      %.2f%% of requests\n", res.OverflowedFraction*100)
	}
}

// parseShard resolves a -shard "i/n" value; the empty string means no
// sharding.
func parseShard(s string) syncron.Shard {
	if s == "" {
		return syncron.Shard{}
	}
	idx, count, found := strings.Cut(s, "/")
	if !found {
		fatal("bad -shard value %q (want i/n, e.g. 0/4)", s)
	}
	sh := syncron.Shard{Index: parseInt(idx, "shard"), Count: parseInt(count, "shard")}
	if sh.Count <= 0 || sh.Index < 0 || sh.Index >= sh.Count {
		fatal("bad -shard value %q (want 0 <= i < n)", s)
	}
	return sh
}

// openCache opens a -cache directory, or returns nil for the empty path.
func openCache(dir string) *syncron.CacheDir {
	if dir == "" {
		return nil
	}
	cache, err := syncron.DirCache(dir)
	if err != nil {
		fatal("opening cache %s: %v", dir, err)
	}
	return cache
}

// reportCacheStats summarizes cache traffic on stderr after a sweep.
func reportCacheStats(cache *syncron.CacheDir) {
	if cache == nil {
		return
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "syncron-sim: cache %s: %d hits, %d misses, %d writes\n",
		cache.Path(), st.Hits, st.Misses, st.Puts)
}

// figureGridSpecs expands the canonical figures grids (the exact runs
// `syncron-sim figures` performs) into one seed-resolved spec list, so sweeps
// can shard and cache the figures workload.
func figureGridSpecs(quick bool) []syncron.RunSpec {
	var specs []syncron.RunSpec
	for _, sw := range syncron.FigureSweeps(syncron.FigureOptions{Quick: quick}) {
		specs = append(specs, syncron.ResolveSeeds(sw.Expand(), sw.BaseSeed)...)
	}
	return specs
}

// gridCompatibleFlags are the sweep flags that still apply under -grid; every
// other explicitly set flag would be silently ignored (the canonical figure
// grids fix workloads, schemes, axes, seeds, and the machine config), so
// rejectFlagsWithGrid fails loudly instead.
var gridCompatibleFlags = map[string]bool{
	"grid": true, "shard": true, "cache": true, "cache-only": true,
	"fail-fast": true, "workers": true, "json": true, "csv": true,
	// -parallel is an execution knob, not a spec axis: it is excluded from
	// SpecKey and serialized output, so applying it to a canonical grid
	// cannot perturb hashes or results.
	"parallel": true,
}

func rejectFlagsWithGrid(fs *flag.FlagSet) {
	var conflicting []string
	fs.Visit(func(f *flag.Flag) {
		if !gridCompatibleFlags[f.Name] {
			conflicting = append(conflicting, "-"+f.Name)
		}
	})
	if len(conflicting) > 0 {
		fatal("-grid runs a canonical grid with fixed workloads, axes, seeds, and machine config; it ignores %s (drop them, or drop -grid)",
			strings.Join(conflicting, ", "))
	}
}

func sweepCmd(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		workloads = fs.String("workloads", "stack,queue", "comma-separated workload names; see `syncron-sim list`")
		schemes   = fs.String("schemes", "central,hier,syncron,ideal", "comma-separated schemes")
		unitsList = fs.String("units-list", "", "comma-separated NDP unit counts (grid axis; empty = -units)")
		stList    = fs.String("st-list", "", "comma-separated SynCron ST sizes (grid axis; empty = -st)")
		scale     = fs.Float64("scale", 0.25, "workload scale factor")
		ops       = fs.Int("ops", 40, "operations per core (data structures)")
		interval  = fs.Int64("interval", 200, "instructions between sync points (primitives)")
		metis     = fs.Bool("metis", false, "use the METIS-like greedy graph partitioner")
		workers   = fs.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		baseSeed  = fs.Uint64("base-seed", 0, "base for deterministic per-run seeds")
		jsonOut   = fs.String("json", "-", "JSON output path (- = stdout)")
		csvOut    = fs.String("csv", "", "also write CSV to this path")
		grid      = fs.String("grid", "", "run a canonical grid instead of the axis flags: figures | figures-quick (ignores -workloads/-schemes/axes)")
		shard     = fs.String("shard", "", "run one deterministic slice i/n of the grid (e.g. 0/4); shards are disjoint, exhaustive, and merge byte-identically")
		cacheDir  = fs.String("cache", "", "content-addressed result cache directory: cached runs skip simulation, new results are stored")
		cacheOnly = fs.Bool("cache-only", false, "forbid simulation; runs missing from -cache fail")
		failFast  = fs.Bool("fail-fast", false, "cancel unstarted runs as soon as any run fails")
		traceDir  = fs.String("trace", "", "write one time-resolved trace CSV per run into this directory; incompatible with -cache/-shard (a cached run skips the simulation a trace observes)")
	)
	cfg, cores, topology, memModel, parallel := configFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	runner := syncron.SpecRunner{
		Workers:   *workers,
		BaseSeed:  *baseSeed,
		CacheOnly: *cacheOnly,
		FailFast:  *failFast,
		Shard:     parseShard(*shard),
	}
	cache := openCache(*cacheDir)
	if cache != nil {
		runner.Cache = cache
	}
	if *cacheOnly && cache == nil {
		fatal("-cache-only requires -cache DIR")
	}
	if *traceDir != "" {
		// A cache hit skips the simulation entirely, so a traced cached run
		// would emit an empty (misleading) trace; sharding would break the
		// spec-to-collector pairing below. Fail loudly instead of guessing.
		if cache != nil || *cacheOnly {
			fatal("-trace is incompatible with -cache/-cache-only: cached runs skip the simulation a trace observes")
		}
		if runner.Shard.Count > 1 {
			fatal("-trace is incompatible with -shard")
		}
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal("%v", err)
		}
	}

	var specs []syncron.RunSpec
	var gridName string
	switch *grid {
	case "figures", "figures-quick":
		// The canonical grids fix every axis, seed, and machine parameter so
		// shard legs and `figures -from` agree on the spec hashes; a grid-mode
		// sweep that also names axis or config flags would silently drop them.
		rejectFlagsWithGrid(fs)
		specs = figureGridSpecs(*grid == "figures-quick")
		if p := parseParallel(*parallel); p != syncron.ParallelismAuto {
			for i := range specs {
				specs[i].Config.Parallelism = p
			}
		}
		gridName = *grid
	case "":
		names := splitList(*workloads)
		for _, name := range names {
			if _, ok := syncron.LookupWorkload(name); !ok {
				fatal("unknown workload %q (try `syncron-sim list`)", name)
			}
		}
		sw := syncron.Sweep{
			Workloads:  names,
			Topologies: parseTopologyList(*topology),
			MemModels:  parseMemModelList(*memModel),
			Base:       cfg(),
			Params: syncron.WorkloadParams{Scale: *scale, OpsPerCore: *ops,
				Interval: *interval, Metis: *metis},
		}
		for _, name := range splitList(*schemes) {
			sch, err := syncron.ParseScheme(name)
			if err != nil {
				fatal("%v", err)
			}
			sw.Schemes = append(sw.Schemes, sch)
		}
		for _, s := range splitList(*unitsList) {
			u := parseInt(s, "units-list")
			if u <= 0 {
				fatal("-units-list values must be positive (got %d)", u)
			}
			sw.Units = append(sw.Units, u)
		}
		for _, s := range splitList(*stList) {
			sw.STEntries = append(sw.STEntries, parseInt(s, "st-list"))
		}
		specs = sw.Expand()
		// -cores fixes the TOTAL client core count, so per-unit cores must track
		// the -units-list axis rather than the base -units value.
		if *cores != 0 {
			for i := range specs {
				specs[i].Config.CoresPerUnit = *cores / specs[i].Config.Units
			}
		}
		gridName = fmt.Sprintf("%d workloads x %d schemes", len(sw.Workloads), len(sw.Schemes))
	default:
		fatal("unknown -grid %q (want figures or figures-quick)", *grid)
	}

	var cols []*syncron.TraceCollector
	if *traceDir != "" {
		cols = make([]*syncron.TraceCollector, len(specs))
		for i := range specs {
			cols[i] = syncron.NewTraceCollector()
			specs[i].Config.Tracer = cols[i]
		}
	}

	if runner.Shard.Count > 1 {
		fmt.Fprintf(os.Stderr, "syncron-sim: sweeping shard %d/%d of %d runs (%s)\n",
			runner.Shard.Index, runner.Shard.Count, len(specs), gridName)
	} else {
		fmt.Fprintf(os.Stderr, "syncron-sim: sweeping %d runs (%s)\n", len(specs), gridName)
	}
	results := runner.Run(specs)
	reportCacheStats(cache)

	if *traceDir != "" {
		for i, r := range results {
			if r.Err != "" {
				continue // a failed run's trace is partial; don't emit it
			}
			name := fmt.Sprintf("%03d-%s-%s.trace.csv", r.GridIndex, r.Spec.Workload, r.Spec.Config.Scheme)
			writeTraceCSV(filepath.Join(*traceDir, name), cols[i])
		}
	}

	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "syncron-sim: %s under %s failed: %s\n",
				r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
		}
	}
	if *jsonOut == "-" {
		if err := syncron.WriteJSON(os.Stdout, results); err != nil {
			fatal("writing JSON: %v", err)
		}
	} else {
		writeFile(*jsonOut, results, syncron.WriteJSON)
	}
	if *csvOut != "" {
		writeFile(*csvOut, results, syncron.WriteCSV)
	}
	if failed > 0 {
		fatal("%d of %d runs failed", failed, len(results))
	}
}

// figuresCmd runs the canonical figure grids and emits the paper's
// evaluation views as Markdown tables (plus optional per-figure CSVs).
func figuresCmd(args []string) {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	var (
		quick     = fs.Bool("quick", false, "representative 12-workload subset at reduced scale (~seconds)")
		baseline  = fs.String("baseline", "central", "scheme every view is normalized to")
		schemes   = fs.String("schemes", "central,hier,syncron,ideal", "comma-separated schemes to compare")
		workloads = fs.String("workloads", "", "comma-separated workload names for the main grid (empty = canonical set)")
		scale     = fs.Float64("scale", 0, "workload scale factor (0 = canonical default)")
		topos     = fs.String("topologies", "", "comma-separated topologies for the interconnect sensitivity figure (empty = skip it)")
		memModels = fs.String("mem", "", "comma-separated DRAM timing models for the memory sensitivity figure (empty = skip it)")
		workers   = fs.Int("workers", 0, "parallel runs (0 = GOMAXPROCS); never affects results")
		parallel  = fs.String("parallel", "auto", "event-engine dispatch: auto | serial | worker count; never affects results")
		baseSeed  = fs.Uint64("base-seed", 0, "base for deterministic per-run seeds")
		mdOut     = fs.String("md", "-", "Markdown output path (- = stdout)")
		csvDir    = fs.String("csv-dir", "", "also write one <figure>.csv per figure into this directory")
		cacheDir  = fs.String("cache", "", "content-addressed result cache directory: cached runs skip simulation, new results are stored")
		fromDir   = fs.String("from", "", "render purely from this cache directory; any missing run is an error (zero simulation)")
		traceDir  = fs.String("trace", "", "add the time-resolved trace figure and write its per-workload trace/view CSVs into this directory; the traced grid always simulates (it bypasses -cache)")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	base, err := syncron.ParseScheme(*baseline)
	if err != nil {
		fatal("%v", err)
	}
	if *fromDir != "" && *cacheDir != "" && *fromDir != *cacheDir {
		fatal("-from and -cache name different directories; use one of them")
	}
	if *fromDir != "" && *traceDir != "" {
		fatal("-from promises zero simulation, but the traced grid always simulates; drop one of -from/-trace")
	}
	if *fromDir != "" {
		*cacheDir = *fromDir
	}
	cache := openCache(*cacheDir)
	opt := syncron.FigureOptions{
		Quick:       *quick,
		Baseline:    base,
		Scale:       *scale,
		Workers:     *workers,
		Parallelism: parseParallel(*parallel),
		BaseSeed:    *baseSeed,
		Topologies:  parseTopologyList(*topos),
		MemModels:   parseMemModelList(*memModels),
		CacheOnly:   *fromDir != "",
		TraceDir:    *traceDir,
	}
	if cache != nil {
		opt.Cache = cache
	}
	for _, name := range splitList(*schemes) {
		sch, err := syncron.ParseScheme(name)
		if err != nil {
			fatal("%v", err)
		}
		opt.Schemes = append(opt.Schemes, sch)
	}
	for _, name := range splitList(*workloads) {
		if _, ok := syncron.LookupWorkload(name); !ok {
			fatal("unknown workload %q (try `syncron-sim list`)", name)
		}
		opt.Workloads = append(opt.Workloads, name)
	}

	figs, err := syncron.Figures(opt)
	if err != nil {
		fatal("%v", err)
	}
	reportCacheStats(cache)

	out := os.Stdout
	if *mdOut != "-" {
		f, err := os.Create(*mdOut)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("closing %s: %v", *mdOut, err)
			}
		}()
		out = f
	}
	fmt.Fprintf(out, "# SynCron paper figures\n\nBaseline scheme: `%s`. "+
		"All runs use deterministic per-run seeds (base seed %d).\n\n", base, *baseSeed)
	for _, fig := range figs {
		if err := fig.WriteMarkdown(out); err != nil {
			fatal("writing Markdown: %v", err)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal("%v", err)
		}
		for _, fig := range figs {
			path := filepath.Join(*csvDir, fig.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
			if err := fig.WriteCSV(f); err != nil {
				f.Close()
				fatal("writing %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatal("closing %s: %v", path, err)
			}
		}
	}
}

// mergeCmd reassembles shard JSON outputs (written by `sweep -shard i/n`)
// into the byte-identical JSON/CSV an unsharded run of the same grid emits,
// and optionally replays the merged results into a cache directory so
// `figures -from DIR` can render without simulating. Missing, overlapping,
// or repeated shard files are detected and rejected.
func mergeCmd(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	var (
		jsonOut  = fs.String("json", "-", "merged JSON output path (- = stdout)")
		csvOut   = fs.String("csv", "", "also write merged CSV to this path")
		cacheDir = fs.String("cache", "", "also store every merged result into this cache directory, keyed by SpecKey")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error
	if fs.NArg() == 0 {
		fatal("merge needs at least one shard JSON file (from `sweep -shard i/n -json ...`)")
	}

	var shards [][]syncron.RunResult
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal("%v", err)
		}
		var results []syncron.RunResult
		if err := json.Unmarshal(raw, &results); err != nil {
			fatal("parsing %s: %v", path, err)
		}
		shards = append(shards, results)
	}
	merged, err := syncron.MergeShards(shards...)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "syncron-sim: merged %d results from %d shard file(s)\n",
		len(merged), len(shards))

	if *cacheDir != "" {
		cache := openCache(*cacheDir)
		for _, res := range merged {
			if res.Err != "" {
				continue // failures are never cached
			}
			if err := syncron.CacheResult(cache, res); err != nil {
				fatal("caching result %d: %v", res.GridIndex, err)
			}
		}
		st := cache.Stats()
		fmt.Fprintf(os.Stderr, "syncron-sim: cache %s: %d results stored\n", cache.Path(), st.Puts)
	}
	if *jsonOut == "-" {
		if err := syncron.WriteJSON(os.Stdout, merged); err != nil {
			fatal("writing JSON: %v", err)
		}
	} else {
		writeFile(*jsonOut, merged, syncron.WriteJSON)
	}
	if *csvOut != "" {
		writeFile(*csvOut, merged, syncron.WriteCSV)
	}
}

// serveCmd runs the long-lived sweep-as-a-service daemon: submissions over
// HTTP, cache-backed dedup and single-flight, a bounded job queue with
// backpressure, streaming progress, and graceful drain on SIGINT/SIGTERM
// (in-flight and queued work is finished and persisted to the cache before
// exit; the process exits 0 on a clean drain).
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers      = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queueDepth   = fs.Int("queue", 256, "max queued runs; submissions above this are rejected with 503 + Retry-After")
		cacheDir     = fs.String("cache", "", "content-addressed result cache directory (strongly recommended: it is the serving memoization tier)")
		retryAfter   = fs.Duration("retry-after", time.Second, "backoff hint attached to backpressure rejections")
		drainTimeout = fs.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for queued and in-flight runs before forcing exit")
		maxJobs      = fs.Int("max-jobs", 1024, "retained job records; oldest terminal jobs are evicted beyond this")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	opt := serve.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		RetryAfter: *retryAfter,
		MaxJobs:    *maxJobs,
	}
	cache := openCache(*cacheDir)
	if cache != nil {
		opt.Cache = cache
	}
	srv := serve.New(opt)
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "syncron-sim: serving on http://%s (workers %d, queue %d, cache %s, %s)\n",
		ln.Addr(), opt.Workers, opt.QueueDepth, cacheName(cache), syncron.Version().CacheVersion)

	select {
	case err := <-errc:
		fatal("serving: %v", err)
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "syncron-sim: draining (timeout %s)\n", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain the job scheduler first: once every job is terminal, open
		// event streams end on their own and the HTTP shutdown below has no
		// long-lived connections left to wait out.
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "syncron-sim: drain incomplete: %v\n", err)
			_ = hs.Close()
			os.Exit(1)
		}
		if err := hs.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "syncron-sim: http shutdown: %v\n", err)
			os.Exit(1)
		}
		reportCacheStats(cache)
		fmt.Fprintln(os.Stderr, "syncron-sim: drained cleanly")
	}
}

// cacheName names the cache for the startup banner.
func cacheName(cache *syncron.CacheDir) string {
	if cache == nil {
		return "none"
	}
	return cache.Path()
}

// writeFile emits results to path, failing loudly on write AND close errors
// so a truncated results file never exits 0.
func writeFile(path string, results []syncron.RunResult, emit func(io.Writer, []syncron.RunResult) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := emit(f, results); err != nil {
		f.Close()
		fatal("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatal("closing %s: %v", path, err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInt(s, flagName string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal("bad -%s value %q", flagName, s)
	}
	return v
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "syncron-sim: "+format+"\n", args...)
	os.Exit(2)
}
