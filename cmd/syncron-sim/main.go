// Command syncron-sim runs a single workload on a single configuration and
// prints a detailed report — the quickest way to poke at the simulator.
//
// Examples:
//
//	syncron-sim -workload stack -scheme syncron -cores 60
//	syncron-sim -workload pr.wk -scheme hier -units 2 -scale 0.2
//	syncron-sim -workload ts.air -scheme central -mem ddr4
//	syncron-sim -workload lock -interval 200 -scheme syncron
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"syncron/internal/core"
	"syncron/internal/exp"
	"syncron/internal/mem"
	"syncron/internal/sim"
	"syncron/internal/workloads/ds"
	"syncron/internal/workloads/graphs"
	"syncron/internal/workloads/tseries"
	"syncron/internal/workloads/ubench"
)

func main() {
	var (
		workload = flag.String("workload", "stack", "workload: a data structure ("+strings.Join(ds.Names(), ", ")+"), app.graph (e.g. pr.wk), ts.air/ts.pow, or a primitive (lock, barrier, semaphore, condvar)")
		scheme   = flag.String("scheme", "syncron", "central | hier | syncron | flat | ideal | mesi-lock | ttas | htl")
		units    = flag.Int("units", 4, "NDP units")
		cores    = flag.Int("cores", 0, "total client cores (default units*15)")
		memTech  = flag.String("mem", "hbm", "hbm | hmc | ddr4")
		linkNS   = flag.Int64("link-ns", 0, "inter-unit transfer latency in ns (default 40)")
		scale    = flag.Float64("scale", 0.25, "workload scale factor")
		ops      = flag.Int("ops", 40, "operations per core (data structures)")
		interval = flag.Int64("interval", 200, "instructions between sync points (primitives)")
		stSize   = flag.Int("st", 0, "SynCron ST entries (default 64)")
		fairness = flag.Int("fairness", 0, "lock fairness threshold (0 = off)")
		metis    = flag.Bool("metis", false, "use the METIS-like greedy graph partitioner")
	)
	flag.Parse()

	spec := exp.Spec{
		Backend:   *scheme,
		Units:     *units,
		Link:      sim.Time(*linkNS) * sim.Nanosecond,
		STEntries: *stSize,
		Fairness:  *fairness,
	}
	if *cores != 0 {
		spec.Cores = *cores / *units
	}
	switch strings.ToLower(*memTech) {
	case "hbm":
		spec.Mem = mem.HBM
	case "hmc":
		spec.Mem = mem.HMC
	case "ddr4":
		spec.Mem = mem.DDR4
	default:
		fatal("unknown memory technology %q", *memTech)
	}

	res, kind := run(spec, *workload, *scale, *ops, *interval, *metis)
	report(*workload, kind, spec, res)
}

func run(spec exp.Spec, workload string, scale float64, ops int, interval int64, metis bool) (exp.Result, string) {
	// Primitive microbenchmarks.
	for _, p := range ubench.Primitives() {
		if workload == string(p) {
			return exp.RunUbench(spec, p, interval, int(100*scale)+10), "primitive"
		}
	}
	// Data structures.
	for _, name := range ds.Names() {
		if workload == name {
			size := int(float64(ds.PaperSize(name)) * scale / 40)
			if size < 32 {
				size = 32
			}
			if name == "arraymap" {
				size = 10
			}
			return exp.RunDS(spec, name, size, ops), "data structure"
		}
	}
	// app.graph / ts.input combos.
	parts := strings.SplitN(workload, ".", 2)
	if len(parts) == 2 {
		app, input := parts[0], parts[1]
		if app == "ts" {
			for _, in := range tseries.Inputs() {
				if input == in {
					return exp.RunTS(spec, input, scale), "time series"
				}
			}
		}
		for _, a := range graphs.Apps() {
			if app == a {
				for _, in := range graphs.Inputs() {
					if input == in {
						return exp.RunGraph(spec, exp.GraphRun{App: app, Input: input}, scale, metis), "graph application"
					}
				}
			}
		}
	}
	fatal("unknown workload %q", workload)
	panic("unreachable")
}

func report(workload, kind string, spec exp.Spec, res exp.Result) {
	fmt.Printf("workload        %s (%s)\n", workload, kind)
	fmt.Printf("scheme          %s\n", spec.Backend)
	fmt.Printf("makespan        %v\n", res.Makespan)
	if res.Ops > 0 {
		fmt.Printf("throughput      %.1f ops/ms (%.3f Mops/s)\n", res.OpsPerMs(), res.MopsPerSec())
	}
	fmt.Printf("energy          cache %.1f uJ, network %.1f uJ, memory %.1f uJ (total %.1f uJ)\n",
		res.Energy.CachePJ/1e6, res.Energy.NetworkPJ/1e6, res.Energy.MemoryPJ/1e6, res.Energy.Total()/1e6)
	fmt.Printf("data movement   %.1f KB inside units, %.1f KB across units\n",
		float64(res.IntraB)/1024, float64(res.InterB)/1024)
	if res.STMax > 0 || res.OverflowF > 0 {
		fmt.Printf("ST occupancy    max %.1f%%, mean %.2f%%\n", res.STMax*100, res.STMean*100)
		fmt.Printf("overflowed      %.2f%% of requests\n", res.OverflowF*100)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "syncron-sim: "+format+"\n", args...)
	os.Exit(2)
}

var _ = core.OverflowIntegrated
