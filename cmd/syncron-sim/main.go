// Command syncron-sim runs simulations through the public syncron API: a
// single workload on a single configuration, or a whole
// (workload x scheme x config) sweep on a bounded worker pool.
//
// Single runs (the default subcommand):
//
//	syncron-sim -workload stack -scheme syncron -cores 60
//	syncron-sim run -workload pr.wk -scheme hier -units 2 -scale 0.2
//	syncron-sim run -workload ts.air -scheme central -mem ddr4
//	syncron-sim run -workload lock -interval 200 -scheme syncron
//
// Sweeps (results as JSON, optionally CSV):
//
//	syncron-sim sweep -workloads stack,queue -schemes central,hier,syncron,ideal
//	syncron-sim sweep -workloads lock,barrier -units-list 1,2,4 -workers 8 -json out.json
//	syncron-sim sweep -workloads ts.air -schemes syncron -st-list 16,32,64 -csv out.csv
//	syncron-sim sweep -workloads lock,stack -topology mesh,ring,alltoall -csv topo.csv
//
// Paper figures (Markdown tables, optionally one CSV per figure):
//
//	syncron-sim figures --quick
//	syncron-sim figures -baseline central -md figures.md -csv-dir out/
//	syncron-sim figures --quick -topologies alltoall,mesh,ring,star
//
// Discovery:
//
//	syncron-sim list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"syncron"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runCmd(args)
	case "sweep":
		sweepCmd(args)
	case "figures":
		figuresCmd(args)
	case "list":
		listCmd()
	default:
		fatal("unknown subcommand %q (want run, sweep, figures, or list)", cmd)
	}
}

// listCmd prints every registered workload grouped by kind.
func listCmd() {
	for _, kind := range syncron.Kinds() {
		fmt.Printf("%-17s %s\n", kind, strings.Join(syncron.WorkloadNamesOfKind(kind), ", "))
	}
}

// configFlags registers the flags shared by run and sweep and returns a
// closure resolving them into a Config, plus the raw -cores flag (total
// client cores) so sweep can re-derive CoresPerUnit per grid point, and the
// raw -topology flag (run takes one topology; sweep accepts a comma list as
// a grid axis).
func configFlags(fs *flag.FlagSet) (func() syncron.Config, *int, *string) {
	var (
		units    = fs.Int("units", 4, "NDP units")
		cores    = fs.Int("cores", 0, "total client cores (default units*15)")
		memTech  = fs.String("mem", "hbm", "hbm | hmc | ddr4")
		topology = fs.String("topology", "", "interconnect: alltoall | mesh | ring | star (default alltoall); sweep accepts a comma-separated grid axis")
		linkNS   = fs.Int64("link-ns", 0, "inter-unit transfer latency in ns (default 40)")
		stSize   = fs.Int("st", 0, "SynCron ST entries (default 64)")
		fairness = fs.Int("fairness", 0, "lock fairness threshold (0 = off)")
		seed     = fs.Uint64("seed", 0, "simulation seed (0 = default)")
	)
	return func() syncron.Config {
		if *units <= 0 {
			fatal("-units must be positive (got %d)", *units)
		}
		memory, err := syncron.ParseMemory(*memTech)
		if err != nil {
			fatal("%v", err)
		}
		cfg := syncron.Config{
			Units:             *units,
			Memory:            memory,
			LinkLatency:       syncron.Time(*linkNS) * syncron.Nanosecond,
			STEntries:         *stSize,
			FairnessThreshold: *fairness,
			Seed:              *seed,
		}
		if *cores != 0 {
			cfg.CoresPerUnit = *cores / *units
		}
		return cfg
	}, cores, topology
}

// parseTopologyList resolves a comma-separated -topology value.
func parseTopologyList(s string) []syncron.Topology {
	var topos []syncron.Topology
	for _, name := range splitList(s) {
		topo, err := syncron.ParseTopology(name)
		if err != nil {
			fatal("%v", err)
		}
		topos = append(topos, topo)
	}
	return topos
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		workload = fs.String("workload", "stack", "workload name; see `syncron-sim list`")
		scheme   = fs.String("scheme", "syncron", "central | hier | syncron | flat | ideal | mesi-lock | ttas | htl")
		scale    = fs.Float64("scale", 0.25, "workload scale factor")
		ops      = fs.Int("ops", 40, "operations per core (data structures)")
		interval = fs.Int64("interval", 200, "instructions between sync points (primitives)")
		metis    = fs.Bool("metis", false, "use the METIS-like greedy graph partitioner")
	)
	cfg, _, topology := configFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	spec := syncron.RunSpec{
		Workload: *workload,
		Config:   cfg(),
		Params: syncron.WorkloadParams{Scale: *scale, OpsPerCore: *ops,
			Interval: *interval, Metis: *metis},
	}
	sch, err := syncron.ParseScheme(*scheme)
	if err != nil {
		fatal("%v", err)
	}
	spec.Config.Scheme = sch
	topo, err := syncron.ParseTopology(*topology)
	if err != nil {
		fatal("%v", err)
	}
	spec.Config.Topology = topo
	if _, ok := syncron.LookupWorkload(*workload); !ok {
		fatal("unknown workload %q (try `syncron-sim list`)", *workload)
	}
	res := syncron.Execute(spec)
	if res.Err != "" {
		fatal("%s", res.Err)
	}
	report(res)
}

func report(res syncron.RunResult) {
	fmt.Printf("workload        %s (%s)\n", res.Spec.Workload, res.Kind)
	fmt.Printf("scheme          %s\n", res.Spec.Config.Scheme)
	fmt.Printf("topology        %s\n", res.Spec.Config.Topology)
	fmt.Printf("makespan        %v\n", res.Makespan)
	if res.Ops > 0 {
		fmt.Printf("throughput      %.1f ops/ms (%.3f Mops/s)\n", res.OpsPerMs, res.MopsPerSec)
	}
	fmt.Printf("energy          cache %.1f uJ, network %.1f uJ, memory %.1f uJ (total %.1f uJ)\n",
		res.CacheEnergyPJ/1e6, res.NetworkEnergyPJ/1e6, res.MemoryEnergyPJ/1e6, res.TotalEnergyPJ()/1e6)
	fmt.Printf("data movement   %.1f KB inside units, %.1f KB across units\n",
		float64(res.BytesInsideUnits)/1024, float64(res.BytesAcrossUnits)/1024)
	if res.AvgRouteLinks > 0 {
		fmt.Printf("route length    %.2f links per cross-unit message\n", res.AvgRouteLinks)
	}
	if res.STOccupancyMax > 0 || res.OverflowedFraction > 0 {
		fmt.Printf("ST occupancy    max %.1f%%, mean %.2f%%\n", res.STOccupancyMax*100, res.STOccupancyMean*100)
		fmt.Printf("overflowed      %.2f%% of requests\n", res.OverflowedFraction*100)
	}
}

func sweepCmd(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		workloads = fs.String("workloads", "stack,queue", "comma-separated workload names; see `syncron-sim list`")
		schemes   = fs.String("schemes", "central,hier,syncron,ideal", "comma-separated schemes")
		unitsList = fs.String("units-list", "", "comma-separated NDP unit counts (grid axis; empty = -units)")
		stList    = fs.String("st-list", "", "comma-separated SynCron ST sizes (grid axis; empty = -st)")
		scale     = fs.Float64("scale", 0.25, "workload scale factor")
		ops       = fs.Int("ops", 40, "operations per core (data structures)")
		interval  = fs.Int64("interval", 200, "instructions between sync points (primitives)")
		metis     = fs.Bool("metis", false, "use the METIS-like greedy graph partitioner")
		workers   = fs.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		baseSeed  = fs.Uint64("base-seed", 0, "base for deterministic per-run seeds")
		jsonOut   = fs.String("json", "-", "JSON output path (- = stdout)")
		csvOut    = fs.String("csv", "", "also write CSV to this path")
	)
	cfg, cores, topology := configFlags(fs)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	names := splitList(*workloads)
	for _, name := range names {
		if _, ok := syncron.LookupWorkload(name); !ok {
			fatal("unknown workload %q (try `syncron-sim list`)", name)
		}
	}
	sw := syncron.Sweep{
		Workloads:  names,
		Topologies: parseTopologyList(*topology),
		Base:       cfg(),
		Params: syncron.WorkloadParams{Scale: *scale, OpsPerCore: *ops,
			Interval: *interval, Metis: *metis},
		Workers:  *workers,
		BaseSeed: *baseSeed,
	}
	for _, name := range splitList(*schemes) {
		sch, err := syncron.ParseScheme(name)
		if err != nil {
			fatal("%v", err)
		}
		sw.Schemes = append(sw.Schemes, sch)
	}
	for _, s := range splitList(*unitsList) {
		u := parseInt(s, "units-list")
		if u <= 0 {
			fatal("-units-list values must be positive (got %d)", u)
		}
		sw.Units = append(sw.Units, u)
	}
	for _, s := range splitList(*stList) {
		sw.STEntries = append(sw.STEntries, parseInt(s, "st-list"))
	}

	specs := sw.Expand()
	// -cores fixes the TOTAL client core count, so per-unit cores must track
	// the -units-list axis rather than the base -units value.
	if *cores != 0 {
		for i := range specs {
			specs[i].Config.CoresPerUnit = *cores / specs[i].Config.Units
		}
	}
	fmt.Fprintf(os.Stderr, "syncron-sim: sweeping %d runs on %d workloads x %d schemes\n",
		len(specs), len(sw.Workloads), len(sw.Schemes))
	results := syncron.RunSpecs(specs, sw.Workers, sw.BaseSeed)

	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "syncron-sim: %s under %s failed: %s\n",
				r.Spec.Workload, r.Spec.Config.Scheme, r.Err)
		}
	}
	if *jsonOut == "-" {
		if err := syncron.WriteJSON(os.Stdout, results); err != nil {
			fatal("writing JSON: %v", err)
		}
	} else {
		writeFile(*jsonOut, results, syncron.WriteJSON)
	}
	if *csvOut != "" {
		writeFile(*csvOut, results, syncron.WriteCSV)
	}
	if failed > 0 {
		fatal("%d of %d runs failed", failed, len(results))
	}
}

// figuresCmd runs the canonical figure grids and emits the paper's
// evaluation views as Markdown tables (plus optional per-figure CSVs).
func figuresCmd(args []string) {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	var (
		quick     = fs.Bool("quick", false, "representative 12-workload subset at reduced scale (~seconds)")
		baseline  = fs.String("baseline", "central", "scheme every view is normalized to")
		schemes   = fs.String("schemes", "central,hier,syncron,ideal", "comma-separated schemes to compare")
		workloads = fs.String("workloads", "", "comma-separated workload names for the main grid (empty = canonical set)")
		scale     = fs.Float64("scale", 0, "workload scale factor (0 = canonical default)")
		topos     = fs.String("topologies", "", "comma-separated topologies for the interconnect sensitivity figure (empty = skip it)")
		workers   = fs.Int("workers", 0, "parallel runs (0 = GOMAXPROCS); never affects results")
		baseSeed  = fs.Uint64("base-seed", 0, "base for deterministic per-run seeds")
		mdOut     = fs.String("md", "-", "Markdown output path (- = stdout)")
		csvDir    = fs.String("csv-dir", "", "also write one <figure>.csv per figure into this directory")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	base, err := syncron.ParseScheme(*baseline)
	if err != nil {
		fatal("%v", err)
	}
	opt := syncron.FigureOptions{
		Quick:      *quick,
		Baseline:   base,
		Scale:      *scale,
		Workers:    *workers,
		BaseSeed:   *baseSeed,
		Topologies: parseTopologyList(*topos),
	}
	for _, name := range splitList(*schemes) {
		sch, err := syncron.ParseScheme(name)
		if err != nil {
			fatal("%v", err)
		}
		opt.Schemes = append(opt.Schemes, sch)
	}
	for _, name := range splitList(*workloads) {
		if _, ok := syncron.LookupWorkload(name); !ok {
			fatal("unknown workload %q (try `syncron-sim list`)", name)
		}
		opt.Workloads = append(opt.Workloads, name)
	}

	figs, err := syncron.Figures(opt)
	if err != nil {
		fatal("%v", err)
	}

	out := os.Stdout
	if *mdOut != "-" {
		f, err := os.Create(*mdOut)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("closing %s: %v", *mdOut, err)
			}
		}()
		out = f
	}
	fmt.Fprintf(out, "# SynCron paper figures\n\nBaseline scheme: `%s`. "+
		"All runs use deterministic per-run seeds (base seed %d).\n\n", base, *baseSeed)
	for _, fig := range figs {
		if err := fig.WriteMarkdown(out); err != nil {
			fatal("writing Markdown: %v", err)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal("%v", err)
		}
		for _, fig := range figs {
			path := filepath.Join(*csvDir, fig.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
			if err := fig.WriteCSV(f); err != nil {
				f.Close()
				fatal("writing %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatal("closing %s: %v", path, err)
			}
		}
	}
}

// writeFile emits results to path, failing loudly on write AND close errors
// so a truncated results file never exits 0.
func writeFile(path string, results []syncron.RunResult, emit func(io.Writer, []syncron.RunResult) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := emit(f, results); err != nil {
		f.Close()
		fatal("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatal("closing %s: %v", path, err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInt(s, flagName string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		fatal("bad -%s value %q", flagName, s)
	}
	return v
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "syncron-sim: "+format+"\n", args...)
	os.Exit(2)
}
