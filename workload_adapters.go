package syncron

import (
	"syncron/internal/program"
	"syncron/internal/sim"
	"syncron/internal/workloads/ds"
	"syncron/internal/workloads/graphs"
	"syncron/internal/workloads/tseries"
	"syncron/internal/workloads/ubench"
)

// This file adapts the internal workload packages to the public Workload
// registry. Every benchmark of the paper's evaluation is reachable by name:
// the four primitive microbenchmarks (Figure 10), the nine pointer-chasing
// data structures (Figure 11), the 24 graph app.input combinations and the
// two ts.input time-series workloads (Figure 12).

func init() {
	for _, prim := range ubench.Primitives() {
		RegisterWorkload(primitiveWorkload{prim})
	}
	for _, name := range ds.Names() {
		RegisterWorkload(dsWorkload{name})
	}
	for _, app := range graphs.Apps() {
		for _, input := range graphs.Inputs() {
			RegisterWorkload(graphWorkload{app: app, input: input})
		}
	}
	for _, input := range tseries.Inputs() {
		RegisterWorkload(tsWorkload{input})
	}
}

// primitiveWorkload wraps a Figure-10 microbenchmark: every core repeatedly
// reaches a single synchronization variable.
type primitiveWorkload struct{ prim ubench.Primitive }

func (w primitiveWorkload) Name() string       { return string(w.prim) }
func (w primitiveWorkload) Kind() WorkloadKind { return KindPrimitive }

func (w primitiveWorkload) Prepare(sys *System, p WorkloadParams) (*PreparedRun, error) {
	interval := p.Interval
	if interval == 0 {
		interval = 200
	}
	rounds := p.Rounds
	if rounds == 0 {
		rounds = int(100*p.scale()) + 10
	}
	m := sys.Machine()
	ubench.Build(m, sys.Runner(), ubench.Config{Primitive: w.prim, Interval: interval, Rounds: rounds})
	// All four primitives touch shared host state only inside critical
	// sections, so their core events may fan out across workers.
	sys.Runner().TagCoreUnits = true
	return &PreparedRun{Ops: uint64(rounds * m.NumCores())}, nil
}

// dsWorkload wraps a Table-6 pointer-chasing concurrent data structure; each
// core performs the structure's operation mix.
type dsWorkload struct{ name string }

func (w dsWorkload) Name() string       { return w.name }
func (w dsWorkload) Kind() WorkloadKind { return KindDataStructure }

func (w dsWorkload) Prepare(sys *System, p WorkloadParams) (*PreparedRun, error) {
	size := p.Size
	if size == 0 {
		size = int(float64(ds.PaperSize(w.name)) * p.scale() / 40)
		if size < 32 {
			size = 32
		}
		if w.name == "arraymap" {
			size = 10
		}
	}
	ops := p.OpsPerCore
	if ops == 0 {
		ops = 40
	}
	m := sys.Machine()
	rng := sim.NewRNG(m.Cfg.Seed + 100)
	d := ds.New(w.name, m, ds.Config{Size: size}, rng)
	// The optimistic structures read shared host state outside their locks
	// and must keep serial-barrier core events; the rest fan out.
	sys.Runner().TagCoreUnits = ds.ParallelSafe(w.name)
	sys.Runner().AddN(m.NumCores(), func(int) program.Program {
		return func(ctx *program.Ctx) {
			for k := 0; k < ops; k++ {
				d.Op(ctx, ctx.RNG)
			}
		}
	})
	return &PreparedRun{Ops: uint64(ops * m.NumCores()), Check: d.Check}, nil
}

// graphWorkload wraps one graph application on one input (e.g. "pr.wk").
type graphWorkload struct{ app, input string }

func (w graphWorkload) Name() string       { return w.app + "." + w.input }
func (w graphWorkload) Kind() WorkloadKind { return KindGraph }
func (w graphWorkload) Family() string     { return w.app }

func (w graphWorkload) Prepare(sys *System, p WorkloadParams) (*PreparedRun, error) {
	m := sys.Machine()
	g := graphs.Load(w.input, p.scale())
	var part graphs.Partition
	if p.Metis {
		part = graphs.GreedyPartition(g, m.Cfg.Units)
	} else {
		part = graphs.HashPartition(g, m.Cfg.Units)
	}
	ly := graphs.NewLayout(m, g, part)
	a := graphs.NewApp(m, ly, graphs.RunConfig{App: w.app, Graph: g, Part: part})
	a.Build(m, sys.Runner())
	return &PreparedRun{Ops: uint64(g.M), Check: a.Check}, nil
}

// tsWorkload wraps the time-series analysis workload on one input
// (e.g. "ts.air").
type tsWorkload struct{ input string }

func (w tsWorkload) Name() string       { return "ts." + w.input }
func (w tsWorkload) Kind() WorkloadKind { return KindTimeSeries }
func (w tsWorkload) Family() string     { return "ts" }

func (w tsWorkload) Prepare(sys *System, p WorkloadParams) (*PreparedRun, error) {
	m := sys.Machine()
	series := tseries.Load(w.input, p.scale())
	wk := tseries.New(m, series)
	wk.Build(m, sys.Runner())
	return &PreparedRun{Ops: uint64(series.Profiles()), Check: wk.Check}, nil
}
