package syncron_test

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"syncron"
)

// TestSpecKeyGolden pins the content hashes of representative specs.
//
// If this test fails, the canonical spec encoding changed. That is only
// correct as part of a deliberate cache-format change; the checklist is:
//
//  1. extend specKeyRecord (cache.go) so every RunSpec/Config/WorkloadParams
//     field is covered — TestSpecKeyCoversEveryField pins the field counts;
//  2. bump SpecKeyVersion, so every existing cache entry becomes a miss
//     instead of a silently wrong hit;
//  3. re-pin the hashes below and the version prefix in this file;
//  4. regenerate goldens/figures-full.md if simulator output also changed.
//
// A SpecKey collision between different specs, or a hash that drifts between
// runs or hosts, is a cache-poisoning bug — never "fix" this test by
// loosening it.
func TestSpecKeyGolden(t *testing.T) {
	base := syncron.RunSpec{
		Workload: "lock",
		Config: syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2,
			CoresPerUnit: 2, Seed: 7},
		Params: syncron.WorkloadParams{Rounds: 4},
	}
	full := syncron.RunSpec{
		Workload: "pr.wk",
		Config: syncron.Config{Scheme: syncron.SchemeHier, Units: 4, CoresPerUnit: 15,
			Memory: syncron.DDR4, MemModel: syncron.MemModelBank,
			Topology:    syncron.TopoMesh2D,
			LinkLatency: 40 * syncron.Nanosecond, STEntries: 32,
			Overflow: syncron.OverflowCentral, FairnessThreshold: 100,
			SEServiceCycles: 12, Seed: 99},
		Params: syncron.WorkloadParams{Scale: 0.25, OpsPerCore: 40, Size: 64,
			Interval: 200, Rounds: 8, Metis: true},
	}
	for name, want := range map[syncron.RunSpec]string{
		base: "v2-a1361b964fb2dcde6b534074c5b641aca0b568122e02a93f39ab0dd2510c9c73",
		full: "v2-769c42b6d2a80483650525da565dcf0c3b2d8ac72673a5e6611c80f83f89022e",
		{}:   "v2-6f8dd9c5e0e202c3342e64a9896004679265baba871a0e2e29a93fb41f17e945",
	} {
		if got := syncron.SpecKey(name); got != want {
			t.Errorf("SpecKey(%+v)\n  got  %s\n  want %s", name, got, want)
		}
	}
}

// TestSpecKeyCoversEveryField pins the field counts of the structs SpecKey
// hashes. If it fails, a field was added to (or removed from) RunSpec,
// Config, or WorkloadParams without going through the SpecKey version-bump
// checklist (see TestSpecKeyGolden) — a silent cache-poisoning hazard,
// because two now-different specs would share a key.
func TestSpecKeyCoversEveryField(t *testing.T) {
	// Config counts 14 fields but specKeyRecord covers 12: Parallelism and
	// Tracer are the two deliberate exemptions. Parallelism selects the
	// engine's dispatcher, which is proven byte-identical to serial
	// (internal/sim/paralleltest and the CI parallel-determinism matrix);
	// Tracer is strictly observational (hook points only read simulation
	// state, and the CI trace-determinism job pins traced output as
	// byte-identical across dispatchers) — so traced/parallel runs of one
	// spec are the same experiment and must share a cache entry. (Traced runs
	// bypass cache LOOKUP at the call sites instead, since a hit would skip
	// the simulation the tracer observes.)
	for _, c := range []struct {
		name string
		v    any
		want int
	}{
		{"RunSpec", syncron.RunSpec{}, 3},
		{"Config", syncron.Config{}, 14},
		{"WorkloadParams", syncron.WorkloadParams{}, 6},
	} {
		if got := reflect.TypeOf(c.v).NumField(); got != c.want {
			t.Errorf("%s has %d fields, specKeyRecord covers %d: extend specKeyRecord, "+
				"bump SpecKeyVersion, and re-pin the golden hashes", c.name, got, c.want)
		}
	}
}

// Every spec field must independently change the hash — otherwise two
// different runs would collide on one cache entry.
func TestSpecKeyChangesWithEveryField(t *testing.T) {
	base := syncron.RunSpec{
		Workload: "lock",
		Config:   syncron.Config{Scheme: syncron.SchemeSynCron, Units: 2, Seed: 7},
		Params:   syncron.WorkloadParams{Rounds: 4},
	}
	mutations := map[string]func(*syncron.RunSpec){
		"Workload":          func(s *syncron.RunSpec) { s.Workload = "stack" },
		"Scheme":            func(s *syncron.RunSpec) { s.Config.Scheme = syncron.SchemeCentral },
		"Units":             func(s *syncron.RunSpec) { s.Config.Units = 3 },
		"CoresPerUnit":      func(s *syncron.RunSpec) { s.Config.CoresPerUnit = 4 },
		"Memory":            func(s *syncron.RunSpec) { s.Config.Memory = syncron.HMC },
		"MemModel":          func(s *syncron.RunSpec) { s.Config.MemModel = syncron.MemModelBank },
		"Topology":          func(s *syncron.RunSpec) { s.Config.Topology = syncron.TopoRing },
		"LinkLatency":       func(s *syncron.RunSpec) { s.Config.LinkLatency = syncron.Nanosecond },
		"STEntries":         func(s *syncron.RunSpec) { s.Config.STEntries = 16 },
		"Overflow":          func(s *syncron.RunSpec) { s.Config.Overflow = syncron.OverflowDistrib },
		"FairnessThreshold": func(s *syncron.RunSpec) { s.Config.FairnessThreshold = 10 },
		"SEServiceCycles":   func(s *syncron.RunSpec) { s.Config.SEServiceCycles = 5 },
		"Seed":              func(s *syncron.RunSpec) { s.Config.Seed = 8 },
		"Params.Scale":      func(s *syncron.RunSpec) { s.Params.Scale = 0.5 },
		"Params.OpsPerCore": func(s *syncron.RunSpec) { s.Params.OpsPerCore = 9 },
		"Params.Size":       func(s *syncron.RunSpec) { s.Params.Size = 11 },
		"Params.Interval":   func(s *syncron.RunSpec) { s.Params.Interval = 123 },
		"Params.Rounds":     func(s *syncron.RunSpec) { s.Params.Rounds = 5 },
		"Params.Metis":      func(s *syncron.RunSpec) { s.Params.Metis = true },
	}
	seen := map[string]string{syncron.SpecKey(base): "base"}
	for field, mutate := range mutations {
		spec := base
		mutate(&spec)
		key := syncron.SpecKey(spec)
		if prev, dup := seen[key]; dup {
			t.Errorf("mutating %s collides with %s (key %s)", field, prev, key)
		}
		seen[key] = field
	}
	// And the hash must be a pure function of the value.
	if syncron.SpecKey(base) != syncron.SpecKey(base) {
		t.Fatal("SpecKey is not deterministic")
	}
	// Parallelism and Tracer are the deliberate non-semantic fields (see
	// TestSpecKeyCoversEveryField): they must NOT change the key, so serial,
	// parallel, and traced executions of one spec share a cache entry.
	par := base
	par.Config.Parallelism = 8
	if syncron.SpecKey(par) != syncron.SpecKey(base) {
		t.Error("Parallelism changed the SpecKey; execution mode must not affect cache identity")
	}
	traced := base
	traced.Config.Tracer = syncron.NewTraceCollector()
	if syncron.SpecKey(traced) != syncron.SpecKey(base) {
		t.Error("Tracer changed the SpecKey; observation must not affect cache identity")
	}
}

// TestShardsPartitionGrid is the shard partition property: for any shard
// count, the shards of a seed-resolved grid are pairwise disjoint, jointly
// exhaustive, and select specs bit-identical to the unsharded grid (same
// seeds at the same grid indices). No simulation involved.
func TestShardsPartitionGrid(t *testing.T) {
	sw := syncron.Sweep{
		Workloads: []string{"lock", "stack", "queue", "pr.wk"},
		Schemes: []syncron.Scheme{syncron.SchemeSynCron, syncron.SchemeCentral,
			syncron.SchemeHier, syncron.SchemeIdeal},
		Units:     []int{1, 2, 4},
		STEntries: []int{16, 64},
		Base:      syncron.Config{CoresPerUnit: 2},
	}
	resolved := syncron.ResolveSeeds(sw.Expand(), 42)
	if len(resolved) != 4*4*3*2 {
		t.Fatalf("grid has %d specs, want %d", len(resolved), 4*4*3*2)
	}
	for _, r := range resolved {
		if r.Config.Seed == 0 {
			t.Fatal("ResolveSeeds left a zero seed")
		}
	}
	for _, n := range []int{1, 2, 3, 4, 7, 16, len(resolved), 997} {
		owner := make(map[int]int)
		for i := 0; i < n; i++ {
			sel := syncron.Shard{Index: i, Count: n}.Select(resolved)
			for _, gridIndex := range sel {
				if prev, dup := owner[gridIndex]; dup {
					t.Fatalf("n=%d: grid index %d in shards %d and %d (not disjoint)", n, gridIndex, prev, i)
				}
				owner[gridIndex] = i
			}
		}
		if len(owner) != len(resolved) {
			t.Fatalf("n=%d: shards cover %d of %d specs (not exhaustive)", n, len(owner), len(resolved))
		}
	}
	// Seed identity: sharding must not depend on, or alter, seed derivation —
	// re-resolving and re-selecting yields the same partition.
	again := syncron.ResolveSeeds(sw.Expand(), 42)
	if !reflect.DeepEqual(resolved, again) {
		t.Fatal("ResolveSeeds is not deterministic")
	}
	if !reflect.DeepEqual(
		syncron.Shard{Index: 1, Count: 3}.Select(resolved),
		syncron.Shard{Index: 1, Count: 3}.Select(again)) {
		t.Fatal("Shard.Select is not deterministic")
	}
}

// serialize renders results both ways for byte comparison.
func serialize(t *testing.T, results []syncron.RunResult) (string, string) {
	t.Helper()
	var j, c bytes.Buffer
	if err := syncron.WriteJSON(&j, results); err != nil {
		t.Fatal(err)
	}
	if err := syncron.WriteCSV(&c, results); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

// TestShardedSweepMergesByteIdentical executes a real grid unsharded and as
// 2- and 3-way shard splits, and checks MergeShards reassembles the exact
// JSON and CSV bytes of the unsharded run — the contract the full-grid CI
// matrix relies on.
func TestShardedSweepMergesByteIdentical(t *testing.T) {
	sw := tinySweep(2)
	specs := sw.Expand()
	full := syncron.SpecRunner{BaseSeed: sw.BaseSeed, Workers: 2}.Run(specs)
	wantJSON, wantCSV := serialize(t, full)
	for _, n := range []int{2, 3} {
		var shards [][]syncron.RunResult
		for i := 0; i < n; i++ {
			shards = append(shards, syncron.SpecRunner{
				BaseSeed: sw.BaseSeed,
				Workers:  2,
				Shard:    syncron.Shard{Index: i, Count: n},
			}.Run(specs))
		}
		merged, err := syncron.MergeShards(shards...)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		gotJSON, gotCSV := serialize(t, merged)
		if gotJSON != wantJSON {
			t.Fatalf("n=%d: merged JSON differs from unsharded run", n)
		}
		if gotCSV != wantCSV {
			t.Fatalf("n=%d: merged CSV differs from unsharded run", n)
		}
	}
}

func TestMergeShardsValidates(t *testing.T) {
	res := func(i int) syncron.RunResult {
		return syncron.RunResult{Spec: syncron.RunSpec{Workload: "lock"}, GridIndex: i}
	}
	if _, err := syncron.MergeShards(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := syncron.MergeShards([]syncron.RunResult{res(0), res(2)}); err == nil {
		t.Error("gapped grid indices accepted")
	}
	if _, err := syncron.MergeShards([]syncron.RunResult{res(0)}, []syncron.RunResult{res(0)}); err == nil {
		t.Error("overlapping shards accepted")
	}
	merged, err := syncron.MergeShards([]syncron.RunResult{res(1)}, []syncron.RunResult{res(0)})
	if err != nil || len(merged) != 2 || merged[0].GridIndex != 0 || merged[1].GridIndex != 1 {
		t.Errorf("valid merge failed: %v %+v", err, merged)
	}
}

// countingCache wraps a ResultCache and counts misses and writes — a probe
// for "did anything actually simulate?", since every simulation under a
// cache is one Get miss followed by one Put.
type countingCache struct {
	inner        syncron.ResultCache
	misses, puts atomic.Uint64
}

func (c *countingCache) Get(key string) ([]byte, bool) {
	payload, ok := c.inner.Get(key)
	if !ok {
		c.misses.Add(1)
	}
	return payload, ok
}

func (c *countingCache) Put(key string, payload []byte) error {
	c.puts.Add(1)
	return c.inner.Put(key, payload)
}

func TestSweepCacheSkipsSimulation(t *testing.T) {
	dir, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := &countingCache{inner: dir}
	sw := tinySweep(2).WithCache(cache)
	first := sw.Run()
	firstJSON, _ := serialize(t, first)
	if got := cache.misses.Load(); got != uint64(len(first)) {
		t.Fatalf("cold cache: %d misses, want %d", got, len(first))
	}
	cache.misses.Store(0)
	cache.puts.Store(0)
	second := sw.Run()
	if m, p := cache.misses.Load(), cache.puts.Load(); m != 0 || p != 0 {
		t.Fatalf("warm cache simulated: %d misses, %d writes; want 0, 0", m, p)
	}
	secondJSON, _ := serialize(t, second)
	if firstJSON != secondJSON {
		t.Fatal("cached replay is not byte-identical to the original run")
	}
}

// A corrupt cache entry must be recomputed, not crash or return garbage.
func TestSweepCorruptCacheEntryRecomputed(t *testing.T) {
	cacheRoot := t.TempDir()
	dir, err := syncron.DirCache(cacheRoot)
	if err != nil {
		t.Fatal(err)
	}
	sw := tinySweep(1).WithCache(dir)
	first := sw.Run()
	entries, err := os.ReadDir(cacheRoot)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache empty after sweep: %v", err)
	}
	if err := os.WriteFile(filepath.Join(cacheRoot, entries[0].Name()), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	second := sw.Run()
	a, _ := serialize(t, first)
	b, _ := serialize(t, second)
	if a != b {
		t.Fatal("results differ after cache corruption")
	}
}

func TestCacheOnlyMissFails(t *testing.T) {
	dir, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sw := tinySweep(1)
	sw.Cache, sw.CacheOnly = dir, true
	for _, r := range sw.Run() {
		if r.Err == "" || !strings.Contains(r.Err, "cache") {
			t.Fatalf("cache-only miss did not fail: %+v", r)
		}
	}
}

// TestCacheResultRebuild replays sweep JSON results into a fresh cache
// (what `merge -cache DIR` does with shard artifacts) and checks a
// cache-only sweep serves byte-identical results from it.
func TestCacheResultRebuild(t *testing.T) {
	sw := tinySweep(1)
	results := sw.Run()
	wantJSON, wantCSV := serialize(t, results)

	dir, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if err := syncron.CacheResult(dir, r); err != nil {
			t.Fatal(err)
		}
	}
	replay := sw.WithCache(dir)
	replay.CacheOnly = true
	gotJSON, gotCSV := serialize(t, replay.Run())
	if gotJSON != wantJSON || gotCSV != wantCSV {
		t.Fatal("cache-only replay from rebuilt cache is not byte-identical")
	}

	if err := syncron.CacheResult(dir, syncron.RunResult{Err: "boom"}); err == nil {
		t.Error("CacheResult accepted a failed run")
	}
	if err := syncron.CacheResult(dir, syncron.RunResult{}); err == nil {
		t.Error("CacheResult accepted a keyless result")
	}
}

// TestCachedFiguresZeroSimulation is the headline replay guarantee: a second
// figures invocation against a warm cache performs zero simulation runs and
// still renders byte-identical Markdown.
func TestCachedFiguresZeroSimulation(t *testing.T) {
	dir, err := syncron.DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := &countingCache{inner: dir}
	opt := syncron.FigureOptions{
		Workloads: []string{"lock", "stack"},
		Schemes:   []syncron.Scheme{syncron.SchemeCentral, syncron.SchemeSynCron},
		Scale:     0.02,
		Cache:     cache,
	}
	render := func() string {
		figs, err := syncron.Figures(opt)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, f := range figs {
			if err := f.WriteMarkdown(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	first := render()
	if cache.misses.Load() == 0 || cache.puts.Load() == 0 {
		t.Fatal("cold cache did not populate")
	}
	cache.misses.Store(0)
	cache.puts.Store(0)
	second := render()
	if m, p := cache.misses.Load(), cache.puts.Load(); m != 0 || p != 0 {
		t.Fatalf("warm figures replay simulated: %d misses, %d writes; want 0, 0", m, p)
	}
	if first != second {
		t.Fatal("cached figures replay is not byte-identical")
	}
	// And the strict mode renders the same bytes with simulation forbidden.
	opt.CacheOnly = true
	if render() != first {
		t.Fatal("cache-only figures render differs")
	}
}

// registerWorkloadOnce guards test-workload registration across tests in
// this package (RegisterWorkload panics on duplicates).
var registerWorkloadOnce sync.Map

func registerTestWorkload(w syncron.Workload) {
	if _, loaded := registerWorkloadOnce.LoadOrStore(w.Name(), true); !loaded {
		syncron.RegisterWorkload(w)
	}
}

// failingWorkload fails in Prepare, before any simulation happens.
type failingWorkload struct{}

func (failingWorkload) Name() string               { return "test.prepfail" }
func (failingWorkload) Kind() syncron.WorkloadKind { return "test" }
func (failingWorkload) Prepare(*syncron.System, syncron.WorkloadParams) (*syncron.PreparedRun, error) {
	return nil, fmt.Errorf("deliberate failure")
}

// TestSweepFailFastCancels pins the FailFast contract: after a failure, runs
// that have not started are canceled with an error naming the first failure
// instead of being simulated to completion.
func TestSweepFailFastCancels(t *testing.T) {
	registerTestWorkload(failingWorkload{})
	sw := syncron.Sweep{
		// The failing workload leads the grid; with one worker everything
		// behind it must be canceled, deterministically.
		Workloads: []string{"test.prepfail", "stack", "lock", "queue"},
		Schemes:   []syncron.Scheme{syncron.SchemeSynCron},
		Base:      syncron.Config{Units: 2, CoresPerUnit: 2},
		Params:    syncron.WorkloadParams{Scale: 0.05, OpsPerCore: 6, Rounds: 8},
		Workers:   1,
		BaseSeed:  7,
		FailFast:  true,
	}
	results := sw.Run()
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if !strings.Contains(results[0].Err, "deliberate failure") {
		t.Fatalf("first result should be the failure: %+v", results[0])
	}
	for _, r := range results[1:] {
		if !strings.Contains(r.Err, "fail-fast") || !strings.Contains(r.Err, "test.prepfail") {
			t.Fatalf("run %s not canceled by fail-fast: %q", r.Spec.Workload, r.Err)
		}
	}
	// Without FailFast the same grid runs everything.
	sw.FailFast = false
	for i, r := range sw.Run() {
		if i > 0 && r.Err != "" {
			t.Fatalf("non-fail-fast sweep canceled %s: %q", r.Spec.Workload, r.Err)
		}
	}
}

// TestWriteCSVEscapesSpecialFields pins CSV quoting on the sweep emitter:
// workload names, kinds, and error strings containing commas, quotes, or
// newlines must round-trip through encoding/csv unharmed. Workload family
// names are one rename away from containing a comma; this is the regression
// net.
func TestWriteCSVEscapesSpecialFields(t *testing.T) {
	nasty := `family,with "quotes" and
newline`
	results := []syncron.RunResult{{
		Spec: syncron.RunSpec{Workload: nasty,
			Config: syncron.Config{Scheme: `sch,"eme`}},
		Kind: `kind,with"comma`,
		Err:  `failed, badly: "panic"`,
	}}
	var buf bytes.Buffer
	if err := syncron.WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse back: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want header + 1", len(rows))
	}
	row := rows[1]
	if row[0] != nasty {
		t.Errorf("workload field corrupted: %q", row[0])
	}
	if row[1] != string(results[0].Kind) || row[2] != string(results[0].Spec.Config.Scheme) {
		t.Errorf("kind/scheme fields corrupted: %q %q", row[1], row[2])
	}
	if row[len(row)-1] != results[0].Err {
		t.Errorf("error field corrupted: %q", row[len(row)-1])
	}
}

// Same contract for the per-figure CSV emitter.
func TestFigureWriteCSVEscapesSpecialFields(t *testing.T) {
	fig := &syncron.Figure{
		ID:      "test",
		Columns: []string{"workload", `odd "column", name`},
		Rows:    [][]string{{`ts,air "v2"`, "1.0"}},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("figure CSV does not parse back: %v", err)
	}
	if rows[0][1] != fig.Columns[1] || rows[1][0] != fig.Rows[0][0] {
		t.Fatalf("figure CSV fields corrupted: %+v", rows)
	}
}
